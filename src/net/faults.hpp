// Deterministic fault injection for the discovery plane.
//
// Every retry/backoff/degradation behaviour in this codebase is testable
// hermetically: an HttpServer consults a FaultHook once per request and
// the hook decides whether to serve normally, answer with an injected
// HTTP error, delay, truncate or corrupt the body, or drop the
// connection outright. FaultPlan builds the hook from a deterministic
// schedule (fail-N-then-succeed, an explicit action sequence, or a
// seeded random stream via common/rng.hpp), so a test asserting "two
// 500s then success" sees exactly that on every run.
//
// TruncatingChannel is the channel-side analogue: it delivers prefixes
// of outgoing frames so decoder paths can be hardened against partial
// input (a peer dying mid-record) without a real crash mid-send.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/rng.hpp"
#include "net/channel.hpp"

namespace xmit::net {

enum class FaultKind : std::uint8_t {
  kNone = 0,        // serve normally
  kHttpError,       // replace the response with `http_status` and no body
  kTruncateBody,    // full Content-Length header, body cut at truncate_at
  kCorruptBody,     // body bytes flipped, length preserved
  kPartialBody,     // body cut at truncate_at, Content-Length matching —
                    // the transport succeeds, only the application-level
                    // parse (e.g. a format-set envelope) can notice
  kReset,           // close the connection without writing a response
  kDelay,           // sleep delay_ms, then serve normally
  kKillAfterBytes,  // channel dies after byte_budget outgoing wire bytes
  kRstMidFrame,     // as kKillAfterBytes but abortive (TCP RST)
  kAcceptThenHang,  // accept the connection, then never speak (liveness)
  kStallReadsAfterBytes,  // peer reads byte_budget wire bytes, then stalls
                          // (fd open, never read again) — overload persona
  kZeroCreditPeer,        // peer drains frames but never grants 0x08 credit
                          // (a flow-control-unaware receiver) — overload
                          // persona; consumed by harnesses, not arm_channel
};

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  int http_status = 500;        // for kHttpError
  std::size_t truncate_at = 0;  // body bytes kept for kTruncateBody
  int delay_ms = 0;             // for kDelay
  std::size_t byte_budget = 0;  // for kKillAfterBytes / kRstMidFrame

  static FaultAction none() { return {}; }
  static FaultAction http_error(int status) {
    FaultAction a;
    a.kind = FaultKind::kHttpError;
    a.http_status = status;
    return a;
  }
  static FaultAction truncate(std::size_t keep_bytes) {
    FaultAction a;
    a.kind = FaultKind::kTruncateBody;
    a.truncate_at = keep_bytes;
    return a;
  }
  static FaultAction partial_body(std::size_t keep_bytes) {
    FaultAction a;
    a.kind = FaultKind::kPartialBody;
    a.truncate_at = keep_bytes;
    return a;
  }
  static FaultAction corrupt() {
    FaultAction a;
    a.kind = FaultKind::kCorruptBody;
    return a;
  }
  static FaultAction reset() {
    FaultAction a;
    a.kind = FaultKind::kReset;
    return a;
  }
  static FaultAction delay(int ms) {
    FaultAction a;
    a.kind = FaultKind::kDelay;
    a.delay_ms = ms;
    return a;
  }
  static FaultAction kill_after(std::size_t bytes) {
    FaultAction a;
    a.kind = FaultKind::kKillAfterBytes;
    a.byte_budget = bytes;
    return a;
  }
  static FaultAction reset_after(std::size_t bytes) {
    FaultAction a;
    a.kind = FaultKind::kRstMidFrame;
    a.byte_budget = bytes;
    return a;
  }
  static FaultAction accept_then_hang() {
    FaultAction a;
    a.kind = FaultKind::kAcceptThenHang;
    return a;
  }
  static FaultAction stall_reads_after(std::size_t bytes) {
    FaultAction a;
    a.kind = FaultKind::kStallReadsAfterBytes;
    a.byte_budget = bytes;
    return a;
  }
  static FaultAction zero_credit_peer() {
    FaultAction a;
    a.kind = FaultKind::kZeroCreditPeer;
    return a;
  }
};

// Translates a byte-budget FaultAction into the channel's injected-failure
// seam. Non-budget kinds leave the channel untouched.
void arm_channel(Channel& channel, const FaultAction& action);

// Consulted by HttpServer once per request, on the server thread, with
// the request path. The returned action is applied to that response.
using FaultHook = std::function<FaultAction(const std::string& path)>;

// A deterministic, consumable schedule of fault actions. Shared-pointer
// semantics so the same plan can be installed as a server hook and still
// be inspected by the test afterwards; all methods are thread-safe.
class FaultPlan {
 public:
  // The first `n` requests get `fault`; everything after succeeds.
  static std::shared_ptr<FaultPlan> fail_n_then_succeed(int n,
                                                        FaultAction fault);
  // Requests consume `actions` in order; requests past the end succeed.
  static std::shared_ptr<FaultPlan> sequence(std::vector<FaultAction> actions);
  // Every request faults with probability `p`, drawn deterministically
  // from `seed`; faulting requests pick uniformly from `menu`.
  static std::shared_ptr<FaultPlan> random(std::uint64_t seed, double p,
                                           std::vector<FaultAction> menu);
  // No faults ever (useful to turn a plan off by swapping it out).
  static std::shared_ptr<FaultPlan> clear();

  // Consume one request slot.
  FaultAction next();

  std::size_t requests_seen() const;
  std::size_t faults_injected() const;

  // Adapter usable as HttpServer::set_fault_hook argument; keeps the
  // plan alive and counting while installed.
  static FaultHook as_hook(std::shared_ptr<FaultPlan> plan);

 private:
  FaultPlan() = default;

  mutable std::mutex mutex_;
  // consumed front to back
  std::vector<FaultAction> schedule_ XMIT_GUARDED_BY(mutex_);
  std::size_t cursor_ XMIT_GUARDED_BY(mutex_) = 0;
  bool randomized_ XMIT_GUARDED_BY(mutex_) = false;
  double fault_probability_ XMIT_GUARDED_BY(mutex_) = 0;
  std::vector<FaultAction> menu_ XMIT_GUARDED_BY(mutex_);
  std::unique_ptr<Rng> rng_ XMIT_GUARDED_BY(mutex_);
  std::size_t requests_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t faults_ XMIT_GUARDED_BY(mutex_) = 0;
};

// Wraps a Channel and delivers only a prefix of each outgoing frame's
// payload, per the plan (kTruncateBody's truncate_at, or everything for
// kNone). The frame itself stays well-formed — the receiver gets a
// complete frame holding a truncated record, exactly what a crashed
// sender's flushed partial write looks like after reframing.
class TruncatingChannel {
 public:
  TruncatingChannel(Channel& inner, std::shared_ptr<FaultPlan> plan)
      : inner_(inner), plan_(std::move(plan)) {}

  Status send(std::span<const std::uint8_t> message);
  Status send(const std::vector<std::uint8_t>& message) {
    return send(std::span<const std::uint8_t>(message));
  }

  std::size_t frames_truncated() const { return truncated_; }

 private:
  Channel& inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::size_t truncated_ = 0;
};

// The stalled-reader persona behind FaultKind::kStallReadsAfterBytes: a
// peer that consumes whole frames until `byte_budget` wire bytes have
// been read, then wedges — the fd stays open (no EOF, no RST) but the
// kernel receive buffer fills and the sender's socket stops accepting
// bytes. This is the overload failure that a blocking send_all cannot
// survive and that the channel send deadline + session flow control
// exist to bound.
class StallingReader {
 public:
  // Takes ownership of the peer-facing channel.
  explicit StallingReader(Channel channel) : channel_(std::move(channel)) {}

  // Reads frames until at least `action.byte_budget` wire bytes (headers
  // included) have been consumed or `timeout_ms` elapses, then parks the
  // channel open. Returns the number of complete frames drained.
  Result<std::size_t> consume_then_stall(const FaultAction& action,
                                         int timeout_ms = 5000);

  std::size_t bytes_consumed() const { return consumed_; }
  Channel& channel() { return channel_; }

 private:
  Channel channel_;
  std::size_t consumed_ = 0;
};

// A listener persona that accepts connections and then never sends a
// byte — the "process alive, application wedged" failure the liveness
// deadline exists to detect. Accepted channels are parked (fds held
// open) so the dialer sees a healthy connection that just goes silent.
class HangingAcceptor {
 public:
  static Result<HangingAcceptor> listen(std::uint16_t port = 0);

  std::uint16_t port() const { return listener_.port(); }

  // Accepts one connection and parks it. The parked fd stays open until
  // this object is destroyed, so the peer never sees EOF either.
  Status accept_and_hang(int timeout_ms = 5000);

  std::size_t parked() const { return parked_.size(); }

 private:
  explicit HangingAcceptor(ChannelListener listener)
      : listener_(std::move(listener)) {}

  ChannelListener listener_;
  std::vector<Channel> parked_;
};

}  // namespace xmit::net
