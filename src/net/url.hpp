// URL parsing for metadata discovery: http://host:port/path and
// file:///path are the schemes XMIT fetches schema documents from.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace xmit::net {

struct Url {
  std::string scheme;  // "http" | "file"
  std::string host;    // empty for file URLs
  std::uint16_t port = 0;  // 80 default for http
  std::string path;    // always begins with '/'

  std::string to_string() const;
};

Result<Url> parse_url(std::string_view text);

}  // namespace xmit::net
