// Endpoint: a redialable address for the session data plane.
//
// A Channel is one live connection; an Endpoint is the *ability to get
// another one*. Resumable sessions hold an Endpoint so that when the
// transport dies mid-stream they can re-dial — under the same
// RetryPolicy machinery the discovery plane uses (net/retry.hpp) — and
// splice a fresh Channel under the session without the caller noticing.
//
// Two constructors cover every test and deployment shape:
//  * tcp(host, port): the production dialer, Channel::connect each time,
//  * custom(label, fn): an arbitrary dial function — chaos harnesses use
//    this to hand out pre-armed socketpair ends deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "net/channel.hpp"
#include "net/retry.hpp"

namespace xmit::net {

class Endpoint {
 public:
  using DialFn = std::function<Result<Channel>()>;

  // Non-dialable endpoint: dial() always fails. What a session built
  // directly on a Channel (make_session_pipe) carries.
  Endpoint() = default;

  static Endpoint tcp(std::string host, std::uint16_t port,
                      int timeout_ms = 5000) {
    Endpoint e;
    e.label_ = host + ":" + std::to_string(port);
    e.dial_ = [host = std::move(host), port, timeout_ms]() {
      return Channel::connect(host, port, timeout_ms);
    };
    return e;
  }

  static Endpoint custom(std::string label, DialFn fn) {
    Endpoint e;
    e.label_ = std::move(label);
    e.dial_ = std::move(fn);
    return e;
  }

  bool can_dial() const { return static_cast<bool>(dial_); }
  const std::string& label() const { return label_; }

  // One dial attempt per retry-policy attempt; transient failures
  // (refused, timed out) back off and re-dial until the policy's
  // attempts or deadline budget runs out.
  Result<Channel> dial(const RetryPolicy& policy = RetryPolicy(),
                       RetryStats* stats = nullptr) const;

 private:
  std::string label_;
  DialFn dial_;
};

}  // namespace xmit::net
