#include "net/fetch.hpp"

#include <cstdio>
#include <memory>

#include "net/http.hpp"
#include "net/url.hpp"

namespace xmit::net {

Result<std::string> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!file)
    return Status(ErrorCode::kNotFound, "cannot open '" + path + "'");
  std::string out;
  char buf[8192];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file.get())) > 0)
    out.append(buf, n);
  if (std::ferror(file.get()))
    return Status(ErrorCode::kIoError, "read error on '" + path + "'");
  return out;
}

Status write_file(const std::string& path, std::string_view contents) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!file)
    return make_error(ErrorCode::kIoError, "cannot create '" + path + "'");
  if (std::fwrite(contents.data(), 1, contents.size(), file.get()) !=
      contents.size())
    return make_error(ErrorCode::kIoError, "short write to '" + path + "'");
  return Status::ok();
}

namespace {

// One fetch attempt, with the HTTP status mapped so the retry classifier
// can tell server trouble (5xx, retryable) from caller error (4xx, not).
Result<std::string> fetch_once(const Url& url, std::string_view url_text,
                               int timeout_ms) {
  XMIT_ASSIGN_OR_RETURN(
      auto response, HttpClient::get(url.host, url.port, url.path, timeout_ms));
  if (response.status_code == 200) return std::move(response.body);
  std::string detail = "HTTP " + std::to_string(response.status_code) +
                       " fetching " + std::string(url_text);
  if (response.status_code == 404)
    return Status(ErrorCode::kNotFound,
                  "document not found: " + std::string(url_text));
  if (response.status_code >= 400 && response.status_code < 500)
    return Status(ErrorCode::kInvalidArgument, detail);
  return Status(ErrorCode::kIoError, detail);
}

}  // namespace

Result<std::string> fetch(std::string_view url_text, const FetchOptions& options) {
  XMIT_ASSIGN_OR_RETURN(auto url, parse_url(url_text));
  if (url.scheme == "file") return read_file(url.path);
  return with_retry<std::string>(
      options.retry,
      [&] { return fetch_once(url, url_text, options.timeout_ms); },
      options.stats);
}

Result<std::string> fetch(std::string_view url_text, int timeout_ms) {
  FetchOptions options;
  options.timeout_ms = timeout_ms;
  options.retry = RetryPolicy::none();
  return fetch(url_text, options);
}

}  // namespace xmit::net
