#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/strings.hpp"

namespace xmit::net {
namespace {

// Writes the whole buffer, retrying short writes.
bool write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads until the header terminator, then content-length body bytes.
Result<std::string> read_http_message(int fd, int timeout_ms) {
  std::string data;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  std::size_t content_length = 0;
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return Status(ErrorCode::kTimeout, "HTTP read timeout");
    if (ready < 0) return Status(ErrorCode::kIoError, "HTTP poll failed");
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) return Status(ErrorCode::kIoError, "HTTP recv failed");
    if (n == 0) {
      if (header_end != std::string::npos &&
          data.size() >= header_end + 4 + content_length)
        break;
      return Status(ErrorCode::kIoError, "connection closed mid-message");
    }
    data.append(buf, static_cast<std::size_t>(n));
    if (header_end == std::string::npos) {
      header_end = data.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Scan headers for Content-Length.
        std::string lower = to_lower(data.substr(0, header_end));
        std::size_t at = lower.find("content-length:");
        if (at != std::string::npos) {
          std::size_t value_start = at + 15;
          std::size_t line_end = lower.find("\r\n", value_start);
          auto value = parse_uint(trim(std::string_view(lower).substr(
              value_start, line_end - value_start)));
          if (!value.is_ok())
            return Status(ErrorCode::kParseError, "bad Content-Length");
          content_length = static_cast<std::size_t>(value.value());
        }
      }
    }
    if (header_end != std::string::npos &&
        data.size() >= header_end + 4 + content_length)
      break;
    if (data.size() > 64 * 1024 * 1024)
      return Status(ErrorCode::kOutOfRange, "HTTP message too large");
  }
  return data;
}

std::string status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::start(std::uint16_t port) {
  auto server = std::unique_ptr<HttpServer>(new HttpServer());
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0)
    return Status(ErrorCode::kIoError, "socket() failed");
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return Status(ErrorCode::kIoError,
                  "bind to 127.0.0.1:" + std::to_string(port) + " failed");
  if (::listen(server->listen_fd_, 16) != 0)
    return Status(ErrorCode::kIoError, "listen() failed");

  socklen_t len = sizeof(addr);
  ::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  server->port_ = ntohs(addr.sin_port);

  server->thread_ = std::thread([raw = server.get()] { raw->accept_loop(); });
  return server;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
}

std::string HttpServer::url_for(std::string_view path) const {
  std::string out = "http://127.0.0.1:" + std::to_string(port_);
  if (path.empty() || path[0] != '/') out += '/';
  out += path;
  return out;
}

void HttpServer::put_document(std::string path, std::string body,
                              std::string content_type) {
  HttpResponse response;
  response.status_code = 200;
  response.content_type = std::move(content_type);
  response.body = std::move(body);
  std::lock_guard<std::mutex> lock(mutex_);
  documents_[std::move(path)] = std::move(response);
}

void HttpServer::remove_document(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  documents_.erase(path);
}

void HttpServer::set_post_handler(std::string path, PostHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  post_handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::set_get_handler(std::string path, GetHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  get_handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_hook_ = std::move(hook);
}

void HttpServer::accept_loop() {
  for (;;) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) return;
      continue;
    }
    // Requests are tiny and loopback-local; serving inline keeps the
    // server deterministic for benchmarking registration cost.
    handle_connection(client);
    ::close(client);
  }
}

void HttpServer::handle_connection(int client_fd) {
  auto message = read_http_message(client_fd, 5000);
  if (!message.is_ok()) return;
  request_count_.fetch_add(1);

  const std::string& text = message.value();
  std::size_t line_end = text.find("\r\n");
  std::string_view request_line =
      std::string_view(text).substr(0, line_end);
  auto parts = split(request_line, ' ');

  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hook = fault_hook_;
  }
  FaultAction fault;
  if (hook)
    fault = hook(parts.size() >= 2 ? std::string(parts[1]) : std::string());
  if (fault.kind == FaultKind::kReset) return;  // drop without replying
  if (fault.kind == FaultKind::kDelay)
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));

  HttpResponse response;
  if (parts.size() != 3 || (parts[2] != "HTTP/1.1" && parts[2] != "HTTP/1.0")) {
    response.status_code = 400;
    response.body = "malformed request line";
  } else if (parts[0] == "GET") {
    std::string path(parts[1]);
    GetHandler handler;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = documents_.find(path);
      if (it != documents_.end()) {
        response = it->second;
        found = true;
      } else if (auto dyn = get_handlers_.find(path);
                 dyn != get_handlers_.end()) {
        handler = dyn->second;
      }
    }
    if (handler) {
      // Outside the lock: a handler may itself take locks (registry
      // stats) and must not order them under the server mutex.
      response = handler(path);
    } else if (!found) {
      response.status_code = 404;
      response.body = "no such document: " + path;
    }
  } else if (parts[0] == "POST") {
    std::string path(parts[1]);
    PostHandler handler;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = post_handlers_.find(path);
      if (it != post_handlers_.end()) handler = it->second;
    }
    if (!handler) {
      response.status_code = 404;
      response.body = "no POST endpoint at: " + path;
    } else {
      std::size_t header_end = text.find("\r\n\r\n");
      std::string body =
          header_end == std::string::npos ? "" : text.substr(header_end + 4);
      response = handler(body);
    }
  } else {
    response.status_code = 405;
    response.body = "only GET and POST are supported";
  }
  if (response.content_type.empty()) response.content_type = "text/plain";

  if (fault.kind == FaultKind::kHttpError) {
    response.status_code = fault.http_status;
    response.content_type = "text/plain";
    response.body = "injected fault: HTTP " + std::to_string(fault.http_status);
  } else if (fault.kind == FaultKind::kCorruptBody) {
    for (std::size_t i = 0; i < response.body.size(); i += 3)
      response.body[i] = static_cast<char>(~response.body[i]);
  } else if (fault.kind == FaultKind::kPartialBody) {
    // Unlike kTruncateBody, the headers match the bytes actually sent:
    // the transport exchange completes cleanly and only an application-
    // level parse of the shortened body can detect the loss.
    if (fault.truncate_at < response.body.size())
      response.body.resize(fault.truncate_at);
  }

  // For kTruncateBody the headers still promise the full body, then the
  // connection closes early — the client sees a mid-message close.
  std::size_t body_bytes = response.body.size();
  if (fault.kind == FaultKind::kTruncateBody)
    body_bytes = std::min(fault.truncate_at, body_bytes);

  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                    status_text(response.status_code) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body.substr(0, body_bytes);
  write_all(client_fd, out);
}

namespace {

// Connects, sends `request`, reads one full response; shared by GET/POST.
Result<std::string> exchange(const std::string& host, std::uint16_t port,
                             const std::string& request, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(ErrorCode::kIoError, "socket() failed");
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Only dotted-quad and localhost are needed offline.
    if (host == "localhost")
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    else
      return Status(ErrorCode::kNotFound, "cannot resolve host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return Status(ErrorCode::kIoError,
                  "connect to " + host + ":" + std::to_string(port) + " failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (!write_all(fd, request))
    return Status(ErrorCode::kIoError, "request write failed");
  return read_http_message(fd, timeout_ms);
}

// Parses a raw HTTP response into status/content-type/body.
Result<HttpResponse> parse_response(const std::string& text);

}  // namespace

Result<HttpResponse> HttpClient::get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& path,
                                     int timeout_ms) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  XMIT_ASSIGN_OR_RETURN(auto text, exchange(host, port, request, timeout_ms));
  return parse_response(text);
}

Result<HttpResponse> HttpClient::post(const std::string& host,
                                      std::uint16_t port,
                                      const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type,
                                      int timeout_ms) {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nContent-Type: " + content_type +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  XMIT_ASSIGN_OR_RETURN(auto text, exchange(host, port, request, timeout_ms));
  return parse_response(text);
}

namespace {

Result<HttpResponse> parse_response(const std::string& text) {
  std::size_t header_end = text.find("\r\n\r\n");
  if (header_end == std::string::npos)
    return Status(ErrorCode::kParseError, "malformed HTTP response");

  HttpResponse response;
  std::size_t line_end = text.find("\r\n");
  auto status_parts = split(std::string_view(text).substr(0, line_end), ' ');
  if (status_parts.size() < 2)
    return Status(ErrorCode::kParseError, "malformed status line");
  XMIT_ASSIGN_OR_RETURN(auto code, parse_uint(status_parts[1]));
  response.status_code = static_cast<int>(code);

  std::string lower = to_lower(text.substr(0, header_end));
  std::size_t ct = lower.find("content-type:");
  if (ct != std::string::npos) {
    std::size_t value_start = ct + 13;
    std::size_t value_end = lower.find("\r\n", value_start);
    response.content_type = std::string(
        trim(std::string_view(text).substr(value_start, value_end - value_start)));
  }
  response.body = text.substr(header_end + 4);
  return response;
}

}  // namespace

}  // namespace xmit::net
