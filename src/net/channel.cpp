#include "net/channel.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/endian.hpp"

namespace xmit::net {
namespace {

constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

// Waits for the socket to accept bytes, honouring an optional deadline.
// Returns kTimeout once `deadline_ms` (measured from `start`) is spent.
Status wait_writable(int fd, int deadline_ms,
                     const std::chrono::steady_clock::time_point& start) {
  int wait = -1;
  if (deadline_ms >= 0) {
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    wait = static_cast<int>(std::max<long long>(deadline_ms - spent, 0));
    if (wait == 0)
      return make_error(ErrorCode::kTimeout,
                        "channel send deadline elapsed (peer not reading)");
  }
  struct pollfd pfd = {fd, POLLOUT, 0};
  int ready = ::poll(&pfd, 1, wait);
  if (ready == 0)
    return make_error(ErrorCode::kTimeout,
                      "channel send deadline elapsed (peer not reading)");
  if (ready < 0 && errno != EINTR)
    return make_error(ErrorCode::kIoError, "channel poll failed");
  return Status::ok();
}

// Blocking send loop. With deadline_ms >= 0 the socket is driven
// nonblockingly and each stall waits in poll(POLLOUT) against the
// remaining budget, so a peer that stopped reading turns into a bounded
// kTimeout instead of a wedged sender.
Status send_all(int fd, const void* data, std::size_t size, int deadline_ms) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto start = std::chrono::steady_clock::now();
  const int flags =
      MSG_NOSIGNAL | (deadline_ms >= 0 ? MSG_DONTWAIT : 0);
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, p + sent, size - sent, flags);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && deadline_ms >= 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK)) {
      XMIT_RETURN_IF_ERROR(wait_writable(fd, deadline_ms, start));
      continue;
    }
    if (n <= 0)
      return make_error(ErrorCode::kIoError,
                        std::string("channel send failed: ") +
                            std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

// Drains a gather list with sendmsg, advancing past partial writes. The
// iovec array is caller-owned scratch and is consumed destructively.
Status sendmsg_all(int fd, struct iovec* iov, std::size_t count,
                   int deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  const int flags =
      MSG_NOSIGNAL | (deadline_ms >= 0 ? MSG_DONTWAIT : 0);
  while (count > 0) {
    struct msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    ssize_t n = ::sendmsg(fd, &msg, flags);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && deadline_ms >= 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK)) {
      XMIT_RETURN_IF_ERROR(wait_writable(fd, deadline_ms, start));
      continue;
    }
    if (n <= 0)
      return make_error(ErrorCode::kIoError,
                        std::string("channel send failed: ") +
                            std::strerror(errno));
    auto left = static_cast<std::size_t>(n);
    while (count > 0 && left >= iov[0].iov_len) {
      left -= iov[0].iov_len;
      ++iov;
      --count;
    }
    if (count > 0) {
      iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + left;
      iov[0].iov_len -= left;
    }
  }
  return Status::ok();
}

// Reads exactly `size` bytes or reports why it could not.
Status recv_exact(int fd, void* data, std::size_t size, int timeout_ms,
                  bool& clean_eof) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  clean_eof = false;
  while (got < size) {
    struct pollfd pfd = {fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0)
      return make_error(ErrorCode::kTimeout, "channel receive timeout");
    if (ready < 0)
      return make_error(ErrorCode::kIoError, "channel poll failed");
    ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n == 0) {
      clean_eof = got == 0;
      return make_error(clean_eof ? ErrorCode::kNotFound : ErrorCode::kIoError,
                        clean_eof ? "end of stream" : "peer closed mid-frame");
    }
    if (n < 0) return make_error(ErrorCode::kIoError, "channel recv failed");
    got += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

Channel::~Channel() { close(); }

Channel::Channel(Channel&& other) noexcept
    : fd_(other.fd_),
      sent_(other.sent_),
      bytes_sent_(other.bytes_sent_),
      send_deadline_ms_(other.send_deadline_ms_),
      failure_(other.failure_),
      failure_budget_(other.failure_budget_) {
  other.fd_ = -1;
}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    sent_ = other.sent_;
    bytes_sent_ = other.bytes_sent_;
    send_deadline_ms_ = other.send_deadline_ms_;
    failure_ = other.failure_;
    failure_budget_ = other.failure_budget_;
    other.fd_ = -1;
  }
  return *this;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::pair<Channel, Channel>> Channel::pipe() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    return Status(ErrorCode::kIoError, "socketpair() failed");
  return std::make_pair(Channel(fds[0]), Channel(fds[1]));
}

Result<Channel> Channel::connect(const std::string& host, std::uint16_t port,
                                 int timeout_ms) {
  const std::string where = host + ":" + std::to_string(port);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve the name (IPv4).
    struct addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 ||
        found == nullptr)
      return Status(ErrorCode::kNotFound, "cannot resolve host " + host);
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    ::freeaddrinfo(found);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Status(ErrorCode::kIoError, "socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Status(ErrorCode::kIoError, "connect to " + where + " failed");
    }
    struct pollfd pfd = {fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      ::close(fd);
      return Status(ErrorCode::kTimeout, "connect to " + where + " timed out");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (ready < 0 || so_error != 0) {
      ::close(fd);
      return Status(ErrorCode::kIoError, "connect to " + where + " failed");
    }
  }
  // Back to blocking for the framed send/receive paths.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Channel(fd);
}

Status Channel::write_bytes(const void* data, std::size_t size) {
  if (failure_ == InjectedFailure::kNone) {
    Status sent = send_all(fd_, data, size, send_deadline_ms_);
    // A blown send deadline leaves a partial frame on the wire: the
    // stream cannot be re-synchronized, so the transport is dead.
    if (sent.code() == ErrorCode::kTimeout) close();
    return sent;
  }
  if (size < failure_budget_) {
    failure_budget_ -= size;
    return send_all(fd_, data, size, send_deadline_ms_);
  }
  // Budget exhausted mid-write: emit the prefix the wire would have seen,
  // then die. For a kill the prefix stays in the kernel buffer and reaches
  // the peer before EOF; for a reset SO_LINGER{1,0} makes close() abortive.
  if (failure_budget_ > 0) {
    Status prefix = send_all(fd_, data, failure_budget_, send_deadline_ms_);
    (void)prefix;  // the connection is going down either way
  }
  if (failure_ == InjectedFailure::kResetAfterBytes) {
    struct linger lg = {1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  failure_ = InjectedFailure::kNone;
  failure_budget_ = 0;
  close();
  return make_error(ErrorCode::kIoError,
                    "injected connection kill/reset mid-stream");
}

Status Channel::send(std::span<const std::uint8_t> message) {
  if (fd_ < 0) return make_error(ErrorCode::kIoError, "channel is closed");
  if (message.size() > kMaxFrameBytes)
    return make_error(ErrorCode::kInvalidArgument, "message too large");
  std::uint8_t frame[4];
  store_with_order<std::uint32_t>(frame,
                                  static_cast<std::uint32_t>(message.size()),
                                  ByteOrder::kLittle);
  XMIT_RETURN_IF_ERROR(write_bytes(frame, sizeof(frame)));
  XMIT_RETURN_IF_ERROR(write_bytes(message.data(), message.size()));
  ++sent_;
  bytes_sent_ += message.size() + sizeof(frame);
  return Status::ok();
}

Status Channel::send_gather(std::span<const IoSlice> slices) {
  if (fd_ < 0) return make_error(ErrorCode::kIoError, "channel is closed");
  std::uint64_t total = 0;
  for (const IoSlice& s : slices) total += s.size;
  if (total > kMaxFrameBytes)
    return make_error(ErrorCode::kInvalidArgument, "message too large");
  std::uint8_t frame[4];
  store_with_order<std::uint32_t>(frame, static_cast<std::uint32_t>(total),
                                  ByteOrder::kLittle);

  if (failure_ != InjectedFailure::kNone) {
    // Armed channels flatten the gather list so the byte budget is applied
    // to one contiguous wire image (test-only path; the alloc is fine).
    std::vector<std::uint8_t> flat;
    flat.reserve(sizeof(frame) + static_cast<std::size_t>(total));
    flat.insert(flat.end(), frame, frame + sizeof(frame));
    for (const IoSlice& s : slices) {
      const auto* p = static_cast<const std::uint8_t*>(s.data);
      flat.insert(flat.end(), p, p + s.size);
    }
    XMIT_RETURN_IF_ERROR(write_bytes(flat.data(), flat.size()));
    ++sent_;
    bytes_sent_ += static_cast<std::size_t>(total) + sizeof(frame);
    return Status::ok();
  }

  // Batch through a stack iovec array: the frame header rides in the first
  // batch, and records with more out-of-line fields than kIovBatch fall
  // back to additional sendmsg calls rather than a heap allocation.
  constexpr std::size_t kIovBatch = 64;
  struct iovec iov[kIovBatch + 1];
  std::size_t used = 0;
  iov[used].iov_base = frame;
  iov[used].iov_len = sizeof(frame);
  ++used;
  for (const IoSlice& s : slices) {
    if (s.size == 0) continue;
    if (used == kIovBatch + 1) {
      Status batch = sendmsg_all(fd_, iov, used, send_deadline_ms_);
      if (batch.code() == ErrorCode::kTimeout) close();
      XMIT_RETURN_IF_ERROR(batch);
      used = 0;
    }
    iov[used].iov_base = const_cast<void*>(s.data);
    iov[used].iov_len = s.size;
    ++used;
  }
  if (used > 0) {
    Status batch = sendmsg_all(fd_, iov, used, send_deadline_ms_);
    if (batch.code() == ErrorCode::kTimeout) close();
    XMIT_RETURN_IF_ERROR(batch);
  }
  ++sent_;
  bytes_sent_ += static_cast<std::size_t>(total) + sizeof(frame);
  return Status::ok();
}

Status Channel::send_some(std::span<const std::uint8_t> message,
                          std::size_t& cursor) {
  if (fd_ < 0) return make_error(ErrorCode::kIoError, "channel is closed");
  if (message.size() > kMaxFrameBytes)
    return make_error(ErrorCode::kInvalidArgument, "message too large");
  if (failure_ != InjectedFailure::kNone && cursor == 0) {
    // Armed channels route through the blocking seam so injected byte
    // budgets stay exact (test-only path).
    XMIT_RETURN_IF_ERROR(send(message));
    cursor = message.size() + 4;
    return Status::ok();
  }
  std::uint8_t header[4];
  store_with_order<std::uint32_t>(header,
                                  static_cast<std::uint32_t>(message.size()),
                                  ByteOrder::kLittle);
  const std::size_t total = message.size() + sizeof(header);
  while (cursor < total) {
    const std::uint8_t* p;
    std::size_t n;
    if (cursor < sizeof(header)) {
      p = header + cursor;
      n = sizeof(header) - cursor;
    } else {
      p = message.data() + (cursor - sizeof(header));
      n = total - cursor;
    }
    ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return make_error(ErrorCode::kUnavailable, "channel send would block");
    if (w <= 0)
      return make_error(ErrorCode::kIoError,
                        std::string("channel send failed: ") +
                            std::strerror(errno));
    cursor += static_cast<std::size_t>(w);
  }
  ++sent_;
  bytes_sent_ += total;
  return Status::ok();
}

bool Channel::poll_writable(int timeout_ms) {
  if (fd_ < 0) return false;
  struct pollfd pfd = {fd_, POLLOUT, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

Status Channel::recv_some(std::vector<std::uint8_t>& buf,
                          std::size_t max_bytes) {
  if (fd_ < 0) return make_error(ErrorCode::kIoError, "channel is closed");
  const std::size_t old = buf.size();
  buf.resize(old + max_bytes);
  ssize_t n;
  do {
    n = ::recv(fd_, buf.data() + old, max_bytes, MSG_DONTWAIT);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    buf.resize(old);
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return make_error(ErrorCode::kUnavailable, "nothing to receive yet");
    return make_error(ErrorCode::kIoError, "channel recv failed");
  }
  buf.resize(old + static_cast<std::size_t>(n));
  if (n == 0) return make_error(ErrorCode::kNotFound, "end of stream");
  return Status::ok();
}

bool Channel::poll_readable(int timeout_ms) {
  if (fd_ < 0) return false;
  struct pollfd pfd = {fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

Result<std::vector<std::uint8_t>> Channel::receive(int timeout_ms) {
  std::vector<std::uint8_t> message;
  XMIT_RETURN_IF_ERROR(receive_into(message, timeout_ms));
  return message;
}

Status Channel::receive_into(std::vector<std::uint8_t>& out, int timeout_ms) {
  out.clear();
  if (fd_ < 0) return Status(ErrorCode::kIoError, "channel is closed");
  std::uint8_t frame[4];
  bool clean_eof = false;
  XMIT_RETURN_IF_ERROR(recv_exact(fd_, frame, sizeof(frame), timeout_ms,
                                  clean_eof));
  std::uint32_t length = load_with_order<std::uint32_t>(frame, ByteOrder::kLittle);
  if (length > kMaxFrameBytes)
    return Status(ErrorCode::kParseError, "frame length is implausible");
  out.resize(length);
  if (length > 0)
    XMIT_RETURN_IF_ERROR(
        recv_exact(fd_, out.data(), length, timeout_ms, clean_eof));
  return Status::ok();
}

ChannelListener::~ChannelListener() {
  if (fd_ >= 0) ::close(fd_);
}

ChannelListener::ChannelListener(ChannelListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

ChannelListener& ChannelListener::operator=(ChannelListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ChannelListener> ChannelListener::listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(ErrorCode::kIoError, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kIoError, "bind failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status(ErrorCode::kIoError, "listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return ChannelListener(fd, ntohs(addr.sin_port));
}

Result<Channel> ChannelListener::accept(int timeout_ms) {
  struct pollfd pfd = {fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return Status(ErrorCode::kTimeout, "accept timeout");
  if (ready < 0) return Status(ErrorCode::kIoError, "accept poll failed");
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return Status(ErrorCode::kIoError, "accept failed");
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Channel(client);
}

}  // namespace xmit::net
