#include "net/url.hpp"

#include "common/strings.hpp"

namespace xmit::net {

std::string Url::to_string() const {
  std::string out = scheme + "://";
  if (scheme == "file") return out + path;
  out += host;
  if (!(scheme == "http" && port == 80)) {
    out += ":";
    out += std::to_string(port);
  }
  out += path;
  return out;
}

Result<Url> parse_url(std::string_view text) {
  std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos)
    return Status(ErrorCode::kParseError,
                  "URL '" + std::string(text) + "' has no scheme");
  Url url;
  url.scheme = to_lower(text.substr(0, scheme_end));
  std::string_view rest = text.substr(scheme_end + 3);

  if (url.scheme == "file") {
    if (rest.empty() || rest[0] != '/')
      return Status(ErrorCode::kParseError,
                    "file URL must use an absolute path: " + std::string(text));
    url.path = std::string(rest);
    return url;
  }
  if (url.scheme != "http")
    return Status(ErrorCode::kUnsupported,
                  "unsupported URL scheme '" + url.scheme + "'");

  std::size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  url.path = path_start == std::string_view::npos
                 ? "/"
                 : std::string(rest.substr(path_start));

  std::size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    url.host = std::string(authority);
    url.port = 80;
  } else {
    url.host = std::string(authority.substr(0, colon));
    XMIT_ASSIGN_OR_RETURN(auto port, parse_uint(authority.substr(colon + 1)));
    if (port == 0 || port > 65535)
      return Status(ErrorCode::kParseError,
                    "bad port in URL '" + std::string(text) + "'");
    url.port = static_cast<std::uint16_t>(port);
  }
  if (url.host.empty())
    return Status(ErrorCode::kParseError,
                  "URL '" + std::string(text) + "' has no host");
  return url;
}

}  // namespace xmit::net
