// Channel: the message transport the application components talk over.
//
// Length-prefixed byte messages (u32 little-endian frame header) over a
// stream socket. Two flavours share the class: connected TCP channels
// (Hydrology components across processes, latency benches) and socketpair
// pipes (components co-resident in one process). PBIO records pass
// through whole — the channel is payload-agnostic, exactly like the
// transport layer beneath a BCM.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace xmit::net {

// Test seam for the chaos harness: a channel can be armed to die after a
// byte budget, modelling a peer crash (kill: already-written bytes stay in
// the kernel buffer and drain to the receiver before EOF) or an abortive
// close (reset: SO_LINGER{1,0} turns close() into an RST that may destroy
// in-flight data too). kNone is the production state.
enum class InjectedFailure : std::uint8_t {
  kNone = 0,
  kKillAfterBytes,   // send budget bytes (headers included), then close
  kResetAfterBytes,  // as above, but close abortively (TCP RST)
};

class Channel {
 public:
  Channel() = default;
  ~Channel();
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Bidirectional in-process pair (AF_UNIX socketpair).
  static Result<std::pair<Channel, Channel>> pipe();

  // TCP client connection to `host`:`port` (numeric address or name,
  // resolved IPv4). A connect that does not complete within timeout_ms
  // yields kTimeout; refusal is kIoError.
  static Result<Channel> connect(const std::string& host, std::uint16_t port,
                                 int timeout_ms = 5000);

  // Back-compat convenience: loopback connect.
  static Result<Channel> connect(std::uint16_t port, int timeout_ms = 5000) {
    return connect("127.0.0.1", port, timeout_ms);
  }

  bool is_open() const { return fd_ >= 0; }

  Status send(std::span<const std::uint8_t> message);
  Status send(const std::vector<std::uint8_t>& message) {
    return send(std::span<const std::uint8_t>(message));
  }

  // Nonblocking framed send with partial-write resumption. `cursor` tracks
  // progress through the wire image ([4-byte header | message]); callers
  // start it at 0 and pass the same variable back until the frame
  // completes. Returns OK when the whole frame is on the wire,
  // kUnavailable when the socket would block (EAGAIN — call again when
  // writable, with the cursor untouched in between), and kIoError /
  // kTimeout on a dead transport. A frame abandoned mid-cursor leaves the
  // stream unframeable: the only safe next step is close().
  Status send_some(std::span<const std::uint8_t> message, std::size_t& cursor);

  // True when a send of at least one byte would not block (POLLOUT within
  // timeout_ms; 0 = poll-and-return).
  bool poll_writable(int timeout_ms);

  // Bounds every blocking send path: a send that cannot place its bytes
  // within `deadline_ms` fails with kTimeout and closes the channel (the
  // frame is partially written — the stream cannot be re-synchronized).
  // Negative restores the unbounded default. This is the liveness fix for
  // senders wedged in send_all toward a peer that stopped reading.
  void set_send_deadline(int deadline_ms) { send_deadline_ms_ = deadline_ms; }
  int send_deadline_ms() const { return send_deadline_ms_; }

  // Sends one frame whose payload is the concatenation of `slices`
  // (sendmsg gather I/O) — the wire bytes are identical to send() of the
  // flattened message, but nothing is copied into an intermediate buffer
  // and nothing is heap-allocated, for any slice count.
  Status send_gather(std::span<const IoSlice> slices);

  // Blocks up to timeout_ms for the next complete frame. A cleanly closed
  // peer yields kNotFound ("end of stream"), an expired deadline yields
  // kTimeout, and every other socket failure is kIoError.
  Result<std::vector<std::uint8_t>> receive(int timeout_ms = 5000);

  // receive() into a caller-owned buffer: once `out`'s capacity has grown
  // to the session's largest frame, further receives allocate nothing.
  Status receive_into(std::vector<std::uint8_t>& out, int timeout_ms = 5000);

  // Nonblocking raw receive: appends whatever bytes the socket currently
  // holds (up to max_bytes) to `buf`. Returns kUnavailable when nothing
  // is waiting (EAGAIN), kNotFound on EOF, kIoError otherwise. Callers
  // own the re-framing — this is the readiness-model primitive the
  // flow-controlled session (and the future reactor) drain from, and it
  // must not be mixed with receive_into on the same stream.
  Status recv_some(std::vector<std::uint8_t>& buf,
                   std::size_t max_bytes = 64 * 1024);

  // True when a recv of at least one byte (or EOF) would not block.
  bool poll_readable(int timeout_ms);

  void close();

  // Arms a deterministic failure: after `byte_budget` more outgoing bytes
  // (frame headers count — they are wire bytes) the channel sends the
  // prefix that fits, dies per `mode`, and the pending send returns
  // kIoError. Exactly how a peer crash at that byte looks from both ends.
  void arm_failure(InjectedFailure mode, std::size_t byte_budget) {
    failure_ = mode;
    failure_budget_ = byte_budget;
  }
  InjectedFailure armed_failure() const { return failure_; }

  std::size_t messages_sent() const { return sent_; }
  std::size_t bytes_sent() const { return bytes_sent_; }

 private:
  explicit Channel(int fd) : fd_(fd) {}
  friend class ChannelListener;

  // send_all that honours an armed failure; all send paths route their
  // wire bytes through here so byte budgets are exact.
  Status write_bytes(const void* data, std::size_t size);

  int fd_ = -1;
  std::size_t sent_ = 0;
  std::size_t bytes_sent_ = 0;
  int send_deadline_ms_ = -1;  // <0: block indefinitely (legacy behaviour)
  InjectedFailure failure_ = InjectedFailure::kNone;
  std::size_t failure_budget_ = 0;
};

class ChannelListener {
 public:
  ~ChannelListener();
  ChannelListener(ChannelListener&& other) noexcept;
  ChannelListener& operator=(ChannelListener&& other) noexcept;
  ChannelListener(const ChannelListener&) = delete;
  ChannelListener& operator=(const ChannelListener&) = delete;

  // Listens on 127.0.0.1:`port` (0 picks a free port).
  static Result<ChannelListener> listen(std::uint16_t port = 0);

  std::uint16_t port() const { return port_; }

  Result<Channel> accept(int timeout_ms = 5000);

 private:
  explicit ChannelListener(int fd, std::uint16_t port)
      : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace xmit::net
