// Channel: the message transport the application components talk over.
//
// Length-prefixed byte messages (u32 little-endian frame header) over a
// stream socket. Two flavours share the class: connected TCP channels
// (Hydrology components across processes, latency benches) and socketpair
// pipes (components co-resident in one process). PBIO records pass
// through whole — the channel is payload-agnostic, exactly like the
// transport layer beneath a BCM.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace xmit::net {

class Channel {
 public:
  Channel() = default;
  ~Channel();
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Bidirectional in-process pair (AF_UNIX socketpair).
  static Result<std::pair<Channel, Channel>> pipe();

  // TCP client connection to 127.0.0.1:`port`. A connect that does not
  // complete within timeout_ms yields kTimeout; refusal is kIoError.
  static Result<Channel> connect(std::uint16_t port, int timeout_ms = 5000);

  bool is_open() const { return fd_ >= 0; }

  Status send(std::span<const std::uint8_t> message);
  Status send(const std::vector<std::uint8_t>& message) {
    return send(std::span<const std::uint8_t>(message));
  }

  // Sends one frame whose payload is the concatenation of `slices`
  // (sendmsg gather I/O) — the wire bytes are identical to send() of the
  // flattened message, but nothing is copied into an intermediate buffer
  // and nothing is heap-allocated, for any slice count.
  Status send_gather(std::span<const IoSlice> slices);

  // Blocks up to timeout_ms for the next complete frame. A cleanly closed
  // peer yields kNotFound ("end of stream"), an expired deadline yields
  // kTimeout, and every other socket failure is kIoError.
  Result<std::vector<std::uint8_t>> receive(int timeout_ms = 5000);

  // receive() into a caller-owned buffer: once `out`'s capacity has grown
  // to the session's largest frame, further receives allocate nothing.
  Status receive_into(std::vector<std::uint8_t>& out, int timeout_ms = 5000);

  void close();

  std::size_t messages_sent() const { return sent_; }
  std::size_t bytes_sent() const { return bytes_sent_; }

 private:
  explicit Channel(int fd) : fd_(fd) {}
  friend class ChannelListener;

  int fd_ = -1;
  std::size_t sent_ = 0;
  std::size_t bytes_sent_ = 0;
};

class ChannelListener {
 public:
  ~ChannelListener();
  ChannelListener(ChannelListener&& other) noexcept;
  ChannelListener& operator=(ChannelListener&& other) noexcept;
  ChannelListener(const ChannelListener&) = delete;
  ChannelListener& operator=(const ChannelListener&) = delete;

  // Listens on 127.0.0.1:`port` (0 picks a free port).
  static Result<ChannelListener> listen(std::uint16_t port = 0);

  std::uint16_t port() const { return port_; }

  Result<Channel> accept(int timeout_ms = 5000);

 private:
  explicit ChannelListener(int fd, std::uint16_t port)
      : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace xmit::net
