// Scheme-dispatching document fetch: how XMIT "loads" metadata from URLs.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"
#include "net/retry.hpp"

namespace xmit::net {

struct FetchOptions {
  int timeout_ms = 5000;         // per-attempt HTTP/connect budget
  RetryPolicy retry;             // transient failures retried per policy
  RetryStats* stats = nullptr;   // optional attempt breakdown, out
};

// Fetch the document at `url` (http:// via HttpClient, file:// from the
// local filesystem). HTTP status mapping: 404 -> kNotFound, other 4xx ->
// kInvalidArgument, 5xx -> kIoError (status code in the message); poll
// timeouts -> kTimeout. Transient failures (kTimeout/kIoError — 5xx,
// truncated bodies, resets) are retried under options.retry.
Result<std::string> fetch(std::string_view url, const FetchOptions& options);
Result<std::string> fetch(std::string_view url, int timeout_ms = 5000);

// Read a whole local file (also used by examples and the bench harness).
Result<std::string> read_file(const std::string& path);
Status write_file(const std::string& path, std::string_view contents);

}  // namespace xmit::net
