// Scheme-dispatching document fetch: how XMIT "loads" metadata from URLs.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"

namespace xmit::net {

// Fetch the document at `url` (http:// via HttpClient, file:// from the
// local filesystem). HTTP non-200 responses are kNotFound/kIoError.
Result<std::string> fetch(std::string_view url, int timeout_ms = 5000);

// Read a whole local file (also used by examples and the bench harness).
Result<std::string> read_file(const std::string& path);
Status write_file(const std::string& path, std::string_view contents);

}  // namespace xmit::net
