#include "net/faults.hpp"

#include <algorithm>

namespace xmit::net {

std::shared_ptr<FaultPlan> FaultPlan::fail_n_then_succeed(int n,
                                                          FaultAction fault) {
  auto plan = std::shared_ptr<FaultPlan>(new FaultPlan());
  plan->schedule_.assign(static_cast<std::size_t>(std::max(n, 0)), fault);
  return plan;
}

std::shared_ptr<FaultPlan> FaultPlan::sequence(
    std::vector<FaultAction> actions) {
  auto plan = std::shared_ptr<FaultPlan>(new FaultPlan());
  plan->schedule_ = std::move(actions);
  return plan;
}

std::shared_ptr<FaultPlan> FaultPlan::random(std::uint64_t seed, double p,
                                             std::vector<FaultAction> menu) {
  auto plan = std::shared_ptr<FaultPlan>(new FaultPlan());
  plan->randomized_ = true;
  plan->fault_probability_ = p;
  plan->menu_ = std::move(menu);
  plan->rng_ = std::make_unique<Rng>(seed);
  return plan;
}

std::shared_ptr<FaultPlan> FaultPlan::clear() {
  return std::shared_ptr<FaultPlan>(new FaultPlan());
}

FaultAction FaultPlan::next() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  FaultAction action;
  if (randomized_) {
    if (!menu_.empty() && rng_->chance(fault_probability_))
      action = menu_[rng_->below(menu_.size())];
  } else if (cursor_ < schedule_.size()) {
    action = schedule_[cursor_++];
  }
  if (action.kind != FaultKind::kNone) ++faults_;
  return action;
}

std::size_t FaultPlan::requests_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::size_t FaultPlan::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

FaultHook FaultPlan::as_hook(std::shared_ptr<FaultPlan> plan) {
  return [plan](const std::string&) { return plan->next(); };
}

Status TruncatingChannel::send(std::span<const std::uint8_t> message) {
  FaultAction action = plan_ ? plan_->next() : FaultAction::none();
  if (action.kind == FaultKind::kTruncateBody &&
      action.truncate_at < message.size()) {
    ++truncated_;
    return inner_.send(message.first(action.truncate_at));
  }
  if (action.kind == FaultKind::kReset) {
    inner_.close();
    return make_error(ErrorCode::kIoError, "injected connection reset");
  }
  return inner_.send(message);
}

void arm_channel(Channel& channel, const FaultAction& action) {
  switch (action.kind) {
    case FaultKind::kKillAfterBytes:
      channel.arm_failure(InjectedFailure::kKillAfterBytes,
                          action.byte_budget);
      break;
    case FaultKind::kRstMidFrame:
      channel.arm_failure(InjectedFailure::kResetAfterBytes,
                          action.byte_budget);
      break;
    default:
      break;
  }
}

Result<std::size_t> StallingReader::consume_then_stall(
    const FaultAction& action, int timeout_ms) {
  if (action.kind != FaultKind::kStallReadsAfterBytes)
    return Status(ErrorCode::kInvalidArgument,
                  "StallingReader needs a stall_reads_after action");
  std::size_t frames = 0;
  std::vector<std::uint8_t> scratch;
  while (consumed_ < action.byte_budget) {
    Status got = channel_.receive_into(scratch, timeout_ms);
    if (!got.is_ok()) return got;
    consumed_ += scratch.size() + 4;  // the u32 frame header is wire bytes
    ++frames;
  }
  return frames;  // park: the caller keeps this object (and the fd) alive
}

Result<HangingAcceptor> HangingAcceptor::listen(std::uint16_t port) {
  XMIT_ASSIGN_OR_RETURN(auto listener, ChannelListener::listen(port));
  return HangingAcceptor(std::move(listener));
}

Status HangingAcceptor::accept_and_hang(int timeout_ms) {
  XMIT_ASSIGN_OR_RETURN(auto channel, listener_.accept(timeout_ms));
  parked_.push_back(std::move(channel));
  return Status::ok();
}

}  // namespace xmit::net
