// Minimal HTTP/1.1 server and client — the discovery substrate.
//
// The paper hosts XML schema documents on an Apache server and XMIT
// retrieves them over "(nearly) ubiquitous HTTP transport services".
// HttpServer serves an in-memory document map on a loopback port from a
// background thread; HttpClient issues one-shot GETs. GET is the only
// method either side needs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "net/faults.hpp"

namespace xmit::net {

struct HttpResponse {
  int status_code = 0;
  std::string content_type;
  std::string body;
};

// POST handler: request body in, response out. Runs on the server thread.
using PostHandler = std::function<HttpResponse(const std::string& body)>;

// GET handler: renders the response at request time (live stats pages and
// other documents that cannot be pre-published). Runs on the server thread.
using GetHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  // Binds 127.0.0.1:`port` (0 picks a free port) and starts the accept
  // loop on a background thread.
  static Result<std::unique_ptr<HttpServer>> start(std::uint16_t port = 0);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::string url_for(std::string_view path) const;

  // Publish / replace a document. Thread-safe; a re-publish is how the
  // "centralized format change" scenario is driven.
  void put_document(std::string path, std::string body,
                    std::string content_type = "text/xml");
  void remove_document(const std::string& path);

  // Install a POST endpoint (e.g. an XML-RPC dispatcher at "/RPC2").
  void set_post_handler(std::string path, PostHandler handler);

  // Install a dynamic GET endpoint; consulted when no published document
  // matches the path (documents win, so put_document can shadow it).
  void set_get_handler(std::string path, GetHandler handler);

  // Fault injection (net/faults.hpp): the hook is consulted once per
  // request and its action applied to the response — injected HTTP
  // errors, truncated/corrupted bodies, delays, or connection resets.
  // Pass nullptr to serve normally again. Thread-safe.
  void set_fault_hook(FaultHook hook);

  std::size_t request_count() const { return request_count_.load(); }

  void stop();

 private:
  HttpServer() = default;

  void accept_loop();
  void handle_connection(int client_fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> request_count_{0};

  mutable std::mutex mutex_;
  std::map<std::string, HttpResponse> documents_ XMIT_GUARDED_BY(mutex_);
  std::map<std::string, PostHandler> post_handlers_ XMIT_GUARDED_BY(mutex_);
  std::map<std::string, GetHandler> get_handlers_ XMIT_GUARDED_BY(mutex_);
  FaultHook fault_hook_ XMIT_GUARDED_BY(mutex_);
};

class HttpClient {
 public:
  // One-shot GET http://host:port/path with a bounded timeout.
  static Result<HttpResponse> get(const std::string& host, std::uint16_t port,
                                  const std::string& path,
                                  int timeout_ms = 5000);

  // One-shot POST with a request body.
  static Result<HttpResponse> post(const std::string& host, std::uint16_t port,
                                   const std::string& path,
                                   const std::string& body,
                                   const std::string& content_type = "text/xml",
                                   int timeout_ms = 5000);
};

}  // namespace xmit::net
