// Retry policy and circuit breaker for the discovery plane.
//
// The paper's premise is that format metadata lives remotely — schema
// documents and PBIO format blobs "fetched at run time, typically over
// HTTP" — so the discovery path must survive a flaky or briefly-down
// format server. This header provides the three fault-tolerance
// primitives threaded through net::fetch, toolkit::Xmit and
// toolkit::RemoteFormatResolver:
//
//  * an error classifier (is_transient): timeouts, socket failures and
//    HTTP 5xx are worth retrying; 4xx, parse and integrity failures are
//    permanent and fail fast,
//  * RetryPolicy: bounded attempts with exponential backoff,
//    deterministic seeded jitter (common/rng.hpp) and an overall
//    deadline budget,
//  * CircuitBreaker: after N consecutive failures the breaker opens and
//    callers fail fast for a cooldown instead of stalling every
//    ResolvingDecoder::decode on a dead publisher; the first call after
//    the cooldown is a half-open probe.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/rng.hpp"

namespace xmit::net {

// True for failures a retry might cure: timeouts, socket errors,
// truncated responses, HTTP 5xx (all surfaced as kTimeout/kIoError).
// Permanent failures — 4xx (kNotFound/kInvalidArgument), kParseError,
// integrity-check mismatches — return false and must fail fast.
bool is_transient(ErrorCode code);
inline bool is_transient(const Status& status) {
  return is_transient(status.code());
}

// Where the attempts went during one retried operation.
struct RetryStats {
  int attempts = 0;        // total tries, >= 1 once the operation ran
  int retries = 0;         // attempts after the first
  double backoff_ms = 0;   // total backoff requested between attempts
  Status last_error;       // last failure observed (OK if none)
};

struct RetryPolicy {
  int max_attempts = 3;            // 1 = no retries
  double initial_backoff_ms = 50;  // delay before the first retry
  double multiplier = 2.0;         // exponential growth per retry
  double max_backoff_ms = 2000;    // cap on a single delay
  double deadline_ms = 30000;      // overall budget, sleeps included
                                   // (<= 0 means no deadline)
  std::uint64_t jitter_seed = 0;   // deterministic jitter stream
  // Test seam: replaces the real sleep between attempts. The default
  // (nullptr) sleeps on this thread.
  std::function<void(double ms)> sleep_fn;

  static RetryPolicy none() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }

  // Backoff before retry `retry_index` (0-based): exponential with a
  // jitter factor in [0.5, 1.5) drawn from `rng`.
  double backoff_for(int retry_index, Rng& rng) const;
};

// Runs `op` under `policy`: retries transient failures with backoff,
// fails fast on permanent ones, stops when attempts or the deadline
// budget run out. `stats`, when given, receives the attempt breakdown
// whether the call succeeds or fails.
template <typename T>
Result<T> with_retry(const RetryPolicy& policy,
                     const std::function<Result<T>()>& op,
                     RetryStats* stats = nullptr);

// The non-template core: decides after a failed attempt whether to retry
// and how long to sleep first. Returns false when the caller should give
// up (permanent error, attempts exhausted, or deadline would be blown).
bool retry_after_failure(const RetryPolicy& policy, const Status& failure,
                         int attempts_made, double elapsed_ms, Rng& rng,
                         double* backoff_ms);

void retry_sleep(const RetryPolicy& policy, double ms);

template <typename T>
Result<T> with_retry(const RetryPolicy& policy,
                     const std::function<Result<T>()>& op,
                     RetryStats* stats) {
  Rng rng(policy.jitter_seed);
  RetryStats local;
  double elapsed_ms = 0;  // deadline accounting counts backoff only; the
                          // per-attempt timeout bounds the op itself
  Status failure;
  for (;;) {
    auto result = op();
    ++local.attempts;
    local.retries = local.attempts - 1;
    if (result.is_ok()) {
      if (stats != nullptr) *stats = local;
      return result;
    }
    failure = result.status();
    local.last_error = failure;
    double backoff = 0;
    if (!retry_after_failure(policy, failure, local.attempts, elapsed_ms,
                             rng, &backoff)) {
      if (stats != nullptr) *stats = local;
      return failure;
    }
    local.backoff_ms += backoff;
    elapsed_ms += backoff;
    retry_sleep(policy, backoff);
  }
}

// Per-dependency circuit breaker. Closed: calls flow, consecutive
// failures are counted. Open: calls are rejected without touching the
// network until `cooldown_ms` passes. Half-open: exactly one probe call
// is admitted; success closes the breaker, failure re-opens it for
// another cooldown. Thread-safe — resolvers sit on the decode hot path.
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 3;    // consecutive failures before opening
    double cooldown_ms = 5000;    // open duration before a probe
    // Test seam: monotonic now() in ms. Default: steady_clock.
    std::function<double()> now_ms;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options options);

  // True if the caller may attempt the protected operation. Claims the
  // half-open probe slot when the cooldown has elapsed. A true return
  // must be followed by record_success() or record_failure().
  bool allow();
  void record_success();
  void record_failure();

  State state() const;
  int consecutive_failures() const;
  std::size_t rejected_calls() const;  // denied while open

 private:
  double now() const;

  Options options_;
  mutable std::mutex mutex_;
  State state_ XMIT_GUARDED_BY(mutex_) = State::kClosed;
  int consecutive_failures_ XMIT_GUARDED_BY(mutex_) = 0;
  double opened_at_ms_ XMIT_GUARDED_BY(mutex_) = 0;
  bool probe_in_flight_ XMIT_GUARDED_BY(mutex_) = false;
  std::size_t rejected_ XMIT_GUARDED_BY(mutex_) = 0;
};

}  // namespace xmit::net
