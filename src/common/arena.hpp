// Bump allocator backing decoded variable-length data (strings, dynamic
// arrays). A decode that converts layouts needs somewhere to put the
// out-of-line bytes; the arena keeps them alive as long as the decoded
// struct is in use and frees them all at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/endian.hpp"

namespace xmit {

class Arena {
 public:
  explicit Arena(std::size_t chunk_size = 16 * 1024)
      : chunk_size_(chunk_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t alignment = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    std::size_t aligned = align_up(used_, alignment);
    if (current_ == nullptr || aligned + size > capacity_) {
      grow(size + alignment);
      aligned = align_up(used_, alignment);
    }
    used_ = aligned + size;
    ++allocation_count_;
    return current_ + aligned;
  }

  char* duplicate(const void* data, std::size_t size, std::size_t alignment = 1) {
    auto* out = static_cast<char*>(allocate(size, alignment));
    std::memcpy(out, data, size);
    return out;
  }

  // Copy `size` bytes and NUL-terminate — the decoded-string helper.
  char* duplicate_string(const char* data, std::size_t size) {
    auto* out = static_cast<char*>(allocate(size + 1));
    std::memcpy(out, data, size);
    out[size] = '\0';
    return out;
  }

  void reset() {
    chunks_.clear();
    current_ = nullptr;
    capacity_ = used_ = 0;
    allocation_count_ = 0;
  }

  // Forget every allocation but keep the backing memory, so the next use
  // of the arena allocates from the warm chunk instead of the heap.
  // Multiple chunks collapse into one sized for their sum — repeated
  // same-shaped workloads converge on a single chunk and then rewind
  // touches the heap zero times (the pooling contract in DESIGN.md §5d).
  // Pointers handed out before rewind() are invalidated just as with
  // reset().
  void rewind() {
    if (chunks_.size() > 1) {
      std::size_t total = 0;
      for (const auto& chunk : chunks_) total += chunk.capacity;
      chunks_.clear();
      chunks_.push_back({std::make_unique<char[]>(total), total});
      current_ = chunks_.back().data.get();
      capacity_ = total;
    }
    used_ = 0;
    allocation_count_ = 0;
  }

  std::size_t allocation_count() const { return allocation_count_; }
  std::size_t bytes_in_use() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.capacity;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity;
  };

  void grow(std::size_t at_least) {
    std::size_t capacity = chunk_size_;
    while (capacity < at_least) capacity *= 2;
    chunks_.push_back({std::make_unique<char[]>(capacity), capacity});
    current_ = chunks_.back().data.get();
    capacity_ = capacity;
    used_ = 0;
  }

  std::size_t chunk_size_;
  std::vector<Chunk> chunks_;
  char* current_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t allocation_count_ = 0;
};

}  // namespace xmit
