// Small string utilities shared by the XML parser, URL parser and codecs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace xmit {

bool is_ascii_space(char c);
bool is_ascii_digit(char c);
bool is_ascii_alpha(char c);

std::string_view trim(std::string_view sv);
std::string to_lower(std::string_view sv);

bool starts_with(std::string_view sv, std::string_view prefix);
bool ends_with(std::string_view sv, std::string_view suffix);

// Split on a single character; empty tokens are kept (URL paths need them).
std::vector<std::string_view> split(std::string_view sv, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Strict numeric parsing: whole string must be consumed, no locale.
Result<std::int64_t> parse_int(std::string_view sv);
Result<std::uint64_t> parse_uint(std::string_view sv);
Result<double> parse_double(std::string_view sv);

// Number formatting used by the XML wire codec. `format_float` produces a
// round-trippable shortest-ish representation (printf %.9g / %.17g), which
// is where XML-as-wire-format burns its CPU time — intentionally faithful
// to what text encodings must pay.
std::string format_int(std::int64_t v);
std::string format_uint(std::uint64_t v);
std::string format_float(float v);
std::string format_double(double v);

// Case-sensitive replace-all, used by the code generators.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

}  // namespace xmit
