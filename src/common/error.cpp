#include "common/error.hpp"

namespace xmit {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kMalformedInput: return "malformed_input";
    case ErrorCode::kDataLoss: return "data_loss";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xmit
