// Deterministic PRNG for property tests and workload generators.
//
// xoshiro256** seeded via SplitMix64: fast, reproducible across platforms,
// no <random> engine-distribution variability between standard libraries.
#pragma once

#include <cstdint>
#include <string>

namespace xmit {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into xoshiro state.
    std::uint64_t x = seed;
    for (auto& slot : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      slot = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, bound) without modulo bias worth caring about in tests.
  std::uint64_t below(std::uint64_t bound) { return bound ? next_u64() % bound : 0; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double uniform() {  // [0,1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  float uniform_f() { return static_cast<float>(uniform()); }

  bool chance(double p) { return uniform() < p; }

  // Random lowercase identifier, handy for fuzzing schema names.
  std::string identifier(std::size_t length) {
    std::string s;
    s.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
      s.push_back(static_cast<char>('a' + below(26)));
    return s;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace xmit
