// DecodeLimits: the shared resource budget for every decoder that faces
// untrusted bytes (xml::Parser, xsd schema loading, pbio record/format
// decoding, rpc framing, session frames).
//
// XMIT's premise is that peers exchange self-describing formats discovered
// at run time, so every decoder consumes input from machines we do not
// control. A hostile or corrupt peer must never be able to trigger a
// crash, a hang, or an unbounded allocation — only a typed Status
// (kResourceExhausted for a blown budget, kMalformedInput /
// kParseError for structurally bad bytes). DecodeLimits is the single
// knob callers tune; the defaults are generous for every legitimate
// workload in this repository but small enough that a malicious input
// cannot monopolize memory or CPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace xmit {

struct DecodeLimits {
  // Maximum element / structure nesting depth (XML elements, nested
  // format metadata, XSD type graphs). Guards recursive descent stacks.
  int max_depth = 128;

  // Maximum number of XML elements in one document, and of attributes on
  // one element. Guards O(n) DOM blowup from tiny inputs.
  std::size_t max_elements = 1u << 20;
  std::size_t max_attributes = 256;

  // Maximum length of any single decoded string / text run / blob, in
  // bytes (XML text and attribute values, wire strings, octet sequences).
  std::size_t max_string_bytes = 16u << 20;

  // Maximum number of entity-reference expansions while parsing one XML
  // document (billion-laughs guard).
  std::size_t max_entity_expansions = 1u << 20;

  // Maximum bytes of out-of-line memory one decode may allocate (arena
  // strings, dynamic arrays, decoded vectors).
  std::uint64_t max_total_alloc = 64u << 20;

  // Maximum product of fixed-array bounds: caps both a single declared
  // bound (XSD maxOccurs, PBIO "type[n]") and the total number of
  // flattened leaf fields a format may expand to.
  std::uint64_t max_array_elements = 1u << 20;
  std::size_t max_flat_fields = 1u << 16;

  // Maximum size of one wire message / frame a decoder will look at.
  std::size_t max_message_bytes = 256u << 20;

  // Session budget: after this many malformed frames from one peer the
  // session refuses further traffic (kResourceExhausted).
  std::size_t max_malformed_frames = 64;

  static DecodeLimits defaults() { return DecodeLimits{}; }
};

// Overflow-checked size arithmetic for length-field sanity checks.
// Untrusted length * element-size products and offset + length sums must
// never wrap: a wrapped value passes a naive bounds check and turns into
// a wild read. These helpers return false on overflow and leave *out
// untouched, so call sites read as `if (!checked_mul(...)) return error`.
inline bool checked_add(std::uint64_t a, std::uint64_t b, std::uint64_t* out) {
  std::uint64_t sum = a + b;
  if (sum < a) return false;
  *out = sum;
  return true;
}

inline bool checked_mul(std::uint64_t a, std::uint64_t b, std::uint64_t* out) {
  if (a != 0 && b > UINT64_MAX / a) return false;
  *out = a * b;
  return true;
}

// `offset + length <= bound`, overflow-safe. The form every
// length-field-vs-remaining-buffer check in the decoders takes.
inline bool fits_within(std::uint64_t offset, std::uint64_t length,
                        std::uint64_t bound) {
  std::uint64_t end;
  return checked_add(offset, length, &end) && end <= bound;
}

// AllocBudget: a running charge against DecodeLimits::max_total_alloc for
// one decode call. Cheap to carry by value; charge() fails with
// kResourceExhausted once the budget is gone.
class AllocBudget {
 public:
  explicit AllocBudget(std::uint64_t total) : remaining_(total) {}
  static AllocBudget from(const DecodeLimits& limits) {
    return AllocBudget(limits.max_total_alloc);
  }

  Status charge(std::uint64_t bytes, const char* what) {
    if (bytes > remaining_)
      return make_error(ErrorCode::kResourceExhausted,
                        std::string(what) + " exceeds decode allocation budget (" +
                            std::to_string(bytes) + " bytes requested)");
    remaining_ -= bytes;
    return Status::ok();
  }

  std::uint64_t remaining() const { return remaining_; }

 private:
  std::uint64_t remaining_;
};

}  // namespace xmit
