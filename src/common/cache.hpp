// CacheBudget + LruCache: the bounded-memory substrate for every runtime
// cache on the format path (decoder plan cache, XMIT binding cache,
// schema disk cache).
//
// The paper's registry grows monotonically — fine for a hydrology suite,
// fatal for the 10k-format schema sets the ROADMAP targets. Every cache
// here gets the same contract:
//   * a CacheBudget caps entries and bytes (0 = unbounded, the default);
//   * least-recently-used UNPINNED entries are evicted to make room;
//   * pinned entries are never evicted — a pin is how a session, an
//     in-flight replay, or a long-lived binding says "this one is load-
//     bearing";
//   * when the pinned set alone fills the budget, the cache degrades in a
//     typed way instead of OOMing: new unpinned inserts are simply not
//     cached (the caller keeps its value; the next lookup rebuilds), and
//     pin attempts fail with kResourceExhausted;
//   * eviction never invalidates a value a caller already holds — values
//     are handed out by copy (in practice shared_ptr), so an entry
//     evicted mid-use completes safely and the next lookup rebuilds it.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace xmit {

struct CacheBudget {
  std::size_t max_entries = 0;  // 0 = unbounded
  std::size_t max_bytes = 0;    // 0 = unbounded

  bool bounded() const { return max_entries != 0 || max_bytes != 0; }
  static CacheBudget unlimited() { return {}; }
  static CacheBudget of(std::size_t entries, std::size_t bytes) {
    return {entries, bytes};
  }
};

// One snapshot of a cache's occupancy and traffic. `uncacheable` counts
// inserts that were skipped because the pinned set already filled the
// budget — the graceful-degradation path the pin contract promises.
struct CacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t pinned_entries = 0;
  std::size_t pinned_bytes = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t uncacheable = 0;
  std::size_t max_entries = 0;  // budget echo, for display
  std::size_t max_bytes = 0;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(CacheBudget budget = {}) : budget_(budget) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Shrinking the budget evicts unpinned LRU entries immediately; the
  // pinned set is never touched (it may leave the cache over budget —
  // pin() and put() report that state in the typed ways below).
  void set_budget(CacheBudget budget) {
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = budget;
    evict_to_fit_locked(/*incoming_bytes=*/0);
  }

  CacheBudget budget() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return budget_;
  }

  // Lookup. A hit refreshes recency.
  std::optional<Value> get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  // Insert (replacing nothing: if the key is already resident the
  // RESIDENT value wins and is returned — so a losing thread in a build
  // race adopts the winner's value and pin counts are never orphaned).
  // Unpinned LRU entries are evicted to make room; when the pinned set
  // alone fills the budget the value is returned uncached.
  Value put(const Key& key, Value value, std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
    if (!fits_after_eviction_locked(bytes)) {
      ++uncacheable_;
      return value;
    }
    lru_.push_front(Entry{key, value, bytes, 0});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    return value;
  }

  // put() + pin() as one atomic step: insert if absent, then pin the
  // resident entry. Fails with kResourceExhausted when the pinned set
  // (including this entry) would exceed the budget — the typed answer to
  // "everything is pinned and something wants more".
  Status put_pinned(const Key& key, Value value, std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) return pin_locked(*it->second);
    if (!fits_after_eviction_locked(bytes)) {
      ++uncacheable_;
      return pinned_set_exhausted(bytes);
    }
    lru_.push_front(Entry{key, std::move(value), bytes, 0});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    return pin_locked(lru_.front());
  }

  // Pin a resident entry (kNotFound if it is not resident — it may have
  // been evicted; re-insert via put_pinned). Pinned entries survive any
  // eviction pressure; each pin() needs a matching unpin().
  Status pin(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
      return Status(ErrorCode::kNotFound, "cache entry not resident");
    return pin_locked(*it->second);
  }

  void unpin(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return;
    Entry& entry = *it->second;
    if (entry.pins == 0) return;
    if (--entry.pins == 0) {
      pinned_bytes_ -= entry.bytes;
      --pinned_entries_;
    }
  }

  bool contains(const Key& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(key) != index_.end();
  }

  // Drop an entry regardless of recency. A pinned entry is NOT dropped
  // (returns false): pins mark in-use values, and invalidation of those
  // must be coordinated by the pin holder, not forced from outside.
  bool erase(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    if (it->second->pins != 0) return false;
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    return true;
  }

  // Drops every unpinned entry; pinned entries stay resident.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->pins != 0) {
        ++it;
        continue;
      }
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats out;
    out.entries = index_.size();
    out.bytes = bytes_;
    out.pinned_entries = pinned_entries_;
    out.pinned_bytes = pinned_bytes_;
    out.hits = hits_;
    out.misses = misses_;
    out.evictions = evictions_;
    out.uncacheable = uncacheable_;
    out.max_entries = budget_.max_entries;
    out.max_bytes = budget_.max_bytes;
    return out;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes = 0;
    std::size_t pins = 0;
  };
  using List = std::list<Entry>;

  Status pin_locked(Entry& entry) XMIT_REQUIRES(mutex_) {
    if (entry.pins == 0) {
      // First pin: the entry joins the pinned set — check that the
      // pinned set alone still fits the budget.
      if ((budget_.max_entries != 0 &&
           pinned_entries_ + 1 > budget_.max_entries) ||
          (budget_.max_bytes != 0 &&
           pinned_bytes_ + entry.bytes > budget_.max_bytes))
        return pinned_set_exhausted(entry.bytes);
      pinned_bytes_ += entry.bytes;
      ++pinned_entries_;
    }
    ++entry.pins;
    return Status::ok();
  }

  Status pinned_set_exhausted(std::size_t bytes) const XMIT_REQUIRES(mutex_) {
    return Status(ErrorCode::kResourceExhausted,
                  "cache pinned set alone exceeds its budget (" +
                      std::to_string(pinned_entries_) + " entries / " +
                      std::to_string(pinned_bytes_) + " bytes pinned, +" +
                      std::to_string(bytes) + " requested against " +
                      std::to_string(budget_.max_entries) + " entries / " +
                      std::to_string(budget_.max_bytes) + " bytes)");
  }

  // Evict unpinned LRU entries until `incoming_bytes` more would fit.
  // Returns false when even an empty unpinned set leaves no room — i.e.
  // the pinned set alone fills the budget.
  bool fits_after_eviction_locked(std::size_t incoming_bytes)
      XMIT_REQUIRES(mutex_) {
    if ((budget_.max_entries != 0 &&
         pinned_entries_ + 1 > budget_.max_entries) ||
        (budget_.max_bytes != 0 &&
         pinned_bytes_ + incoming_bytes > budget_.max_bytes))
      return false;
    evict_to_fit_locked(incoming_bytes);
    return !over_budget_locked(incoming_bytes);
  }

  bool over_budget_locked(std::size_t incoming_bytes) const
      XMIT_REQUIRES(mutex_) {
    return (budget_.max_entries != 0 &&
            index_.size() + 1 > budget_.max_entries) ||
           (budget_.max_bytes != 0 &&
            bytes_ + incoming_bytes > budget_.max_bytes);
  }

  void evict_to_fit_locked(std::size_t incoming_bytes) XMIT_REQUIRES(mutex_) {
    auto it = lru_.end();
    while (over_budget_locked(incoming_bytes) && it != lru_.begin()) {
      --it;
      if (it->pins != 0) continue;  // pinned: skip, never evicted
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++evictions_;
    }
  }

  mutable std::mutex mutex_;
  List lru_ XMIT_GUARDED_BY(mutex_);  // front = most recently used
  std::unordered_map<Key, typename List::iterator, Hash> index_
      XMIT_GUARDED_BY(mutex_);
  CacheBudget budget_ XMIT_GUARDED_BY(mutex_);
  std::size_t bytes_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t pinned_entries_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t pinned_bytes_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t hits_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ XMIT_GUARDED_BY(mutex_) = 0;
  std::size_t uncacheable_ XMIT_GUARDED_BY(mutex_) = 0;
};

}  // namespace xmit
