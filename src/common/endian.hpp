// Byte-order primitives for the PBIO wire format.
//
// PBIO is "sender writes native, receiver makes right": records carry an
// architecture descriptor and the receiver converts only when needed, so
// these helpers must support both directions for every primitive width.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace xmit {

enum class ByteOrder : std::uint8_t { kLittle = 0, kBig = 1 };

constexpr ByteOrder host_byte_order() {
  return std::endian::native == std::endian::little ? ByteOrder::kLittle
                                                    : ByteOrder::kBig;
}

constexpr std::uint16_t bswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

constexpr std::uint64_t bswap64(std::uint64_t v) {
  return (static_cast<std::uint64_t>(bswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         bswap32(static_cast<std::uint32_t>(v >> 32));
}

// Generic byte swap for 1/2/4/8-byte unsigned integers.
template <typename T>
constexpr T bswap(T v) {
  static_assert(std::is_unsigned_v<T>);
  if constexpr (sizeof(T) == 1) return v;
  if constexpr (sizeof(T) == 2) return bswap16(v);
  if constexpr (sizeof(T) == 4) return bswap32(v);
  if constexpr (sizeof(T) == 8) return bswap64(v);
}

// Swap a value of arbitrary primitive width in place (used by the PBIO
// conversion path where widths are runtime values).
inline void bswap_inplace(void* data, std::size_t size) {
  auto* bytes = static_cast<unsigned char*>(data);
  for (std::size_t i = 0, j = size - 1; i < j; ++i, --j) {
    unsigned char tmp = bytes[i];
    bytes[i] = bytes[j];
    bytes[j] = tmp;
  }
}

// Unaligned load/store with explicit byte order.
template <typename T>
inline T load_raw(const void* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
inline void store_raw(void* p, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
inline T load_with_order(const void* p, ByteOrder order) {
  static_assert(std::is_unsigned_v<T>);
  T v = load_raw<T>(p);
  if (order != host_byte_order()) v = bswap(v);
  return v;
}

template <typename T>
inline void store_with_order(void* p, T v, ByteOrder order) {
  static_assert(std::is_unsigned_v<T>);
  if (order != host_byte_order()) v = bswap(v);
  store_raw(p, v);
}

// Floats travel as their IEEE-754 bit patterns.
inline std::uint32_t float_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
inline float bits_to_float(std::uint32_t b) { return std::bit_cast<float>(b); }
inline std::uint64_t double_bits(double d) { return std::bit_cast<std::uint64_t>(d); }
inline double bits_to_double(std::uint64_t b) { return std::bit_cast<double>(b); }

// Round `offset` up to the next multiple of `alignment` (a power of two or
// any positive integer; PBIO uses natural alignment so both appear).
constexpr std::size_t align_up(std::size_t offset, std::size_t alignment) {
  if (alignment <= 1) return offset;
  return ((offset + alignment - 1) / alignment) * alignment;
}

}  // namespace xmit
