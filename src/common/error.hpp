// Lightweight status / result types used across all xmit libraries.
//
// Library code does not throw across public API boundaries: parsers and
// codecs report failure through Status / Result<T> so that callers on hot
// paths (marshaling loops) pay nothing for the error channel when things
// succeed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace xmit {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something unusable
  kParseError,        // malformed XML / schema / URL / wire record
  kNotFound,          // unknown type, format id, field, path, host
  kOutOfRange,        // truncated buffer, index past end
  kAlreadyExists,     // duplicate registration
  kUnsupported,       // feature outside the implemented dialect
  kIoError,           // socket / file failure
  kInternal,          // invariant violation (bug)
  kTimeout,           // deadline elapsed (poll/connect/overall budget)
  kResourceExhausted, // untrusted input blew a DecodeLimits budget
  kMalformedInput,    // hostile/corrupt bytes (inconsistent lengths, wraps)
  kDataLoss,          // a sequence gap the replay buffer could not cover
  kUnavailable,       // would block right now (EAGAIN); retry when ready
};

const char* error_code_name(ErrorCode code);

// Status: cheap success, allocating only on failure.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "parse_error: unexpected '<' at line 3" style rendering.
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

// Result<T>: value or Status. Accessors check in debug builds only;
// callers are expected to test is_ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}         // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(implicit)

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

  // Status of a success result is OK.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  const std::string& message() const { return std::get<Status>(data_).message(); }
  ErrorCode code() const { return status().code(); }

 private:
  std::variant<T, Status> data_;
};

// Propagate-on-error helpers. Usage:
//   XMIT_RETURN_IF_ERROR(do_thing());
//   XMIT_ASSIGN_OR_RETURN(auto v, parse(x));
#define XMIT_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::xmit::Status xmit_status_ = (expr);            \
    if (!xmit_status_.is_ok()) return xmit_status_;  \
  } while (0)

#define XMIT_CONCAT_INNER(a, b) a##b
#define XMIT_CONCAT(a, b) XMIT_CONCAT_INNER(a, b)

#define XMIT_ASSIGN_OR_RETURN(decl, expr)                              \
  auto XMIT_CONCAT(xmit_result_, __LINE__) = (expr);                   \
  if (!XMIT_CONCAT(xmit_result_, __LINE__).is_ok())                    \
    return XMIT_CONCAT(xmit_result_, __LINE__).status();               \
  decl = std::move(XMIT_CONCAT(xmit_result_, __LINE__)).value()

}  // namespace xmit
