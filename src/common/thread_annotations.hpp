// Clang thread-safety annotations (-Wthread-safety), compiled away on
// GCC and other compilers without the attribute. Annotating the mutex
// that guards each field lets clang statically verify lock discipline in
// src/session and src/net; TSan (-DXMIT_SANITIZE=thread) checks the same
// discipline dynamically.
//
// Usage:
//   std::mutex mu_;
//   int hits_ XMIT_GUARDED_BY(mu_);
//   void touch() XMIT_REQUIRES(mu_);
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define XMIT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef XMIT_THREAD_ANNOTATION
#define XMIT_THREAD_ANNOTATION(x)
#endif

#define XMIT_CAPABILITY(x) XMIT_THREAD_ANNOTATION(capability(x))
#define XMIT_GUARDED_BY(x) XMIT_THREAD_ANNOTATION(guarded_by(x))
#define XMIT_PT_GUARDED_BY(x) XMIT_THREAD_ANNOTATION(pt_guarded_by(x))
#define XMIT_REQUIRES(...) \
  XMIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define XMIT_ACQUIRE(...) \
  XMIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define XMIT_RELEASE(...) \
  XMIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define XMIT_EXCLUDES(...) XMIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define XMIT_NO_THREAD_SAFETY_ANALYSIS \
  XMIT_THREAD_ANNOTATION(no_thread_safety_analysis)
