#include "common/strings.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xmit {

bool is_ascii_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }

bool is_ascii_alpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

std::string_view trim(std::string_view sv) {
  std::size_t b = 0;
  while (b < sv.size() && is_ascii_space(sv[b])) ++b;
  std::size_t e = sv.size();
  while (e > b && is_ascii_space(sv[e - 1])) --e;
  return sv.substr(b, e - b);
}

std::string to_lower(std::string_view sv) {
  std::string out(sv);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

bool starts_with(std::string_view sv, std::string_view prefix) {
  return sv.size() >= prefix.size() && sv.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view sv, std::string_view suffix) {
  return sv.size() >= suffix.size() &&
         sv.substr(sv.size() - suffix.size()) == suffix;
}

std::vector<std::string_view> split(std::string_view sv, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= sv.size(); ++i) {
    if (i == sv.size() || sv[i] == sep) {
      out.push_back(sv.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

Result<std::int64_t> parse_int(std::string_view sv) {
  sv = trim(sv);
  if (sv.empty())
    return Status(ErrorCode::kParseError, "empty integer");
  // strtoll needs NUL termination; views into documents are not terminated.
  char buf[32];
  if (sv.size() >= sizeof(buf))
    return Status(ErrorCode::kParseError, "integer too long: " + std::string(sv));
  std::memcpy(buf, sv.data(), sv.size());
  buf[sv.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (errno == ERANGE)
    return Status(ErrorCode::kOutOfRange, "integer overflow: " + std::string(sv));
  if (end != buf + sv.size())
    return Status(ErrorCode::kParseError, "bad integer: " + std::string(sv));
  return static_cast<std::int64_t>(v);
}

Result<std::uint64_t> parse_uint(std::string_view sv) {
  sv = trim(sv);
  if (sv.empty() || sv[0] == '-')
    return Status(ErrorCode::kParseError, "bad unsigned: " + std::string(sv));
  char buf[32];
  if (sv.size() >= sizeof(buf))
    return Status(ErrorCode::kParseError, "unsigned too long: " + std::string(sv));
  std::memcpy(buf, sv.data(), sv.size());
  buf[sv.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf, &end, 10);
  if (errno == ERANGE)
    return Status(ErrorCode::kOutOfRange, "unsigned overflow: " + std::string(sv));
  if (end != buf + sv.size())
    return Status(ErrorCode::kParseError, "bad unsigned: " + std::string(sv));
  return static_cast<std::uint64_t>(v);
}

Result<double> parse_double(std::string_view sv) {
  sv = trim(sv);
  if (sv.empty())
    return Status(ErrorCode::kParseError, "empty number");
  char buf[64];
  if (sv.size() >= sizeof(buf))
    return Status(ErrorCode::kParseError, "number too long: " + std::string(sv));
  std::memcpy(buf, sv.data(), sv.size());
  buf[sv.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (end != buf + sv.size())
    return Status(ErrorCode::kParseError, "bad number: " + std::string(sv));
  return v;
}

std::string format_int(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string format_uint(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string format_float(float v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace xmit
