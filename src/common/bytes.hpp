// Growable write buffer and bounds-checked reader for wire records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/endian.hpp"
#include "common/error.hpp"

namespace xmit {

// One span of a gather-encoded record (writev-style). A slice borrows the
// memory it points at — typically the caller's live struct, an encoder
// scratch buffer, or a static padding block — and stays valid only while
// that memory does. The record is the concatenation of the slices.
struct IoSlice {
  const void* data = nullptr;
  std::size_t size = 0;
};

// ByteBuffer: append-only builder for encoded records. Encoders write
// primitives in a chosen byte order; positions can be reserved and patched
// later (e.g. the record-length slot in a PBIO header).
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t reserve_bytes) { data_.reserve(reserve_bytes); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }
  std::span<const std::uint8_t> span() const { return {data_.data(), data_.size()}; }

  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  void append(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    data_.insert(data_.end(), p, p + n);
  }
  void append(std::string_view sv) { append(sv.data(), sv.size()); }
  void append_byte(std::uint8_t b) { data_.push_back(b); }

  void append_zeros(std::size_t n) { data_.insert(data_.end(), n, 0); }

  // Pad with zero bytes so size() becomes a multiple of `alignment`.
  void align_to(std::size_t alignment) {
    std::size_t target = align_up(data_.size(), alignment);
    append_zeros(target - data_.size());
  }

  template <typename T>
  void append_uint(T v, ByteOrder order) {
    static_assert(std::is_unsigned_v<T>);
    if (order != host_byte_order()) v = bswap(v);
    append(&v, sizeof(T));
  }

  void append_u8(std::uint8_t v) { append_byte(v); }
  void append_u16(std::uint16_t v, ByteOrder o) { append_uint(v, o); }
  void append_u32(std::uint32_t v, ByteOrder o) { append_uint(v, o); }
  void append_u64(std::uint64_t v, ByteOrder o) { append_uint(v, o); }
  void append_f32(float v, ByteOrder o) { append_uint(float_bits(v), o); }
  void append_f64(double v, ByteOrder o) { append_uint(double_bits(v), o); }

  // Reserve `n` bytes, returning their offset for a later patch_*().
  std::size_t reserve_slot(std::size_t n) {
    std::size_t at = data_.size();
    append_zeros(n);
    return at;
  }

  template <typename T>
  void patch_uint(std::size_t offset, T v, ByteOrder order) {
    static_assert(std::is_unsigned_v<T>);
    if (order != host_byte_order()) v = bswap(v);
    std::memcpy(data_.data() + offset, &v, sizeof(T));
  }

  std::vector<std::uint8_t> take() { return std::move(data_); }

 private:
  std::vector<std::uint8_t> data_;
};

// ByteReader: bounds-checked cursor over an encoded record. All reads
// return Result/Status rather than asserting, because wire input is
// untrusted (truncated records are a tested failure mode).
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : base_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit ByteReader(std::span<const std::uint8_t> s)
      : ByteReader(s.data(), s.size()) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }
  const std::uint8_t* cursor() const { return base_ + pos_; }

  Status seek(std::size_t pos) {
    if (pos > size_)
      return make_error(ErrorCode::kOutOfRange, "seek past end of record");
    pos_ = pos;
    return Status::ok();
  }

  Status skip(std::size_t n) {
    if (n > remaining())
      return make_error(ErrorCode::kOutOfRange, "skip past end of record");
    pos_ += n;
    return Status::ok();
  }

  Status align_to(std::size_t alignment) {
    return seek(align_up(pos_, alignment));
  }

  Status read_bytes(void* dst, std::size_t n) {
    if (n > remaining())
      return make_error(ErrorCode::kOutOfRange, "truncated record");
    std::memcpy(dst, base_ + pos_, n);
    pos_ += n;
    return Status::ok();
  }

  template <typename T>
  Result<T> read_uint(ByteOrder order) {
    static_assert(std::is_unsigned_v<T>);
    T v = 0;  // initialized to quiet GCC's maybe-uninitialized on inlining
    XMIT_RETURN_IF_ERROR(read_bytes(&v, sizeof(T)));
    if (order != host_byte_order()) v = bswap(v);
    return v;
  }

  Result<std::uint8_t> read_u8() { return read_uint<std::uint8_t>(host_byte_order()); }
  Result<std::uint16_t> read_u16(ByteOrder o) { return read_uint<std::uint16_t>(o); }
  Result<std::uint32_t> read_u32(ByteOrder o) { return read_uint<std::uint32_t>(o); }
  Result<std::uint64_t> read_u64(ByteOrder o) { return read_uint<std::uint64_t>(o); }

  Result<float> read_f32(ByteOrder o) {
    XMIT_ASSIGN_OR_RETURN(auto bits, read_u32(o));
    return bits_to_float(bits);
  }
  Result<double> read_f64(ByteOrder o) {
    XMIT_ASSIGN_OR_RETURN(auto bits, read_u64(o));
    return bits_to_double(bits);
  }

  Result<std::string> read_string(std::size_t n) {
    if (n > remaining())
      return Status(ErrorCode::kOutOfRange, "truncated string");
    std::string s(reinterpret_cast<const char*>(base_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  const std::uint8_t* base_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace xmit
