// Monotonic timing helpers shared by benches and the RDM instrumentation.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>

namespace xmit {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(clock::now() - start_)
        .count();
  }
  double elapsed_us() const { return elapsed_ns() / 1e3; }
  double elapsed_ms() const { return elapsed_ns() / 1e6; }
  double elapsed_s() const { return elapsed_ns() / 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Run `fn` `iters` times and return the mean wall time per call in
// milliseconds. Used by the figure harnesses, which report the same
// "registration time (ms)" rows the paper plots.
template <typename Fn>
double time_call_ms(Fn&& fn, int iters = 1) {
  Stopwatch sw;
  for (int i = 0; i < iters; ++i) fn();
  return sw.elapsed_ms() / iters;
}

// Best-of-N timing: repeats the measurement `repeats` times and keeps the
// minimum mean, which discards scheduler noise for sub-millisecond work.
template <typename Fn>
double time_call_ms_best(Fn&& fn, int iters, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    double ms = time_call_ms(fn, iters);
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace xmit
