#include "pbio/dynrecord.hpp"

#include <cstring>

#include "common/bytes.hpp"
#include "common/limits.hpp"
#include "pbio/scalar.hpp"

namespace xmit::pbio {
namespace {

bool is_numeric_kind(FieldKind kind) {
  return kind == FieldKind::kInteger || kind == FieldKind::kUnsigned ||
         kind == FieldKind::kFloat || kind == FieldKind::kBoolean ||
         kind == FieldKind::kChar;
}

ScalarValue to_scalar(const std::int64_t& v) { return ScalarValue::from_signed(v); }
ScalarValue to_scalar(const double& v) { return ScalarValue::from_real(v); }

}  // namespace

RecordBuilder::RecordBuilder(FormatPtr format) : format_(std::move(format)) {}

Result<const FlatField*> RecordBuilder::lookup(std::string_view path) const {
  const FlatField* field = format_->flat_field(path);
  if (field == nullptr)
    return Status(ErrorCode::kNotFound, "no field '" + std::string(path) +
                                            "' in format '" + format_->name() +
                                            "'");
  return field;
}

Status RecordBuilder::set_scalar(std::string_view path, Value value) {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode != ArrayMode::kNone)
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is an array");
  if (!is_numeric_kind(field->kind))
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is not a scalar");
  values_.insert_or_assign(std::string(path), std::move(value));
  return Status::ok();
}

Status RecordBuilder::set_int(std::string_view path, std::int64_t value) {
  return set_scalar(path, value);
}

Status RecordBuilder::set_uint(std::string_view path, std::uint64_t value) {
  return set_scalar(path, value);
}

Status RecordBuilder::set_float(std::string_view path, double value) {
  return set_scalar(path, value);
}

Status RecordBuilder::set_bool(std::string_view path, bool value) {
  return set_scalar(path, static_cast<std::uint64_t>(value ? 1 : 0));
}

Status RecordBuilder::set_char(std::string_view path, char value) {
  return set_scalar(path,
                    static_cast<std::uint64_t>(static_cast<unsigned char>(value)));
}

Status RecordBuilder::set_string(std::string_view path, std::string_view value) {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->kind != FieldKind::kString || field->array_mode != ArrayMode::kNone)
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is not a scalar string");
  values_.insert_or_assign(std::string(path), std::string(value));
  return Status::ok();
}

Status RecordBuilder::set_int_array(std::string_view path,
                                    std::span<const std::int64_t> values) {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode == ArrayMode::kNone)
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is not an array");
  if (field->kind == FieldKind::kFloat || field->kind == FieldKind::kString)
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is not integral");
  if (field->array_mode == ArrayMode::kFixed &&
      values.size() != field->fixed_count)
    return make_error(ErrorCode::kInvalidArgument,
                      "fixed array '" + std::string(path) + "' expects " +
                          std::to_string(field->fixed_count) + " elements");
  values_.insert_or_assign(
      std::string(path), std::vector<std::int64_t>(values.begin(), values.end()));
  return Status::ok();
}

Status RecordBuilder::set_float_array(std::string_view path,
                                      std::span<const double> values) {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode == ArrayMode::kNone)
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is not an array");
  if (field->kind != FieldKind::kFloat)
    return make_error(ErrorCode::kInvalidArgument,
                      "field '" + std::string(path) + "' is not a float array");
  if (field->array_mode == ArrayMode::kFixed &&
      values.size() != field->fixed_count)
    return make_error(ErrorCode::kInvalidArgument,
                      "fixed array '" + std::string(path) + "' expects " +
                          std::to_string(field->fixed_count) + " elements");
  values_.insert_or_assign(std::string(path),
                           std::vector<double>(values.begin(), values.end()));
  return Status::ok();
}

Result<std::vector<std::uint8_t>> RecordBuilder::build() const {
  const ArchInfo& arch = format_->arch();
  const ByteOrder order = arch.byte_order;
  const std::uint8_t ptr_size = arch.pointer_size;
  const std::uint32_t fixed_size = format_->struct_size();

  std::vector<std::uint8_t> fixed(fixed_size, 0);
  ByteBuffer var;

  // The run-time counts of dynamic arrays come from the supplied value
  // lengths; they are written into their size fields here, before the main
  // field walk, so explicit user-set counts would conflict visibly.
  for (const auto& field : format_->flat_fields()) {
    if (field.array_mode != ArrayMode::kDynamic) continue;
    auto it = values_.find(field.path);
    std::uint64_t count = 0;
    if (it != values_.end()) {
      if (const auto* ints = std::get_if<std::vector<std::int64_t>>(&it->second))
        count = ints->size();
      else if (const auto* reals = std::get_if<std::vector<double>>(&it->second))
        count = reals->size();
    }
    store_scalar(fixed.data() + field.count_offset, field.count_kind,
                 field.count_size, ScalarValue::from_unsigned(count), order);
  }

  for (const auto& field : format_->flat_fields()) {
    auto it = values_.find(field.path);

    if (field.kind == FieldKind::kString) {
      const std::uint32_t elems =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      for (std::uint32_t i = 0; i < elems; ++i) {
        std::size_t slot_offset = field.offset + std::size_t(i) * ptr_size;
        // Fixed string arrays are not settable element-wise yet; only the
        // scalar case carries data.
        if (i == 0 && it != values_.end()) {
          const auto& str = std::get<std::string>(it->second);
          write_slot_value(fixed.data(), slot_offset, ptr_size, order,
                           var.size() + 1);
          var.append(str);
          var.append_byte(0);
        } else {
          write_slot_value(fixed.data(), slot_offset, ptr_size, order, 0);
        }
      }
      continue;
    }

    if (field.array_mode == ArrayMode::kDynamic) {
      if (it == values_.end()) {
        write_slot_value(fixed.data(), field.offset, ptr_size, order, 0);
        continue;
      }
      // Align the payload exactly like Encoder does.
      std::size_t align = field.size > 8 ? 8 : field.size;
      std::size_t var_off = align_up(WireHeader::kSize + fixed_size + var.size(),
                                     align) -
                            (WireHeader::kSize + fixed_size);
      var.append_zeros(var_off - var.size());
      write_slot_value(fixed.data(), field.offset, ptr_size, order,
                       var.size() + 1);
      auto append_elements = [&](const auto& vec) {
        for (const auto& element : vec) {
          std::uint8_t scratch[8];
          store_scalar(scratch, field.kind, field.size, to_scalar(element),
                       order);
          var.append(scratch, field.size);
        }
      };
      if (const auto* ints = std::get_if<std::vector<std::int64_t>>(&it->second))
        append_elements(*ints);
      else if (const auto* reals = std::get_if<std::vector<double>>(&it->second))
        append_elements(*reals);
      continue;
    }

    if (it == values_.end()) continue;  // zero-initialized already

    if (field.array_mode == ArrayMode::kFixed) {
      auto store_all = [&](const auto& vec) {
        for (std::size_t i = 0; i < vec.size(); ++i)
          store_scalar(fixed.data() + field.offset + i * field.size, field.kind,
                       field.size, to_scalar(vec[i]), order);
      };
      if (const auto* ints = std::get_if<std::vector<std::int64_t>>(&it->second))
        store_all(*ints);
      else if (const auto* reals = std::get_if<std::vector<double>>(&it->second))
        store_all(*reals);
      continue;
    }

    // Scalar.
    ScalarValue scalar;
    if (const auto* i64 = std::get_if<std::int64_t>(&it->second))
      scalar = ScalarValue::from_signed(*i64);
    else if (const auto* u64 = std::get_if<std::uint64_t>(&it->second))
      scalar = ScalarValue::from_unsigned(*u64);
    else if (const auto* real = std::get_if<double>(&it->second))
      scalar = ScalarValue::from_real(*real);
    else
      return Status(ErrorCode::kInternal,
                    "non-scalar value stored for '" + field.path + "'");
    store_scalar(fixed.data() + field.offset, field.kind, field.size, scalar,
                 order);
  }

  ByteBuffer out;
  WireHeader header;
  header.format_id = format_->id();
  header.byte_order = order;
  header.pointer_size = ptr_size;
  header.fixed_length = fixed_size;
  header.var_length = static_cast<std::uint32_t>(var.size());
  append_header(out, header);
  out.append(fixed.data(), fixed.size());
  out.append(var.data(), var.size());
  return out.take();
}

// ---------------------------------------------------------------------------

Result<RecordReader> RecordReader::make(std::span<const std::uint8_t> bytes,
                                        FormatPtr format) {
  if (!format) return Status(ErrorCode::kInvalidArgument, "null format");
  XMIT_ASSIGN_OR_RETURN(auto header, parse_record(bytes));
  if (header.format_id != format->id())
    return Status(ErrorCode::kInvalidArgument,
                  "record format id does not match '" + format->name() + "'");
  if (header.fixed_length != format->struct_size())
    return Status(ErrorCode::kParseError, "fixed section length mismatch");
  if (format->arch().pointer_size != header.pointer_size ||
      format->arch().byte_order != header.byte_order)
    return Status(ErrorCode::kMalformedInput,
                  "record header architecture contradicts format '" +
                      format->name() + "' metadata");
  return RecordReader(bytes, std::move(format), header);
}

Result<const FlatField*> RecordReader::lookup(std::string_view path) const {
  const FlatField* field = format_->flat_field(path);
  if (field == nullptr)
    return Status(ErrorCode::kNotFound, "no field '" + std::string(path) +
                                            "' in format '" + format_->name() +
                                            "'");
  return field;
}

Result<std::uint64_t> RecordReader::dynamic_count(const FlatField& field) const {
  // Shared helper so every count-field consumer (encoder, decoder paths,
  // reader) agrees on signed/unsigned semantics.
  return read_count_field(fixed(), field.count_offset, field.count_size,
                          field.count_kind, header_.byte_order, field.path,
                          ErrorCode::kParseError);
}

Result<std::uint64_t> RecordReader::payload_offset(
    const FlatField& field, std::uint64_t payload_size) const {
  std::uint64_t slot = read_slot_value(fixed(), field.offset,
                                       header_.pointer_size, header_.byte_order);
  if (slot == 0)
    return Status(ErrorCode::kNotFound, "field '" + field.path + "' is null");
  // slot is attacker bytes: at + payload_size must not wrap past the check.
  std::uint64_t at = slot - 1;
  if (!fits_within(at, payload_size, header_.var_length))
    return Status(ErrorCode::kMalformedInput,
                  "payload out of range in '" + field.path + "'");
  return at;
}

Result<std::int64_t> RecordReader::get_int(std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode != ArrayMode::kNone || !is_numeric_kind(field->kind))
    return Status(ErrorCode::kInvalidArgument,
                  "field '" + std::string(path) + "' is not a scalar");
  XMIT_ASSIGN_OR_RETURN(auto scalar,
                        load_scalar(fixed() + field->offset, field->kind,
                                    field->size, header_.byte_order));
  return scalar.as_signed();
}

Result<std::uint64_t> RecordReader::get_uint(std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode != ArrayMode::kNone || !is_numeric_kind(field->kind))
    return Status(ErrorCode::kInvalidArgument,
                  "field '" + std::string(path) + "' is not a scalar");
  XMIT_ASSIGN_OR_RETURN(auto scalar,
                        load_scalar(fixed() + field->offset, field->kind,
                                    field->size, header_.byte_order));
  return scalar.as_unsigned();
}

Result<double> RecordReader::get_float(std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode != ArrayMode::kNone || !is_numeric_kind(field->kind))
    return Status(ErrorCode::kInvalidArgument,
                  "field '" + std::string(path) + "' is not a scalar");
  XMIT_ASSIGN_OR_RETURN(auto scalar,
                        load_scalar(fixed() + field->offset, field->kind,
                                    field->size, header_.byte_order));
  return scalar.as_real();
}

Result<std::string> RecordReader::get_string(std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->kind != FieldKind::kString || field->array_mode != ArrayMode::kNone)
    return Status(ErrorCode::kInvalidArgument,
                  "field '" + std::string(path) + "' is not a scalar string");
  std::uint64_t slot = read_slot_value(fixed(), field->offset,
                                       header_.pointer_size, header_.byte_order);
  if (slot == 0) return std::string();
  std::uint64_t at = slot - 1;
  if (at >= header_.var_length)
    return Status(ErrorCode::kOutOfRange,
                  "string offset out of range in '" + field->path + "'");
  const void* nul = std::memchr(var() + at, 0, header_.var_length - at);
  if (nul == nullptr)
    return Status(ErrorCode::kParseError,
                  "unterminated string in '" + field->path + "'");
  return std::string(reinterpret_cast<const char*>(var() + at));
}

Result<std::uint64_t> RecordReader::array_length(std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  switch (field->array_mode) {
    case ArrayMode::kFixed: return std::uint64_t{field->fixed_count};
    case ArrayMode::kDynamic: return dynamic_count(*field);
    case ArrayMode::kNone:
      return Status(ErrorCode::kInvalidArgument,
                    "field '" + std::string(path) + "' is not an array");
  }
  return Status(ErrorCode::kInternal, "bad array mode");
}

Result<std::vector<std::int64_t>> RecordReader::get_int_array(
    std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode == ArrayMode::kNone || !is_numeric_kind(field->kind))
    return Status(ErrorCode::kInvalidArgument,
                  "field '" + std::string(path) + "' is not a numeric array");
  XMIT_ASSIGN_OR_RETURN(auto count, array_length(path));
  const std::uint8_t* base;
  if (field->array_mode == ArrayMode::kFixed) {
    base = fixed() + field->offset;
  } else {
    if (count == 0) return std::vector<std::int64_t>{};
    std::uint64_t payload = 0;
    if (!checked_mul(count, field->size, &payload))
      return Status(ErrorCode::kMalformedInput,
                    "array size overflow in '" + field->path + "'");
    XMIT_ASSIGN_OR_RETURN(auto at, payload_offset(*field, payload));
    base = var() + at;
  }
  std::vector<std::int64_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    XMIT_ASSIGN_OR_RETURN(auto scalar,
                          load_scalar(base + i * field->size, field->kind,
                                      field->size, header_.byte_order));
    out.push_back(scalar.as_signed());
  }
  return out;
}

Result<std::vector<double>> RecordReader::get_float_array(
    std::string_view path) const {
  XMIT_ASSIGN_OR_RETURN(const FlatField* field, lookup(path));
  if (field->array_mode == ArrayMode::kNone || !is_numeric_kind(field->kind))
    return Status(ErrorCode::kInvalidArgument,
                  "field '" + std::string(path) + "' is not a numeric array");
  XMIT_ASSIGN_OR_RETURN(auto count, array_length(path));
  const std::uint8_t* base;
  if (field->array_mode == ArrayMode::kFixed) {
    base = fixed() + field->offset;
  } else {
    if (count == 0) return std::vector<double>{};
    std::uint64_t payload = 0;
    if (!checked_mul(count, field->size, &payload))
      return Status(ErrorCode::kMalformedInput,
                    "array size overflow in '" + field->path + "'");
    XMIT_ASSIGN_OR_RETURN(auto at, payload_offset(*field, payload));
    base = var() + at;
  }
  std::vector<double> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    XMIT_ASSIGN_OR_RETURN(auto scalar,
                          load_scalar(base + i * field->size, field->kind,
                                      field->size, header_.byte_order));
    out.push_back(scalar.as_real());
  }
  return out;
}

}  // namespace xmit::pbio
