#include "pbio/decode.hpp"

#include <cstring>

#include "pbio/scalar.hpp"

namespace xmit::pbio {
namespace {

bool flat_fields_identical(const std::vector<FlatField>& a,
                           const std::vector<FlatField>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FlatField& x = a[i];
    const FlatField& y = b[i];
    if (x.path != y.path || x.kind != y.kind || x.size != y.size ||
        x.offset != y.offset || x.array_mode != y.array_mode ||
        x.fixed_count != y.fixed_count || x.count_offset != y.count_offset ||
        x.count_size != y.count_size)
      return false;
  }
  return true;
}

}  // namespace

// One field-to-field transfer in a conversion plan.
struct Decoder::Move {
  FlatField src;
  FlatField dst;
  // Fast criteria precomputed at plan build: a scalar/fixed-array move
  // whose kind, size and (after header check) byte order all match can be
  // memcpy'd.
  bool bitwise_compatible = false;
};

struct Decoder::Plan {
  bool identity = false;
  std::vector<Move> moves;
  std::vector<FlatField> zero_fills;  // receiver fields absent on the wire
  std::uint32_t receiver_struct_size = 0;
};

Result<RecordInfo> Decoder::inspect(
    std::span<const std::uint8_t> bytes) const {
  XMIT_ASSIGN_OR_RETURN(auto header, parse_record(bytes));
  XMIT_ASSIGN_OR_RETURN(auto format, registry_.by_id(header.format_id));
  if (format->struct_size() != header.fixed_length)
    return Status(ErrorCode::kParseError,
                  "record fixed length " + std::to_string(header.fixed_length) +
                      " does not match format '" + format->name() + "' (" +
                      std::to_string(format->struct_size()) + " bytes)");
  // The header's flags and the format's architecture both claim the
  // sender's pointer size / byte order. They must agree: pointer slots are
  // read at the *header's* stride but validated against the *format's*
  // layout, so a contradiction lets an 8-byte slot read run past a field
  // the format laid out for 4-byte pointers.
  if (format->arch().pointer_size != header.pointer_size ||
      format->arch().byte_order != header.byte_order)
    return Status(ErrorCode::kMalformedInput,
                  "record header architecture contradicts format '" +
                      format->name() + "' metadata");
  return RecordInfo{header, std::move(format)};
}

Result<bool> Decoder::layouts_identical(const Format& sender,
                                        const Format& receiver) const {
  if (!(sender.arch() == receiver.arch())) return false;
  if (sender.struct_size() != receiver.struct_size()) return false;
  return flat_fields_identical(sender.flat_fields(), receiver.flat_fields());
}

Result<std::shared_ptr<const Decoder::Plan>> Decoder::build_plan(
    const Format& sender, const Format& receiver) {
  auto plan = std::make_shared<Plan>();
  plan->receiver_struct_size = receiver.struct_size();
  plan->identity = sender.arch() == receiver.arch() &&
                   sender.struct_size() == receiver.struct_size() &&
                   flat_fields_identical(sender.flat_fields(),
                                         receiver.flat_fields());
  if (plan->identity) return std::shared_ptr<const Plan>(plan);

  const bool same_order = sender.arch().byte_order == receiver.arch().byte_order;
  for (const auto& dst : receiver.flat_fields()) {
    const FlatField* src = sender.flat_field(dst.path);
    if (src == nullptr) {
      // Restricted evolution: the sender predates this field.
      plan->zero_fills.push_back(dst);
      continue;
    }
    // Shape changes (scalar <-> array, string <-> numeric) are not part of
    // PBIO's evolution contract; surface them at bind time, not mid-stream.
    const bool src_is_string = src->kind == FieldKind::kString;
    const bool dst_is_string = dst.kind == FieldKind::kString;
    if (src_is_string != dst_is_string)
      return Status(ErrorCode::kUnsupported,
                    "field '" + dst.path + "' changed between string and non-string");
    if (src->array_mode != dst.array_mode &&
        !(src->array_mode == ArrayMode::kFixed &&
          dst.array_mode == ArrayMode::kFixed))
      return Status(ErrorCode::kUnsupported,
                    "field '" + dst.path + "' changed array shape");
    Move move;
    move.src = *src;
    move.dst = dst;
    move.bitwise_compatible = same_order && src->kind == dst.kind &&
                              src->size == dst.size &&
                              src->kind != FieldKind::kString &&
                              src->array_mode != ArrayMode::kDynamic;
    plan->moves.push_back(std::move(move));
  }
  return std::shared_ptr<const Plan>(plan);
}

Result<std::shared_ptr<const Decoder::Plan>> Decoder::plan_for(
    const FormatPtr& sender, const Format& receiver) const {
  std::pair<FormatId, FormatId> key{sender->id(), receiver.id()};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
  }
  XMIT_ASSIGN_OR_RETURN(auto plan, build_plan(*sender, receiver));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  return it->second;
}

std::size_t Decoder::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

Status Decoder::decode(std::span<const std::uint8_t> bytes,
                       const Format& receiver, void* out, Arena& arena) const {
  XMIT_ASSIGN_OR_RETURN(auto info, inspect(bytes));
  if (!(receiver.arch() == ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "receiver format must describe the host architecture");
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(info.sender_format, receiver));
  AllocBudget budget = AllocBudget::from(limits_);
  if (plan->identity)
    return run_identity(info.header, bytes, receiver, out, arena, budget);
  return run_conversion(*plan, info.header, bytes, out, arena, budget);
}

Status Decoder::run_identity(const WireHeader& header,
                             std::span<const std::uint8_t> bytes,
                             const Format& receiver, void* out, Arena& arena,
                             AllocBudget& budget) const {
  const std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  const std::uint8_t* var = fixed + header.fixed_length;
  auto* dst = static_cast<std::uint8_t*>(out);
  std::memcpy(dst, fixed, header.fixed_length);

  if (receiver.is_contiguous()) return Status::ok();
  for (const auto& field : receiver.flat_fields()) {
    if (field.kind == FieldKind::kString) {
      const std::uint32_t elems =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      for (std::uint32_t i = 0; i < elems; ++i) {
        std::size_t slot_offset = field.offset + std::size_t(i) * sizeof(void*);
        std::uint64_t slot = read_slot_value(
            fixed, slot_offset, header.pointer_size, header.byte_order);
        char* value = nullptr;
        if (slot != 0) {
          std::uint64_t at = slot - 1;
          if (at >= header.var_length)
            return make_error(ErrorCode::kOutOfRange,
                              "string offset out of range in '" + field.path + "'");
          const void* nul = std::memchr(var + at, 0, header.var_length - at);
          if (nul == nullptr)
            return make_error(ErrorCode::kParseError,
                              "unterminated string in '" + field.path + "'");
          std::size_t len = static_cast<const std::uint8_t*>(nul) - (var + at);
          XMIT_RETURN_IF_ERROR(budget.charge(len + 1, "decoded string"));
          value = arena.duplicate_string(
              reinterpret_cast<const char*>(var + at), len);
        }
        store_raw(dst + slot_offset, value);
      }
      continue;
    }
    if (field.array_mode != ArrayMode::kDynamic) continue;
    std::uint64_t slot = read_slot_value(fixed, field.offset,
                                         header.pointer_size,
                                         header.byte_order);
    std::uint8_t* value = nullptr;
    if (slot != 0) {
      // Identity plan: count field layout matches, read from our own copy.
      std::int64_t count = 0;
      switch (field.count_size) {
        case 1: count = *reinterpret_cast<const std::int8_t*>(dst + field.count_offset); break;
        case 2: count = load_raw<std::int16_t>(dst + field.count_offset); break;
        case 4: count = load_raw<std::int32_t>(dst + field.count_offset); break;
        case 8: count = load_raw<std::int64_t>(dst + field.count_offset); break;
        default: return make_error(ErrorCode::kInternal, "bad count size");
      }
      if (count < 0)
        return make_error(ErrorCode::kParseError,
                          "negative array count in '" + field.path + "'");
      // slot and count are attacker bytes: the offset + count*size sum
      // must be computed overflow-checked, or a wrapped value sails past
      // the bounds test and the copy below reads wild memory.
      std::uint64_t at = slot - 1;
      std::uint64_t payload = 0;
      if (!checked_mul(static_cast<std::uint64_t>(count), field.size, &payload) ||
          !fits_within(at, payload, header.var_length))
        return make_error(ErrorCode::kMalformedInput,
                          "array payload out of range in '" + field.path + "'");
      XMIT_RETURN_IF_ERROR(budget.charge(payload, "decoded array"));
      value = reinterpret_cast<std::uint8_t*>(
          arena.duplicate(var + at, payload, field.size > 8 ? 8 : field.size));
    }
    store_raw(dst + field.offset, value);
  }
  return Status::ok();
}

Status Decoder::run_conversion(const Plan& plan, const WireHeader& header,
                               std::span<const std::uint8_t> bytes, void* out,
                               Arena& arena, AllocBudget& budget) const {
  const std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  const std::uint8_t* var = fixed + header.fixed_length;
  auto* dst_base = static_cast<std::uint8_t*>(out);
  std::memset(dst_base, 0, plan.receiver_struct_size);
  const ByteOrder src_order = header.byte_order;

  for (const auto& move : plan.moves) {
    const FlatField& src = move.src;
    const FlatField& dst = move.dst;

    // u64 on purpose: offset + size are u32s from peer-announced format
    // metadata and a 32-bit sum can wrap past this check.
    if (!fits_within(src.offset, src.size, header.fixed_length))
      return make_error(ErrorCode::kOutOfRange,
                        "source field '" + src.path + "' outside fixed section");

    if (src.kind == FieldKind::kString) {
      const std::uint32_t src_elems =
          src.array_mode == ArrayMode::kFixed ? src.fixed_count : 1;
      const std::uint32_t dst_elems =
          dst.array_mode == ArrayMode::kFixed ? dst.fixed_count : 1;
      const std::uint32_t elems = src_elems < dst_elems ? src_elems : dst_elems;
      if (!fits_within(src.offset,
                       std::uint64_t(elems) * header.pointer_size,
                       header.fixed_length))
        return make_error(ErrorCode::kMalformedInput,
                          "string slots outside fixed section in '" +
                              src.path + "'");
      for (std::uint32_t i = 0; i < elems; ++i) {
        std::size_t src_slot = src.offset + std::size_t(i) * header.pointer_size;
        std::size_t dst_slot = dst.offset + std::size_t(i) * sizeof(void*);
        std::uint64_t slot =
            read_slot_value(fixed, src_slot, header.pointer_size, src_order);
        char* value = nullptr;
        if (slot != 0) {
          std::uint64_t at = slot - 1;
          if (at >= header.var_length)
            return make_error(ErrorCode::kOutOfRange,
                              "string offset out of range in '" + src.path + "'");
          const void* nul = std::memchr(var + at, 0, header.var_length - at);
          if (nul == nullptr)
            return make_error(ErrorCode::kParseError,
                              "unterminated string in '" + src.path + "'");
          std::size_t len = static_cast<const std::uint8_t*>(nul) - (var + at);
          XMIT_RETURN_IF_ERROR(budget.charge(len + 1, "decoded string"));
          value = arena.duplicate_string(
              reinterpret_cast<const char*>(var + at), len);
        }
        store_raw(dst_base + dst_slot, value);
      }
      continue;
    }

    if (src.array_mode == ArrayMode::kDynamic) {
      // Element count lives in the sender's fixed section.
      if (!fits_within(src.count_offset, src.count_size, header.fixed_length))
        return make_error(ErrorCode::kOutOfRange,
                          "count field outside fixed section for '" +
                              src.path + "'");
      XMIT_ASSIGN_OR_RETURN(
          auto count_value,
          load_scalar(fixed + src.count_offset, src.count_kind, src.count_size,
                      src_order));
      std::int64_t count = count_value.cls == ScalarValue::Class::kUnsigned
                               ? static_cast<std::int64_t>(count_value.u)
                               : count_value.i;
      if (count < 0)
        return make_error(ErrorCode::kParseError,
                          "negative array count in '" + src.path + "'");
      std::uint64_t slot =
          read_slot_value(fixed, src.offset, header.pointer_size, src_order);
      std::uint8_t* value = nullptr;
      if (slot != 0 && count > 0) {
        // count and slot are attacker bytes; the count*size product and
        // offset+payload sum must not wrap past the bounds check, and the
        // receiver-side allocation is charged against the decode budget.
        std::uint64_t at = slot - 1;
        std::uint64_t payload = 0;
        std::uint64_t dst_bytes = 0;
        if (!checked_mul(static_cast<std::uint64_t>(count), src.size, &payload) ||
            !fits_within(at, payload, header.var_length) ||
            !checked_mul(static_cast<std::uint64_t>(count), dst.size, &dst_bytes))
          return make_error(ErrorCode::kMalformedInput,
                            "array payload out of range in '" + src.path + "'");
        XMIT_RETURN_IF_ERROR(budget.charge(dst_bytes, "decoded array"));
        value = static_cast<std::uint8_t*>(arena.allocate(
            static_cast<std::size_t>(dst_bytes),
            dst.size > 8 ? 8 : dst.size));
        for (std::int64_t i = 0; i < count; ++i) {
          XMIT_ASSIGN_OR_RETURN(
              auto scalar, load_scalar(var + at + std::uint64_t(i) * src.size,
                                       src.kind, src.size, src_order));
          store_scalar(value + std::uint64_t(i) * dst.size, dst.kind, dst.size,
                       scalar, host_byte_order());
        }
      } else if (slot != 0 && count == 0) {
        value = static_cast<std::uint8_t*>(arena.allocate(1));
      }
      store_raw(dst_base + dst.offset, value);
      continue;
    }

    // Scalars and fixed arrays.
    const std::uint32_t src_count =
        src.array_mode == ArrayMode::kFixed ? src.fixed_count : 1;
    const std::uint32_t dst_count =
        dst.array_mode == ArrayMode::kFixed ? dst.fixed_count : 1;
    const std::uint32_t count = src_count < dst_count ? src_count : dst_count;
    if (!fits_within(src.offset, std::uint64_t(src_count) * src.size,
                     header.fixed_length))
      return make_error(ErrorCode::kOutOfRange,
                        "source array '" + src.path + "' outside fixed section");
    if (move.bitwise_compatible) {
      std::memcpy(dst_base + dst.offset, fixed + src.offset,
                  std::size_t(count) * src.size);
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      XMIT_ASSIGN_OR_RETURN(
          auto scalar, load_scalar(fixed + src.offset + std::size_t(i) * src.size,
                                   src.kind, src.size, src_order));
      store_scalar(dst_base + dst.offset + std::size_t(i) * dst.size, dst.kind,
                   dst.size, scalar, host_byte_order());
    }
  }
  // zero_fills are already covered by the upfront memset.
  return Status::ok();
}

Result<const void*> Decoder::decode_in_place(std::span<std::uint8_t> bytes,
                                             const Format& receiver) const {
  XMIT_ASSIGN_OR_RETURN(auto info, inspect(bytes));
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(info.sender_format, receiver));
  if (!plan->identity)
    return Status(ErrorCode::kUnsupported,
                  "in-place decode needs identical sender/receiver layouts");
  const WireHeader& header = info.header;
  std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  std::uint8_t* var = fixed + header.fixed_length;

  for (const auto& field : receiver.flat_fields()) {
    const bool is_string = field.kind == FieldKind::kString;
    const bool is_dynamic = field.array_mode == ArrayMode::kDynamic;
    if (!is_string && !is_dynamic) continue;
    const std::uint32_t elems =
        (is_string && field.array_mode == ArrayMode::kFixed) ? field.fixed_count
                                                             : 1;
    for (std::uint32_t i = 0; i < elems; ++i) {
      std::size_t slot_offset = field.offset + std::size_t(i) * sizeof(void*);
      std::uint64_t slot = read_slot_value(fixed, slot_offset,
                                           header.pointer_size,
                                           header.byte_order);
      void* value = nullptr;
      if (slot != 0) {
        std::uint64_t at = slot - 1;
        if (at >= header.var_length)
          return Status(ErrorCode::kOutOfRange,
                        "pointer slot out of range in '" + field.path + "'");
        if (is_dynamic) {
          // The caller will read count * size bytes through the patched
          // pointer; validate that whole extent now (overflow-checked),
          // not just the first byte.
          XMIT_ASSIGN_OR_RETURN(
              auto scalar,
              load_scalar(fixed + field.count_offset, field.count_kind,
                          field.count_size, header.byte_order));
          std::int64_t count = scalar.as_signed();
          std::uint64_t payload = 0;
          if (count < 0 ||
              !checked_mul(static_cast<std::uint64_t>(count), field.size,
                           &payload) ||
              !fits_within(at, payload, header.var_length))
            return Status(ErrorCode::kMalformedInput,
                          "array payload out of range in '" + field.path + "'");
        }
        value = var + at;
      }
      store_raw(fixed + slot_offset, value);
    }
  }
  return static_cast<const void*>(fixed);
}

}  // namespace xmit::pbio
