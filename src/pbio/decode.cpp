#include "pbio/decode.hpp"

#include <cstdlib>
#include <cstring>

#include "pbio/kernels.hpp"
#include "pbio/scalar.hpp"

namespace xmit::pbio {
namespace {

// Process-wide plan verifier hook (set by analysis::register_plan_verifier).
// Copied out under the lock so a long-running verification never holds it.
std::mutex g_verifier_mutex;
PlanVerifier g_plan_verifier;  // guarded by g_verifier_mutex

PlanVerifier current_plan_verifier() {
  std::lock_guard<std::mutex> lock(g_verifier_mutex);
  return g_plan_verifier;
}

}  // namespace

void set_global_plan_verifier(PlanVerifier verifier) {
  std::lock_guard<std::mutex> lock(g_verifier_mutex);
  g_plan_verifier = std::move(verifier);
}

bool has_global_plan_verifier() {
  std::lock_guard<std::mutex> lock(g_verifier_mutex);
  return static_cast<bool>(g_plan_verifier);
}

bool Decoder::verify_plans_env_default() {
  const char* value = std::getenv("XMIT_VERIFY_PLANS");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

namespace {

bool flat_fields_identical(const std::vector<FlatField>& a,
                           const std::vector<FlatField>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FlatField& x = a[i];
    const FlatField& y = b[i];
    if (x.path != y.path || x.kind != y.kind || x.size != y.size ||
        x.offset != y.offset || x.array_mode != y.array_mode ||
        x.fixed_count != y.fixed_count || x.count_offset != y.count_offset ||
        x.count_size != y.count_size)
      return false;
  }
  return true;
}

bool int_like(FieldKind k) {
  return k == FieldKind::kInteger || k == FieldKind::kUnsigned;
}

// How the kernel layer transfers one element pair.
enum class ElemMode : std::uint8_t { kCopy, kSwap, kConvert };

// Picks the cheapest kernel whose output is bit-identical to what the
// reference interpreter produces for this (src, dst) pair:
//   - equal-width integer<->unsigned moves are raw bytes (sign extension
//     and re-masking cancel), so they copy / byte-swap;
//   - floats of equal width copy or byte-reverse (the interpreter's
//     float->double->float round trip is exact for every non-signaling
//     value; plans prefer the bit-preserving kernel);
//   - width-1 fields are order-free and copy, except booleans, which the
//     interpreter normalizes to 0/1 on every element-wise move;
//   - booleans memcpy only where the reference path memcpys them too:
//     same-order fixed-section moves (`bool_memcpy_ok`), never dynamic
//     arrays, which the interpreter always element-converts.
ElemMode classify(FieldKind sk, std::uint32_t ssize, FieldKind dk,
                  std::uint32_t dsize, bool same_order, bool bool_memcpy_ok) {
  if (ssize != dsize) return ElemMode::kConvert;
  const bool kinds_bitwise =
      (int_like(sk) && int_like(dk)) ||
      (sk == dk && (sk == FieldKind::kFloat || sk == FieldKind::kChar)) ||
      (sk == dk && sk == FieldKind::kBoolean && bool_memcpy_ok && same_order);
  if (!kinds_bitwise) return ElemMode::kConvert;
  if (same_order) return ElemMode::kCopy;
  if (ssize == 1) return ElemMode::kCopy;  // no byte order at width 1
  return ElemMode::kSwap;
}

char kind_letter(FieldKind kind) {
  switch (kind) {
    case FieldKind::kInteger: return 'i';
    case FieldKind::kUnsigned: return 'u';
    case FieldKind::kFloat: return 'f';
    case FieldKind::kChar: return 'c';
    case FieldKind::kBoolean: return 'b';
    case FieldKind::kString: return 's';
    case FieldKind::kNested: return 'n';
  }
  return '?';
}

}  // namespace

// One field-to-field transfer in a conversion plan — the reference
// interpreter's unit of work, and the input the op compiler lowers.
struct Decoder::Move {
  FlatField src;
  FlatField dst;
  // Fast criteria precomputed at plan build: a scalar/fixed-array move
  // whose kind, size and (after header check) byte order all match can be
  // memcpy'd.
  bool bitwise_compatible = false;
};

// One instruction of the compiled marshal program. Fixed-section extents
// (src_offset/dst_offset plus the op's span) are validated against both
// struct sizes when the plan is built, so executing an op performs no
// bounds checks on the fixed section — only var-section offsets and
// counts, which are data-dependent, are checked per record.
struct Decoder::Op {
  enum class Kind : std::uint8_t {
    kCopy,             // memcpy `count` bytes
    kSwap,             // byte-reverse `count` elements of width src_size
    kConvert,          // widen/narrow/normalize `count` elements
    kString,           // `count` pointer slots -> arena strings
    kDynCopy,          // dynamic array, payload memcpy
    kDynSwap,          // dynamic array, bulk byte-reverse
    kDynConvert,       // dynamic array, element conversion
    kFusedConvert,     // fused swap+widen/narrow vector kernel
    kDynFusedConvert,  // dynamic array through the fused kernel
  };
  Kind kind = Kind::kCopy;
  FusedKind fused = FusedKind::kWidenI32ToI64;  // kFusedConvert / kDynFused*
  FieldKind src_kind = FieldKind::kInteger;
  FieldKind dst_kind = FieldKind::kInteger;
  FieldKind count_kind = FieldKind::kInteger;  // kDyn*
  std::uint32_t src_size = 0;
  std::uint32_t dst_size = 0;
  std::uint32_t count_size = 0;    // kDyn*
  std::uint32_t src_offset = 0;
  std::uint32_t dst_offset = 0;
  std::uint32_t count = 0;         // kCopy: bytes; others: elements/slots
  std::uint32_t count_offset = 0;  // kDyn*
  std::uint32_t path = 0;          // index into Plan::paths (diagnostics)
};

struct Decoder::Plan {
  bool identity = false;
  bool zero_fill = false;  // conversion plans memset the receiver struct
  ByteOrder src_order = ByteOrder::kLittle;
  std::uint8_t src_pointer_size = sizeof(void*);
  std::uint32_t sender_struct_size = 0;
  std::uint32_t receiver_struct_size = 0;
  std::vector<Op> ops;             // compiled program (decode())
  std::vector<std::string> paths;  // op -> field path, for diagnostics
  // Reference interpreter state (decode_reference()).
  std::vector<Move> moves;
  std::vector<FlatField> zero_fills;  // receiver fields absent on the wire

  std::uint32_t add_path(std::string path) {
    paths.push_back(std::move(path));
    return static_cast<std::uint32_t>(paths.size() - 1);
  }
};

Result<RecordInfo> Decoder::inspect(
    std::span<const std::uint8_t> bytes) const {
  XMIT_ASSIGN_OR_RETURN(auto header, parse_record(bytes));
  XMIT_ASSIGN_OR_RETURN(auto format, registry_.by_id(header.format_id));
  if (format->struct_size() != header.fixed_length)
    return Status(ErrorCode::kParseError,
                  "record fixed length " + std::to_string(header.fixed_length) +
                      " does not match format '" + format->name() + "' (" +
                      std::to_string(format->struct_size()) + " bytes)");
  // The header's flags and the format's architecture both claim the
  // sender's pointer size / byte order. They must agree: pointer slots are
  // read at the *header's* stride but validated against the *format's*
  // layout, so a contradiction lets an 8-byte slot read run past a field
  // the format laid out for 4-byte pointers.
  if (format->arch().pointer_size != header.pointer_size ||
      format->arch().byte_order != header.byte_order)
    return Status(ErrorCode::kMalformedInput,
                  "record header architecture contradicts format '" +
                      format->name() + "' metadata");
  return RecordInfo{header, std::move(format)};
}

Result<bool> Decoder::layouts_identical(const Format& sender,
                                        const Format& receiver) const {
  if (!(sender.arch() == receiver.arch())) return false;
  if (sender.struct_size() != receiver.struct_size()) return false;
  return flat_fields_identical(sender.flat_fields(), receiver.flat_fields());
}

void Decoder::compile_identity(const Format& receiver, Plan& plan) {
  // One span for the whole fixed section, then slot fix-ups. The copy
  // carries the raw wire slot values into the struct; the string/array
  // ops overwrite them with arena pointers.
  Op copy;
  copy.kind = Op::Kind::kCopy;
  copy.count = receiver.struct_size();
  copy.path = plan.add_path("<fixed section>");
  plan.ops.push_back(copy);

  for (const auto& field : receiver.flat_fields()) {
    if (field.kind == FieldKind::kString) {
      Op op;
      op.kind = Op::Kind::kString;
      op.src_kind = op.dst_kind = FieldKind::kString;
      op.src_size = op.dst_size = field.size;
      op.src_offset = op.dst_offset = field.offset;
      op.count =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      op.path = plan.add_path(field.path);
      plan.ops.push_back(op);
      continue;
    }
    if (field.array_mode != ArrayMode::kDynamic) continue;
    Op op;
    op.kind = Op::Kind::kDynCopy;
    op.src_kind = op.dst_kind = field.kind;
    op.src_size = op.dst_size = field.size;
    op.src_offset = op.dst_offset = field.offset;
    op.count_offset = field.count_offset;
    op.count_size = field.count_size;
    op.count_kind = field.count_kind;
    op.path = plan.add_path(field.path);
    plan.ops.push_back(op);
  }
}

Status Decoder::compile_conversion(const Format& sender,
                                   const Format& receiver, Plan& plan) {
  const bool same_order =
      sender.arch().byte_order == receiver.arch().byte_order;
  const std::uint32_t src_fixed = sender.struct_size();
  const std::uint32_t dst_fixed = receiver.struct_size();
  const std::uint8_t src_ptr = sender.arch().pointer_size;

  // inspect() pins the wire fixed length to sender.struct_size(), and
  // Format::make validated every field extent against it — re-check here
  // once so the executed ops can skip fixed-section bounds tests entirely.
  auto fixed_extent_ok = [](std::uint64_t offset, std::uint64_t bytes,
                            std::uint32_t limit) {
    return fits_within(offset, bytes, limit);
  };

  // Coalescer state: the src/dst byte positions where the previous fused
  // op ended. A candidate fuses only when it starts exactly there on BOTH
  // sides — never across padding, so receiver padding bytes stay at the
  // memset's zeros exactly as the reference interpreter leaves them.
  std::uint64_t src_end = UINT64_MAX;
  std::uint64_t dst_end = UINT64_MAX;
  auto push_fused = [&](const Op& op, std::uint64_t src_span,
                        std::uint64_t dst_span) {
    bool fused = false;
    if (!plan.ops.empty() && op.src_offset == src_end &&
        op.dst_offset == dst_end) {
      Op& prev = plan.ops.back();
      if (prev.kind == op.kind) {
        switch (op.kind) {
          case Op::Kind::kCopy:
            prev.count += op.count;
            fused = true;
            break;
          case Op::Kind::kSwap:
            if (prev.src_size == op.src_size) {
              prev.count += op.count;
              fused = true;
            }
            break;
          case Op::Kind::kConvert:
          case Op::Kind::kFusedConvert:
            // Same (kind, size) pairs imply the same FusedKind, so fused
            // ops coalesce under the same test as generic conversions.
            if (prev.src_kind == op.src_kind &&
                prev.dst_kind == op.dst_kind &&
                prev.src_size == op.src_size &&
                prev.dst_size == op.dst_size) {
              prev.count += op.count;
              fused = true;
            }
            break;
          default:
            break;
        }
      }
    }
    if (!fused) plan.ops.push_back(op);
    src_end = op.src_offset + src_span;
    dst_end = op.dst_offset + dst_span;
  };
  auto push_barrier = [&](const Op& op) {
    plan.ops.push_back(op);
    src_end = dst_end = UINT64_MAX;
  };

  for (const auto& move : plan.moves) {
    const FlatField& src = move.src;
    const FlatField& dst = move.dst;

    if (src.kind == FieldKind::kString) {
      const std::uint32_t src_elems =
          src.array_mode == ArrayMode::kFixed ? src.fixed_count : 1;
      const std::uint32_t dst_elems =
          dst.array_mode == ArrayMode::kFixed ? dst.fixed_count : 1;
      const std::uint32_t elems =
          src_elems < dst_elems ? src_elems : dst_elems;
      if (!fixed_extent_ok(src.offset, std::uint64_t(elems) * src_ptr,
                           src_fixed) ||
          !fixed_extent_ok(dst.offset, std::uint64_t(elems) * sizeof(void*),
                           dst_fixed))
        return Status(ErrorCode::kInternal,
                      "string slots outside fixed section in '" + src.path +
                          "'");
      Op op;
      op.kind = Op::Kind::kString;
      op.src_kind = op.dst_kind = FieldKind::kString;
      op.src_size = src.size;
      op.dst_size = dst.size;
      op.src_offset = src.offset;
      op.dst_offset = dst.offset;
      op.count = elems;
      op.path = plan.add_path(dst.path);
      push_barrier(op);
      continue;
    }

    if (src.array_mode == ArrayMode::kDynamic) {
      if (!fixed_extent_ok(src.count_offset, src.count_size, src_fixed) ||
          !fixed_extent_ok(src.offset, src_ptr, src_fixed) ||
          !fixed_extent_ok(dst.offset, sizeof(void*), dst_fixed))
        return Status(ErrorCode::kInternal,
                      "dynamic array metadata outside fixed section for '" +
                          src.path + "'");
      ElemMode mode = classify(src.kind, src.size, dst.kind, dst.size,
                               same_order, /*bool_memcpy_ok=*/false);
      if (mode == ElemMode::kSwap && !swap_width_supported(src.size))
        return Status(ErrorCode::kInternal,
                      "planner invariant violated: no swap kernel for width " +
                          std::to_string(src.size) + " in '" + src.path + "'");
      Op op;
      op.kind = mode == ElemMode::kCopy    ? Op::Kind::kDynCopy
                : mode == ElemMode::kSwap  ? Op::Kind::kDynSwap
                                           : Op::Kind::kDynConvert;
      if (op.kind == Op::Kind::kDynConvert &&
          fused_shape(src.kind, src.size, dst.kind, dst.size, &op.fused))
        op.kind = Op::Kind::kDynFusedConvert;
      op.src_kind = src.kind;
      op.dst_kind = dst.kind;
      op.src_size = src.size;
      op.dst_size = dst.size;
      op.src_offset = src.offset;
      op.dst_offset = dst.offset;
      op.count_offset = src.count_offset;
      op.count_size = src.count_size;
      op.count_kind = src.count_kind;
      op.path = plan.add_path(dst.path);
      push_barrier(op);
      continue;
    }

    // Scalars and fixed arrays.
    const std::uint32_t src_count =
        src.array_mode == ArrayMode::kFixed ? src.fixed_count : 1;
    const std::uint32_t dst_count =
        dst.array_mode == ArrayMode::kFixed ? dst.fixed_count : 1;
    const std::uint32_t count = src_count < dst_count ? src_count : dst_count;
    if (!fixed_extent_ok(src.offset, std::uint64_t(src_count) * src.size,
                         src_fixed) ||
        !fixed_extent_ok(dst.offset, std::uint64_t(dst_count) * dst.size,
                         dst_fixed))
      return Status(ErrorCode::kInternal,
                    "field '" + src.path + "' outside fixed section");
    ElemMode mode = classify(src.kind, src.size, dst.kind, dst.size,
                             same_order, /*bool_memcpy_ok=*/true);
    if (mode == ElemMode::kSwap && !swap_width_supported(src.size))
      return Status(ErrorCode::kInternal,
                    "planner invariant violated: no swap kernel for width " +
                        std::to_string(src.size) + " in '" + src.path + "'");
    Op op;
    op.src_kind = src.kind;
    op.dst_kind = dst.kind;
    op.src_size = src.size;
    op.dst_size = dst.size;
    op.src_offset = src.offset;
    op.dst_offset = dst.offset;
    op.path = plan.add_path(dst.path);
    switch (mode) {
      case ElemMode::kCopy:
        op.kind = Op::Kind::kCopy;
        op.count = count * src.size;  // bytes
        push_fused(op, op.count, op.count);
        break;
      case ElemMode::kSwap:
        op.kind = Op::Kind::kSwap;
        op.count = count;
        push_fused(op, std::uint64_t(count) * src.size,
                   std::uint64_t(count) * dst.size);
        break;
      case ElemMode::kConvert:
        op.kind = fused_shape(src.kind, src.size, dst.kind, dst.size,
                              &op.fused)
                      ? Op::Kind::kFusedConvert
                      : Op::Kind::kConvert;
        op.count = count;
        push_fused(op, std::uint64_t(count) * src.size,
                   std::uint64_t(count) * dst.size);
        break;
    }
  }
  return Status::ok();
}

Result<std::shared_ptr<const Decoder::Plan>> Decoder::build_plan(
    const Format& sender, const Format& receiver) {
  auto plan = std::make_shared<Plan>();
  plan->sender_struct_size = sender.struct_size();
  plan->receiver_struct_size = receiver.struct_size();
  plan->src_order = sender.arch().byte_order;
  plan->src_pointer_size = sender.arch().pointer_size;
  plan->identity = sender.arch() == receiver.arch() &&
                   sender.struct_size() == receiver.struct_size() &&
                   flat_fields_identical(sender.flat_fields(),
                                         receiver.flat_fields());
  if (plan->identity) {
    compile_identity(receiver, *plan);
    return std::shared_ptr<const Plan>(plan);
  }

  const bool same_order = sender.arch().byte_order == receiver.arch().byte_order;
  for (const auto& dst : receiver.flat_fields()) {
    const FlatField* src = sender.flat_field(dst.path);
    if (src == nullptr) {
      // Restricted evolution: the sender predates this field.
      plan->zero_fills.push_back(dst);
      continue;
    }
    // Shape changes (scalar <-> array, string <-> numeric) are not part of
    // PBIO's evolution contract; surface them at bind time, not mid-stream.
    const bool src_is_string = src->kind == FieldKind::kString;
    const bool dst_is_string = dst.kind == FieldKind::kString;
    if (src_is_string != dst_is_string)
      return Status(ErrorCode::kUnsupported,
                    "field '" + dst.path + "' changed between string and non-string");
    if (src->array_mode != dst.array_mode &&
        !(src->array_mode == ArrayMode::kFixed &&
          dst.array_mode == ArrayMode::kFixed))
      return Status(ErrorCode::kUnsupported,
                    "field '" + dst.path + "' changed array shape");
    Move move;
    move.src = *src;
    move.dst = dst;
    move.bitwise_compatible = same_order && src->kind == dst.kind &&
                              src->size == dst.size &&
                              src->kind != FieldKind::kString &&
                              src->array_mode != ArrayMode::kDynamic;
    plan->moves.push_back(std::move(move));
  }
  plan->zero_fill = true;
  XMIT_RETURN_IF_ERROR(compile_conversion(sender, receiver, *plan));
  return std::shared_ptr<const Plan>(plan);
}

PlanView Decoder::view_of(const Plan& plan) {
  // The cast below relies on the two Kind enums staying in lockstep.
  static_assert(static_cast<int>(Op::Kind::kCopy) ==
                static_cast<int>(PlanOp::Kind::kCopy));
  static_assert(static_cast<int>(Op::Kind::kDynConvert) ==
                static_cast<int>(PlanOp::Kind::kDynConvert));
  static_assert(static_cast<int>(Op::Kind::kFusedConvert) ==
                static_cast<int>(PlanOp::Kind::kFusedConvert));
  static_assert(static_cast<int>(Op::Kind::kDynFusedConvert) ==
                static_cast<int>(PlanOp::Kind::kDynFusedConvert));
  PlanView view;
  view.identity = plan.identity;
  view.zero_fill = plan.zero_fill;
  view.src_order = plan.src_order;
  view.src_pointer_size = plan.src_pointer_size;
  view.sender_struct_size = plan.sender_struct_size;
  view.receiver_struct_size = plan.receiver_struct_size;
  view.ops.reserve(plan.ops.size());
  for (const Op& op : plan.ops) {
    PlanOp out;
    out.kind = static_cast<PlanOp::Kind>(op.kind);
    out.src_kind = op.src_kind;
    out.dst_kind = op.dst_kind;
    out.count_kind = op.count_kind;
    out.src_size = op.src_size;
    out.dst_size = op.dst_size;
    out.count_size = op.count_size;
    out.src_offset = op.src_offset;
    out.dst_offset = op.dst_offset;
    out.count = op.count;
    out.count_offset = op.count_offset;
    out.path = plan.paths[op.path];
    view.ops.push_back(std::move(out));
  }
  return view;
}

Result<PlanView> Decoder::plan_view(const FormatPtr& sender,
                                    const Format& receiver) const {
  if (!sender) return Status(ErrorCode::kInvalidArgument, "null format");
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(sender, receiver));
  return view_of(*plan);
}

// Rough resident footprint of one compiled plan, charged against the
// cache's byte budget. Exactness does not matter; monotonicity with plan
// complexity does.
std::size_t Decoder::plan_bytes(const Plan& plan) {
  std::size_t bytes = sizeof(Plan);
  bytes += plan.ops.capacity() * sizeof(Op);
  bytes += plan.moves.capacity() * sizeof(Move);
  bytes += plan.zero_fills.capacity() * sizeof(FlatField);
  for (const auto& path : plan.paths)
    bytes += sizeof(std::string) + path.capacity();
  for (const auto& move : plan.moves)
    bytes += move.src.path.capacity() + move.dst.path.capacity();
  return bytes;
}

Result<std::shared_ptr<const Decoder::Plan>> Decoder::plan_for(
    const FormatPtr& sender, const Format& receiver) const {
  std::pair<FormatId, FormatId> key{sender->id(), receiver.id()};
  if (auto hit = plans_.get(key)) return *hit;
  XMIT_ASSIGN_OR_RETURN(auto plan, build_plan(*sender, receiver));
  if (verify_plans_) {
    // A plan never enters the cache unverified; a rejected plan fails the
    // decode here, at bind time, instead of executing wild ops later.
    if (PlanVerifier verifier = current_plan_verifier())
      XMIT_RETURN_IF_ERROR(verifier(view_of(*plan), *sender, receiver));
  }
  // put() resolves a build race in favour of the resident plan (both are
  // equivalent programs), and silently declines to cache when the pinned
  // set fills the budget — the caller still gets its plan and an evicted
  // or uncached plan is simply rebuilt on the next lookup.
  std::size_t bytes = plan_bytes(*plan);
  return plans_.put(key, std::move(plan), bytes);
}

std::size_t Decoder::plan_cache_size() const { return plans_.size(); }

void Decoder::PlanPin::release() {
  if (decoder_ == nullptr) return;
  decoder_->plans_.unpin(key_);
  decoder_ = nullptr;
}

Result<Decoder::PlanPin> Decoder::pin_plan(const FormatPtr& sender,
                                           const Format& receiver) const {
  if (!sender) return Status(ErrorCode::kInvalidArgument, "null format");
  std::pair<FormatId, FormatId> key{sender->id(), receiver.id()};
  // Build (and verify) through the normal path, then pin atomically.
  // put_pinned re-inserts if the entry was evicted between the two steps.
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(sender, receiver));
  std::size_t bytes = plan_bytes(*plan);
  XMIT_RETURN_IF_ERROR(plans_.put_pinned(key, std::move(plan), bytes));
  return PlanPin(this, key);
}

Result<Decoder::PlanStats> Decoder::plan_stats(const FormatPtr& sender,
                                               const Format& receiver) const {
  if (!sender) return Status(ErrorCode::kInvalidArgument, "null format");
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(sender, receiver));
  PlanStats stats;
  stats.identity = plan->identity;
  for (const Op& op : plan->ops) {
    switch (op.kind) {
      case Op::Kind::kCopy: ++stats.copy_ops; break;
      case Op::Kind::kSwap: ++stats.swap_ops; break;
      case Op::Kind::kConvert: ++stats.convert_ops; break;
      case Op::Kind::kFusedConvert: ++stats.fused_ops; break;
      case Op::Kind::kString: ++stats.string_ops; break;
      case Op::Kind::kDynCopy:
      case Op::Kind::kDynSwap:
      case Op::Kind::kDynConvert:
      case Op::Kind::kDynFusedConvert: ++stats.dynamic_ops; break;
    }
  }
  return stats;
}

Result<std::string> Decoder::plan_disassembly(const FormatPtr& sender,
                                              const Format& receiver) const {
  if (!sender) return Status(ErrorCode::kInvalidArgument, "null format");
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(sender, receiver));
  std::string out;
  if (plan->identity) out += "identity\n";
  for (const Op& op : plan->ops) {
    char line[160];
    switch (op.kind) {
      case Op::Kind::kCopy:
        std::snprintf(line, sizeof(line), "copy src@%u dst@%u len=%u\n",
                      op.src_offset, op.dst_offset, op.count);
        break;
      case Op::Kind::kSwap:
        std::snprintf(line, sizeof(line), "swap%u src@%u dst@%u n=%u\n",
                      op.src_size, op.src_offset, op.dst_offset, op.count);
        break;
      case Op::Kind::kConvert:
        std::snprintf(line, sizeof(line),
                      "conv %c%u->%c%u src@%u dst@%u n=%u\n",
                      kind_letter(op.src_kind), op.src_size,
                      kind_letter(op.dst_kind), op.dst_size, op.src_offset,
                      op.dst_offset, op.count);
        break;
      case Op::Kind::kFusedConvert:
        std::snprintf(line, sizeof(line),
                      "fuse %s %c%u->%c%u src@%u dst@%u n=%u\n",
                      fused_kind_name(op.fused), kind_letter(op.src_kind),
                      op.src_size, kind_letter(op.dst_kind), op.dst_size,
                      op.src_offset, op.dst_offset, op.count);
        break;
      case Op::Kind::kString:
        std::snprintf(line, sizeof(line), "str src@%u dst@%u slots=%u\n",
                      op.src_offset, op.dst_offset, op.count);
        break;
      case Op::Kind::kDynCopy:
      case Op::Kind::kDynSwap:
      case Op::Kind::kDynConvert:
      case Op::Kind::kDynFusedConvert: {
        const char* verb = op.kind == Op::Kind::kDynCopy   ? "dyn-copy"
                           : op.kind == Op::Kind::kDynSwap ? "dyn-swap"
                           : op.kind == Op::Kind::kDynFusedConvert
                               ? "dyn-fuse"
                               : "dyn-conv";
        std::snprintf(line, sizeof(line),
                      "%s %c%u->%c%u src@%u dst@%u count@%u\n", verb,
                      kind_letter(op.src_kind), op.src_size,
                      kind_letter(op.dst_kind), op.dst_size, op.src_offset,
                      op.dst_offset, op.count_offset);
        break;
      }
    }
    out += line;
  }
  return out;
}

Status Decoder::decode(std::span<const std::uint8_t> bytes,
                       const Format& receiver, void* out, Arena& arena) const {
  XMIT_ASSIGN_OR_RETURN(auto info, inspect(bytes));
  if (!(receiver.arch() == ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "receiver format must describe the host architecture");
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(info.sender_format, receiver));
  AllocBudget budget = AllocBudget::from(limits_);
  return run_program(*plan, info.header, bytes, out, arena, budget);
}

Status Decoder::decode_reference(std::span<const std::uint8_t> bytes,
                                 const Format& receiver, void* out,
                                 Arena& arena) const {
  XMIT_ASSIGN_OR_RETURN(auto info, inspect(bytes));
  if (!(receiver.arch() == ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "receiver format must describe the host architecture");
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(info.sender_format, receiver));
  AllocBudget budget = AllocBudget::from(limits_);
  if (plan->identity)
    return run_identity_reference(info.header, bytes, receiver, out, arena,
                                  budget);
  return run_conversion_reference(*plan, info.header, bytes, out, arena,
                                  budget);
}

Status Decoder::run_program(const Plan& plan, const WireHeader& header,
                            std::span<const std::uint8_t> bytes, void* out,
                            Arena& arena, AllocBudget& budget) const {
  const std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  const std::uint8_t* var = fixed + header.fixed_length;
  auto* dst_base = static_cast<std::uint8_t*>(out);
  if (plan.zero_fill) std::memset(dst_base, 0, plan.receiver_struct_size);
  const ByteOrder src_order = plan.src_order;
  const std::uint8_t src_ptr = plan.src_pointer_size;

  for (const Op& op : plan.ops) {
    switch (op.kind) {
      case Op::Kind::kCopy:
        std::memcpy(dst_base + op.dst_offset, fixed + op.src_offset,
                    op.count);
        break;
      case Op::Kind::kSwap:
        swap_elements(dst_base + op.dst_offset, fixed + op.src_offset,
                      op.count, op.src_size);
        break;
      case Op::Kind::kConvert:
        convert_elements(dst_base + op.dst_offset, op.dst_kind, op.dst_size,
                         fixed + op.src_offset, op.src_kind, op.src_size,
                         op.count, src_order);
        break;
      case Op::Kind::kFusedConvert:
        convert_fused(dst_base + op.dst_offset, op.fused,
                      fixed + op.src_offset, op.count,
                      src_order != host_byte_order());
        break;
      case Op::Kind::kString: {
        for (std::uint32_t i = 0; i < op.count; ++i) {
          std::size_t src_slot = op.src_offset + std::size_t(i) * src_ptr;
          std::size_t dst_slot =
              op.dst_offset + std::size_t(i) * sizeof(void*);
          std::uint64_t slot =
              read_slot_value(fixed, src_slot, src_ptr, src_order);
          char* value = nullptr;
          if (slot != 0) {
            std::uint64_t at = slot - 1;
            if (at >= header.var_length)
              return make_error(ErrorCode::kOutOfRange,
                                "string offset out of range in '" +
                                    plan.paths[op.path] + "'");
            const void* nul = std::memchr(var + at, 0, header.var_length - at);
            if (nul == nullptr)
              return make_error(ErrorCode::kParseError,
                                "unterminated string in '" +
                                    plan.paths[op.path] + "'");
            std::size_t len =
                static_cast<const std::uint8_t*>(nul) - (var + at);
            XMIT_RETURN_IF_ERROR(budget.charge(len + 1, "decoded string"));
            value = arena.duplicate_string(
                reinterpret_cast<const char*>(var + at), len);
          }
          store_raw(dst_base + dst_slot, value);
        }
        break;
      }
      case Op::Kind::kDynCopy:
      case Op::Kind::kDynSwap:
      case Op::Kind::kDynConvert:
      case Op::Kind::kDynFusedConvert: {
        XMIT_ASSIGN_OR_RETURN(
            auto count,
            read_count_field(fixed, op.count_offset, op.count_size,
                             op.count_kind, src_order, plan.paths[op.path],
                             ErrorCode::kParseError));
        std::uint64_t slot =
            read_slot_value(fixed, op.src_offset, src_ptr, src_order);
        std::uint8_t* value = nullptr;
        if (slot != 0 && count > 0) {
          // count and slot are attacker bytes; the count*size product and
          // offset+payload sum must not wrap past the bounds check, and
          // the receiver-side allocation is charged against the budget.
          std::uint64_t at = slot - 1;
          std::uint64_t payload = 0;
          std::uint64_t dst_bytes = 0;
          if (!checked_mul(count, op.src_size, &payload) ||
              !fits_within(at, payload, header.var_length) ||
              !checked_mul(count, op.dst_size, &dst_bytes))
            return make_error(ErrorCode::kMalformedInput,
                              "array payload out of range in '" +
                                  plan.paths[op.path] + "'");
          XMIT_RETURN_IF_ERROR(budget.charge(dst_bytes, "decoded array"));
          value = static_cast<std::uint8_t*>(
              arena.allocate(static_cast<std::size_t>(dst_bytes),
                             op.dst_size > 8 ? 8 : op.dst_size));
          const std::size_t n = static_cast<std::size_t>(count);
          if (op.kind == Op::Kind::kDynCopy)
            std::memcpy(value, var + at, static_cast<std::size_t>(payload));
          else if (op.kind == Op::Kind::kDynSwap)
            swap_elements(value, var + at, n, op.src_size);
          else if (op.kind == Op::Kind::kDynFusedConvert)
            convert_fused(value, op.fused, var + at, n,
                          src_order != host_byte_order());
          else
            convert_elements(value, op.dst_kind, op.dst_size, var + at,
                             op.src_kind, op.src_size, n, src_order);
        } else if (slot != 0) {
          value = static_cast<std::uint8_t*>(arena.allocate(1));
        }
        store_raw(dst_base + op.dst_offset, value);
        break;
      }
    }
  }
  return Status::ok();
}

Status Decoder::run_identity_reference(const WireHeader& header,
                                       std::span<const std::uint8_t> bytes,
                                       const Format& receiver, void* out,
                                       Arena& arena,
                                       AllocBudget& budget) const {
  const std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  const std::uint8_t* var = fixed + header.fixed_length;
  auto* dst = static_cast<std::uint8_t*>(out);
  std::memcpy(dst, fixed, header.fixed_length);

  if (receiver.is_contiguous()) return Status::ok();
  for (const auto& field : receiver.flat_fields()) {
    if (field.kind == FieldKind::kString) {
      const std::uint32_t elems =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      for (std::uint32_t i = 0; i < elems; ++i) {
        std::size_t slot_offset = field.offset + std::size_t(i) * sizeof(void*);
        std::uint64_t slot = read_slot_value(
            fixed, slot_offset, header.pointer_size, header.byte_order);
        char* value = nullptr;
        if (slot != 0) {
          std::uint64_t at = slot - 1;
          if (at >= header.var_length)
            return make_error(ErrorCode::kOutOfRange,
                              "string offset out of range in '" + field.path + "'");
          const void* nul = std::memchr(var + at, 0, header.var_length - at);
          if (nul == nullptr)
            return make_error(ErrorCode::kParseError,
                              "unterminated string in '" + field.path + "'");
          std::size_t len = static_cast<const std::uint8_t*>(nul) - (var + at);
          XMIT_RETURN_IF_ERROR(budget.charge(len + 1, "decoded string"));
          value = arena.duplicate_string(
              reinterpret_cast<const char*>(var + at), len);
        }
        store_raw(dst + slot_offset, value);
      }
      continue;
    }
    if (field.array_mode != ArrayMode::kDynamic) continue;
    std::uint64_t slot = read_slot_value(fixed, field.offset,
                                         header.pointer_size,
                                         header.byte_order);
    std::uint8_t* value = nullptr;
    if (slot != 0) {
      // Identity plan: count field layout matches; read it through the
      // shared helper at the sender's (== host's) order.
      XMIT_ASSIGN_OR_RETURN(
          auto count,
          read_count_field(fixed, field.count_offset, field.count_size,
                           field.count_kind, header.byte_order, field.path,
                           ErrorCode::kParseError));
      // slot and count are attacker bytes: the offset + count*size sum
      // must be computed overflow-checked, or a wrapped value sails past
      // the bounds test and the copy below reads wild memory.
      std::uint64_t at = slot - 1;
      std::uint64_t payload = 0;
      if (!checked_mul(count, field.size, &payload) ||
          !fits_within(at, payload, header.var_length))
        return make_error(ErrorCode::kMalformedInput,
                          "array payload out of range in '" + field.path + "'");
      XMIT_RETURN_IF_ERROR(budget.charge(payload, "decoded array"));
      value = reinterpret_cast<std::uint8_t*>(
          arena.duplicate(var + at, payload, field.size > 8 ? 8 : field.size));
    }
    store_raw(dst + field.offset, value);
  }
  return Status::ok();
}

Status Decoder::run_conversion_reference(const Plan& plan,
                                         const WireHeader& header,
                                         std::span<const std::uint8_t> bytes,
                                         void* out, Arena& arena,
                                         AllocBudget& budget) const {
  const std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  const std::uint8_t* var = fixed + header.fixed_length;
  auto* dst_base = static_cast<std::uint8_t*>(out);
  std::memset(dst_base, 0, plan.receiver_struct_size);
  const ByteOrder src_order = header.byte_order;

  for (const auto& move : plan.moves) {
    const FlatField& src = move.src;
    const FlatField& dst = move.dst;

    // u64 on purpose: offset + size are u32s from peer-announced format
    // metadata and a 32-bit sum can wrap past this check.
    if (!fits_within(src.offset, src.size, header.fixed_length))
      return make_error(ErrorCode::kOutOfRange,
                        "source field '" + src.path + "' outside fixed section");

    if (src.kind == FieldKind::kString) {
      const std::uint32_t src_elems =
          src.array_mode == ArrayMode::kFixed ? src.fixed_count : 1;
      const std::uint32_t dst_elems =
          dst.array_mode == ArrayMode::kFixed ? dst.fixed_count : 1;
      const std::uint32_t elems = src_elems < dst_elems ? src_elems : dst_elems;
      if (!fits_within(src.offset,
                       std::uint64_t(elems) * header.pointer_size,
                       header.fixed_length))
        return make_error(ErrorCode::kMalformedInput,
                          "string slots outside fixed section in '" +
                              src.path + "'");
      for (std::uint32_t i = 0; i < elems; ++i) {
        std::size_t src_slot = src.offset + std::size_t(i) * header.pointer_size;
        std::size_t dst_slot = dst.offset + std::size_t(i) * sizeof(void*);
        std::uint64_t slot =
            read_slot_value(fixed, src_slot, header.pointer_size, src_order);
        char* value = nullptr;
        if (slot != 0) {
          std::uint64_t at = slot - 1;
          if (at >= header.var_length)
            return make_error(ErrorCode::kOutOfRange,
                              "string offset out of range in '" + src.path + "'");
          const void* nul = std::memchr(var + at, 0, header.var_length - at);
          if (nul == nullptr)
            return make_error(ErrorCode::kParseError,
                              "unterminated string in '" + src.path + "'");
          std::size_t len = static_cast<const std::uint8_t*>(nul) - (var + at);
          XMIT_RETURN_IF_ERROR(budget.charge(len + 1, "decoded string"));
          value = arena.duplicate_string(
              reinterpret_cast<const char*>(var + at), len);
        }
        store_raw(dst_base + dst_slot, value);
      }
      continue;
    }

    if (src.array_mode == ArrayMode::kDynamic) {
      // Element count lives in the sender's fixed section.
      if (!fits_within(src.count_offset, src.count_size, header.fixed_length))
        return make_error(ErrorCode::kOutOfRange,
                          "count field outside fixed section for '" +
                              src.path + "'");
      XMIT_ASSIGN_OR_RETURN(
          auto count,
          read_count_field(fixed, src.count_offset, src.count_size,
                           src.count_kind, src_order, src.path,
                           ErrorCode::kParseError));
      std::uint64_t slot =
          read_slot_value(fixed, src.offset, header.pointer_size, src_order);
      std::uint8_t* value = nullptr;
      if (slot != 0 && count > 0) {
        // count and slot are attacker bytes; the count*size product and
        // offset+payload sum must not wrap past the bounds check, and the
        // receiver-side allocation is charged against the decode budget.
        std::uint64_t at = slot - 1;
        std::uint64_t payload = 0;
        std::uint64_t dst_bytes = 0;
        if (!checked_mul(count, src.size, &payload) ||
            !fits_within(at, payload, header.var_length) ||
            !checked_mul(count, dst.size, &dst_bytes))
          return make_error(ErrorCode::kMalformedInput,
                            "array payload out of range in '" + src.path + "'");
        XMIT_RETURN_IF_ERROR(budget.charge(dst_bytes, "decoded array"));
        value = static_cast<std::uint8_t*>(arena.allocate(
            static_cast<std::size_t>(dst_bytes),
            dst.size > 8 ? 8 : dst.size));
        for (std::uint64_t i = 0; i < count; ++i) {
          XMIT_ASSIGN_OR_RETURN(
              auto scalar, load_scalar(var + at + i * src.size,
                                       src.kind, src.size, src_order));
          store_scalar(value + i * dst.size, dst.kind, dst.size,
                       scalar, host_byte_order());
        }
      } else if (slot != 0 && count == 0) {
        value = static_cast<std::uint8_t*>(arena.allocate(1));
      }
      store_raw(dst_base + dst.offset, value);
      continue;
    }

    // Scalars and fixed arrays.
    const std::uint32_t src_count =
        src.array_mode == ArrayMode::kFixed ? src.fixed_count : 1;
    const std::uint32_t dst_count =
        dst.array_mode == ArrayMode::kFixed ? dst.fixed_count : 1;
    const std::uint32_t count = src_count < dst_count ? src_count : dst_count;
    if (!fits_within(src.offset, std::uint64_t(src_count) * src.size,
                     header.fixed_length))
      return make_error(ErrorCode::kOutOfRange,
                        "source array '" + src.path + "' outside fixed section");
    if (move.bitwise_compatible) {
      std::memcpy(dst_base + dst.offset, fixed + src.offset,
                  std::size_t(count) * src.size);
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      XMIT_ASSIGN_OR_RETURN(
          auto scalar, load_scalar(fixed + src.offset + std::size_t(i) * src.size,
                                   src.kind, src.size, src_order));
      store_scalar(dst_base + dst.offset + std::size_t(i) * dst.size, dst.kind,
                   dst.size, scalar, host_byte_order());
    }
  }
  // zero_fills are already covered by the upfront memset.
  return Status::ok();
}

Result<const void*> Decoder::decode_in_place(std::span<std::uint8_t> bytes,
                                             const Format& receiver) const {
  XMIT_ASSIGN_OR_RETURN(auto info, inspect(bytes));
  XMIT_ASSIGN_OR_RETURN(auto plan, plan_for(info.sender_format, receiver));
  if (!plan->identity)
    return Status(ErrorCode::kUnsupported,
                  "in-place decode needs identical sender/receiver layouts");
  const WireHeader& header = info.header;
  std::uint8_t* fixed = bytes.data() + WireHeader::kSize;
  std::uint8_t* var = fixed + header.fixed_length;

  for (const auto& field : receiver.flat_fields()) {
    const bool is_string = field.kind == FieldKind::kString;
    const bool is_dynamic = field.array_mode == ArrayMode::kDynamic;
    if (!is_string && !is_dynamic) continue;
    const std::uint32_t elems =
        (is_string && field.array_mode == ArrayMode::kFixed) ? field.fixed_count
                                                             : 1;
    for (std::uint32_t i = 0; i < elems; ++i) {
      std::size_t slot_offset = field.offset + std::size_t(i) * sizeof(void*);
      std::uint64_t slot = read_slot_value(fixed, slot_offset,
                                           header.pointer_size,
                                           header.byte_order);
      void* value = nullptr;
      if (slot != 0) {
        std::uint64_t at = slot - 1;
        if (at >= header.var_length)
          return Status(ErrorCode::kOutOfRange,
                        "pointer slot out of range in '" + field.path + "'");
        if (is_dynamic) {
          // The caller will read count * size bytes through the patched
          // pointer; validate that whole extent now (overflow-checked),
          // not just the first byte.
          XMIT_ASSIGN_OR_RETURN(
              auto count,
              read_count_field(fixed, field.count_offset, field.count_size,
                               field.count_kind, header.byte_order,
                               field.path, ErrorCode::kMalformedInput));
          std::uint64_t payload = 0;
          if (!checked_mul(count, field.size, &payload) ||
              !fits_within(at, payload, header.var_length))
            return Status(ErrorCode::kMalformedInput,
                          "array payload out of range in '" + field.path + "'");
        }
        value = var + at;
      }
      store_raw(fixed + slot_offset, value);
    }
  }
  return static_cast<const void*>(fixed);
}

}  // namespace xmit::pbio
