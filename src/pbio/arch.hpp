// Architecture descriptor attached to every PBIO format.
//
// PBIO is "sender writes native, reader makes right": wire records mirror
// the sender's in-memory layout, and the receiver converts only when its
// own ArchInfo or structure layout differs. ArchInfo captures exactly the
// properties that layout and conversion depend on.
#pragma once

#include <cstdint>
#include <string>

#include "common/endian.hpp"

namespace xmit::pbio {

struct ArchInfo {
  ByteOrder byte_order = host_byte_order();
  std::uint8_t pointer_size = sizeof(void*);  // 4 or 8
  std::uint8_t long_size = sizeof(long);      // 4 or 8 (ILP32 vs LP64)
  // Natural alignment is capped at this (some ABIs align 8-byte scalars
  // to 4; x86-64 SysV aligns to 8).
  std::uint8_t max_align = 8;

  static const ArchInfo& host();

  bool operator==(const ArchInfo& other) const = default;

  std::string to_string() const;

  // Known foreign profiles used by tests and heterogeneity benches.
  static ArchInfo big_endian_64();   // e.g. SPARC V9 — the paper's testbed
  static ArchInfo big_endian_32();   // e.g. SPARC V8 / classic RISC
  static ArchInfo little_endian_32();// e.g. IA-32
};

}  // namespace xmit::pbio
