// Encoder: in-memory struct -> PBIO wire record.
//
// Construction compiles the format into a plan once; encode() is then a
// header write, one memcpy of the fixed section, and one append + slot
// patch per out-of-line field. Contiguous formats (no strings, no dynamic
// arrays) encode as a single memcpy — the property Figure 7/8 depend on.
#pragma once

#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "pbio/format.hpp"
#include "pbio/wire.hpp"

namespace xmit::pbio {

class Encoder {
 public:
  // `format` must describe the host architecture — encode reads live host
  // memory, so foreign-layout formats cannot drive it. (Foreign records
  // are produced by RecordBuilder, which writes wire bytes directly.)
  static Result<Encoder> make(FormatPtr format);

  const Format& format() const { return *format_; }

  // Appends one complete wire record for the struct at `record` to `out`.
  Status encode(const void* record, ByteBuffer& out) const;

  // Convenience: encode into a fresh buffer.
  Result<std::vector<std::uint8_t>> encode_to_vector(const void* record) const;

  // Exact encoded size for this record (header + fixed + variable),
  // matching what encode() will produce. Used by benches to report the
  // paper's "Encoded Size" column.
  Result<std::size_t> encoded_size(const void* record) const;

 private:
  explicit Encoder(FormatPtr format);

  // Reads the runtime element count of a dynamic array field from the
  // struct image; negative counts are rejected.
  static Result<std::uint64_t> read_count(const std::uint8_t* record,
                                          const FlatField& field);

  FormatPtr format_;
  std::vector<FlatField> var_fields_;  // strings + dynamic arrays only
};

}  // namespace xmit::pbio
