// Encoder: in-memory struct -> PBIO wire record.
//
// Construction *compiles* the format, the same way the decoder compiles
// marshal plans (DESIGN.md §5d/§5i): the fixed section becomes a flat
// program of ops in struct-offset order — coalesced copy spans taken
// straight from the caller's struct, and pointer-slot areas that the
// variable-field walk patches — plus the var-field program (strings and
// dynamic arrays, in flat-field order, which fixes the variable-section
// byte layout). encode() executes the program into a ByteBuffer;
// encode_iov() executes it as a writev-style gather list in which copy
// spans reference the caller's memory directly, so only the header and
// the pointer slots are ever copied into scratch — the fixed section of
// a wide struct ships with zero copies.
//
// The original per-field walk survives as encode_reference(), the oracle
// the differential tests compare the compiled program against; both
// produce byte-identical records.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "pbio/format.hpp"
#include "pbio/wire.hpp"

namespace xmit::pbio {

class Encoder {
 public:
  // `format` must describe the host architecture — encode reads live host
  // memory, so foreign-layout formats cannot drive it. (Foreign records
  // are produced by RecordBuilder, which writes wire bytes directly.)
  static Result<Encoder> make(FormatPtr format);

  const Format& format() const { return *format_; }

  // Appends one complete wire record for the struct at `record` to `out`.
  // Executes the compiled fixed-section program.
  Status encode(const void* record, ByteBuffer& out) const;

  // Reference encode: the original per-field walk (one memcpy of the whole
  // fixed section, then per-var-op slot patches). Byte-identical to
  // encode() by contract — kept as the oracle for the differential tests
  // and as the readable specification. Not a hot path.
  Status encode_reference(const void* record, ByteBuffer& out) const;

  // Gather-list encode: fills `slices` with spans whose concatenation is
  // the wire record, copying as little as possible. `scratch` and `slices`
  // are cleared first and may be reused across calls (steady-state calls
  // allocate nothing once their capacity has grown). The slices borrow
  // from `scratch`, from the caller's struct, and from static padding —
  // they are valid until the next encode_iov() on the same scratch, and
  // only while `record` is alive and unmodified.
  Status encode_iov(const void* record, ByteBuffer& scratch,
                    std::vector<IoSlice>& slices) const;

  // Convenience: encode into a fresh buffer.
  Result<std::vector<std::uint8_t>> encode_to_vector(const void* record) const;

  // Exact encoded size for this record (header + fixed + variable),
  // matching what encode() will produce. Used by benches to report the
  // paper's "Encoded Size" column.
  Result<std::size_t> encoded_size(const void* record) const;

  // Shape of the compiled fixed-section program, mirroring
  // Decoder::PlanStats: how many coalesced copy spans and slot areas the
  // compiler produced, and how many var ops execute per record.
  struct PlanStats {
    bool contiguous = false;    // no slots: single span from caller memory
    std::size_t copy_ops = 0;   // coalesced fixed-section spans
    std::size_t slot_ops = 0;   // pointer-slot areas (patched per record)
    std::size_t string_ops = 0;
    std::size_t dynamic_ops = 0;
    std::size_t total() const {
      return copy_ops + slot_ops + string_ops + dynamic_ops;
    }
  };
  PlanStats plan_stats() const;

  // One line per op ("copy struct@0 len=16"), fixed-section program first,
  // then the var program, in execution order.
  std::string plan_disassembly() const;

 private:
  // One out-of-line field, with everything encode needs precomputed so the
  // hot loop never consults the Format.
  struct VarOp {
    bool is_string = false;
    std::uint32_t offset = 0;      // first pointer slot in the struct
    std::uint32_t slot_count = 1;  // strings: slots in a fixed array
    std::uint32_t elem_size = 0;   // dynamic arrays: element size
    std::uint32_t align = 1;       // dynamic arrays: payload alignment
    std::uint32_t count_offset = 0;
    std::uint32_t count_size = 0;
    FieldKind count_kind = FieldKind::kInteger;
    std::uint32_t scratch_offset = 0;  // slot area in the iov slot block
    std::string path;  // diagnostics only
  };

  // One instruction of the compiled fixed-section program, in struct-
  // offset order; the spans tile [0, struct_size) exactly.
  struct FixedOp {
    bool is_slot = false;           // pointer-slot area vs raw copy span
    std::uint32_t offset = 0;       // struct offset
    std::uint32_t bytes = 0;
    std::uint32_t scratch_offset = 0;  // slots: position in the slot block
  };

  explicit Encoder(FormatPtr format);

  void compile_fixed_program();

  Result<std::uint64_t> read_var_count(const std::uint8_t* record,
                                       const VarOp& op) const;

  template <typename PatchSlot, typename EmitPayload, typename EmitPadding>
  Status run_var_program(const std::uint8_t* bytes, std::size_t fixed_size,
                         std::size_t& var_size, PatchSlot&& patch_slot,
                         EmitPayload&& emit_payload,
                         EmitPadding&& emit_padding) const;

  FormatPtr format_;
  std::vector<VarOp> program_;     // strings + dynamic arrays only
  std::vector<FixedOp> fixed_ops_;  // tiles the fixed section
  std::uint32_t slot_bytes_ = 0;    // total pointer-slot bytes
  bool spans_ok_ = false;  // fixed_ops_ tiles the struct exactly; when a
                           // format defeats the span builder (overlapping
                           // or unordered slots) every path falls back to
                           // the reference walk
};

}  // namespace xmit::pbio
