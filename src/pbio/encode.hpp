// Encoder: in-memory struct -> PBIO wire record.
//
// Construction compiles the format into a var-field program once; encode()
// is then a header write, one memcpy of the fixed section, and one append +
// slot patch per out-of-line field. Contiguous formats (no strings, no
// dynamic arrays) encode as a single memcpy — the property Figure 7/8
// depend on.
//
// encode_iov() goes one step further: instead of copying payload bytes into
// a buffer it emits a writev-style gather list. The fixed section of a
// contiguous format is transmitted straight from the caller's struct; only
// the 32-byte header (and, for var-bearing formats, the slot-patched fixed
// section) lives in the caller-supplied scratch buffer.
#pragma once

#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "pbio/format.hpp"
#include "pbio/wire.hpp"

namespace xmit::pbio {

class Encoder {
 public:
  // `format` must describe the host architecture — encode reads live host
  // memory, so foreign-layout formats cannot drive it. (Foreign records
  // are produced by RecordBuilder, which writes wire bytes directly.)
  static Result<Encoder> make(FormatPtr format);

  const Format& format() const { return *format_; }

  // Appends one complete wire record for the struct at `record` to `out`.
  Status encode(const void* record, ByteBuffer& out) const;

  // Gather-list encode: fills `slices` with spans whose concatenation is
  // the wire record, copying as little as possible. `scratch` and `slices`
  // are cleared first and may be reused across calls (steady-state calls
  // allocate nothing once their capacity has grown). The slices borrow
  // from `scratch`, from the caller's struct, and from static padding —
  // they are valid until the next encode_iov() on the same scratch, and
  // only while `record` is alive and unmodified.
  Status encode_iov(const void* record, ByteBuffer& scratch,
                    std::vector<IoSlice>& slices) const;

  // Convenience: encode into a fresh buffer.
  Result<std::vector<std::uint8_t>> encode_to_vector(const void* record) const;

  // Exact encoded size for this record (header + fixed + variable),
  // matching what encode() will produce. Used by benches to report the
  // paper's "Encoded Size" column.
  Result<std::size_t> encoded_size(const void* record) const;

 private:
  // One out-of-line field, with everything encode needs precomputed so the
  // hot loop never consults the Format.
  struct VarOp {
    bool is_string = false;
    std::uint32_t offset = 0;      // first pointer slot in the struct
    std::uint32_t slot_count = 1;  // strings: slots in a fixed array
    std::uint32_t elem_size = 0;   // dynamic arrays: element size
    std::uint32_t align = 1;       // dynamic arrays: payload alignment
    std::uint32_t count_offset = 0;
    std::uint32_t count_size = 0;
    FieldKind count_kind = FieldKind::kInteger;
    std::string path;  // diagnostics only
  };

  explicit Encoder(FormatPtr format);

  Result<std::uint64_t> read_var_count(const std::uint8_t* record,
                                       const VarOp& op) const;

  FormatPtr format_;
  std::vector<VarOp> program_;  // strings + dynamic arrays only
};

}  // namespace xmit::pbio
