#include "pbio/field.hpp"

#include "common/strings.hpp"

namespace xmit::pbio {

const char* field_kind_name(FieldKind kind) {
  switch (kind) {
    case FieldKind::kInteger: return "integer";
    case FieldKind::kUnsigned: return "unsigned integer";
    case FieldKind::kFloat: return "float";
    case FieldKind::kChar: return "char";
    case FieldKind::kBoolean: return "boolean";
    case FieldKind::kString: return "string";
    case FieldKind::kNested: return "nested";
  }
  return "unknown";
}

Result<FieldType> parse_field_type(std::string_view type_name) {
  std::string_view base = trim(type_name);
  ArraySpec array;

  // Peel one array suffix, if present.
  if (!base.empty() && base.back() == ']') {
    std::size_t open = base.rfind('[');
    if (open == std::string_view::npos)
      return Status(ErrorCode::kParseError,
                    "unbalanced ']' in type '" + std::string(type_name) + "'");
    std::string_view inside = trim(base.substr(open + 1, base.size() - open - 2));
    base = trim(base.substr(0, open));
    if (inside.empty())
      return Status(ErrorCode::kUnsupported,
                    "dynamic array '" + std::string(type_name) +
                        "' needs a size field name in brackets");
    bool numeric = true;
    for (char c : inside)
      if (!is_ascii_digit(c)) numeric = false;
    if (numeric) {
      auto count = parse_uint(inside);
      if (!count.is_ok() || count.value() == 0)
        return Status(ErrorCode::kParseError,
                      "bad array bound in '" + std::string(type_name) + "'");
      array.mode = ArrayMode::kFixed;
      array.fixed_count = static_cast<std::uint32_t>(count.value());
    } else {
      array.mode = ArrayMode::kDynamic;
      array.size_field = std::string(inside);
    }
  }
  if (base.empty())
    return Status(ErrorCode::kParseError,
                  "empty type name in '" + std::string(type_name) + "'");

  FieldType type;
  type.array = std::move(array);
  if (base == "integer" || base == "int") {
    type.kind = FieldKind::kInteger;
  } else if (base == "unsigned integer" || base == "unsigned") {
    type.kind = FieldKind::kUnsigned;
  } else if (base == "float" || base == "double") {
    // PBIO distinguishes float widths by the field's size, not its name.
    type.kind = FieldKind::kFloat;
  } else if (base == "char") {
    type.kind = FieldKind::kChar;
  } else if (base == "boolean") {
    type.kind = FieldKind::kBoolean;
  } else if (base == "string") {
    type.kind = FieldKind::kString;
  } else {
    type.kind = FieldKind::kNested;
    type.nested_format = std::string(base);
  }
  return type;
}

std::string format_field_type(const FieldType& type) {
  std::string out;
  switch (type.kind) {
    case FieldKind::kNested: out = type.nested_format; break;
    default: out = field_kind_name(type.kind); break;
  }
  switch (type.array.mode) {
    case ArrayMode::kNone: break;
    case ArrayMode::kFixed:
      out += "[" + std::to_string(type.array.fixed_count) + "]";
      break;
    case ArrayMode::kDynamic:
      out += "[" + type.array.size_field + "]";
      break;
  }
  return out;
}

Result<std::uint64_t> read_count_field(const std::uint8_t* image,
                                       std::uint32_t offset,
                                       std::uint32_t size, FieldKind kind,
                                       ByteOrder order, std::string_view path,
                                       ErrorCode negative_error) {
  const std::uint8_t* p = image + offset;
  std::uint64_t raw;
  switch (size) {
    case 1: raw = p[0]; break;
    case 2: raw = load_with_order<std::uint16_t>(p, order); break;
    case 4: raw = load_with_order<std::uint32_t>(p, order); break;
    case 8: raw = load_with_order<std::uint64_t>(p, order); break;
    default:
      return Status(ErrorCode::kInternal,
                    "bad count field size in '" + std::string(path) + "'");
  }
  if (kind == FieldKind::kUnsigned || kind == FieldKind::kBoolean ||
      kind == FieldKind::kChar)
    return raw;
  // Signed count: sign-extend from the field's width, reject negatives.
  std::int64_t value;
  switch (size) {
    case 1: value = static_cast<std::int8_t>(raw); break;
    case 2: value = static_cast<std::int16_t>(raw); break;
    case 4: value = static_cast<std::int32_t>(raw); break;
    default: value = static_cast<std::int64_t>(raw); break;
  }
  if (value < 0)
    return Status(negative_error,
                  "negative array count in '" + std::string(path) + "'");
  return static_cast<std::uint64_t>(value);
}

bool valid_size_for_kind(FieldKind kind, std::uint32_t size) {
  switch (kind) {
    case FieldKind::kInteger:
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean:
      return size == 1 || size == 2 || size == 4 || size == 8;
    case FieldKind::kFloat:
      return size == 4 || size == 8;
    case FieldKind::kChar:
      return size == 1;
    case FieldKind::kString:
      return size == 4 || size == 8;  // sizeof(char*) on the field's arch
    case FieldKind::kNested:
      return size > 0;
  }
  return false;
}

}  // namespace xmit::pbio
