#include "pbio/registry.hpp"

namespace xmit::pbio {

Result<FormatPtr> FormatRegistry::register_format(std::string name,
                                                  std::vector<IOField> fields,
                                                  std::uint32_t struct_size,
                                                  const ArchInfo& arch) {
  // Resolve nested references against already-registered formats.
  std::vector<FormatPtr> nested;
  for (const auto& field : fields) {
    XMIT_ASSIGN_OR_RETURN(auto type, parse_field_type(field.type_name));
    if (type.kind != FieldKind::kNested) continue;
    bool have = false;
    for (const auto& existing : nested)
      if (existing->name() == type.nested_format) have = true;
    if (have) continue;
    XMIT_ASSIGN_OR_RETURN(auto sub, by_name(type.nested_format));
    nested.push_back(std::move(sub));
  }
  XMIT_ASSIGN_OR_RETURN(
      auto format, Format::make(std::move(name), std::move(fields),
                                struct_size, arch, std::move(nested)));
  return adopt(std::move(format));
}

Result<FormatPtr> FormatRegistry::adopt(FormatPtr format) {
  if (!format)
    return Status(ErrorCode::kInvalidArgument, "null format");
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_id_.try_emplace(format->id(), format);
  if (!inserted) {
    // Same id means same canonical description: idempotent re-register.
    return it->second;
  }
  by_name_[format->name()] = format;
  return format;
}

Result<FormatPtr> FormatRegistry::by_id(FormatId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end())
    return Status(ErrorCode::kNotFound,
                  "no format with id " + std::to_string(id));
  return it->second;
}

Result<FormatPtr> FormatRegistry::by_name(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end())
    return Status(ErrorCode::kNotFound,
                  "no format named '" + std::string(name) + "'");
  return it->second;
}

std::size_t FormatRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

std::vector<FormatPtr> FormatRegistry::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FormatPtr> out;
  out.reserve(by_id_.size());
  for (const auto& [id, format] : by_id_) out.push_back(format);
  return out;
}

}  // namespace xmit::pbio
