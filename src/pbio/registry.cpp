#include "pbio/registry.hpp"

namespace xmit::pbio {

std::size_t FormatRegistry::shard_of_name(std::string_view name) {
  // FNV-1a 64, same dispersion the FormatId itself uses.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return static_cast<std::size_t>((h ^ (h >> 32)) & (kShardCount - 1));
}

Result<FormatPtr> FormatRegistry::register_format(std::string name,
                                                  std::vector<IOField> fields,
                                                  std::uint32_t struct_size,
                                                  const ArchInfo& arch) {
  // Resolve nested references against already-registered formats.
  std::vector<FormatPtr> nested;
  for (const auto& field : fields) {
    XMIT_ASSIGN_OR_RETURN(auto type, parse_field_type(field.type_name));
    if (type.kind != FieldKind::kNested) continue;
    bool have = false;
    for (const auto& existing : nested)
      if (existing->name() == type.nested_format) have = true;
    if (have) continue;
    XMIT_ASSIGN_OR_RETURN(auto sub, by_name(type.nested_format));
    nested.push_back(std::move(sub));
  }
  XMIT_ASSIGN_OR_RETURN(
      auto format, Format::make(std::move(name), std::move(fields),
                                struct_size, arch, std::move(nested)));
  return adopt(std::move(format));
}

void FormatRegistry::publish_locked(IdShard& shard) const {
  auto current = shard.snapshot.load(std::memory_order_relaxed);
  auto merged = current ? std::make_shared<IdTable>(*current)
                        : std::make_shared<IdTable>();
  merged->reserve(merged->size() + shard.delta.size());
  for (auto& [id, format] : shard.delta) merged->emplace(id, format);
  shard.delta.clear();
  shard.snapshot.store(std::move(merged), std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

Result<FormatPtr> FormatRegistry::adopt(FormatPtr format) {
  if (!format)
    return Status(ErrorCode::kInvalidArgument, "null format");
  const FormatId id = format->id();
  IdShard& shard = id_shards_[shard_of(id)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Same id means same canonical description: idempotent re-register.
    if (auto snapshot = shard.snapshot.load(std::memory_order_relaxed)) {
      auto it = snapshot->find(id);
      if (it != snapshot->end()) return it->second;
    }
    if (auto it = shard.delta.find(id); it != shard.delta.end())
      return it->second;
    shard.delta.emplace(id, format);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    if (shard.delta.size() >= kPublishThreshold) publish_locked(shard);
  }
  NameShard& names = name_shards_[shard_of_name(format->name())];
  {
    std::lock_guard<std::mutex> lock(names.mutex);
    names.names[format->name()] = format;
  }
  return format;
}

Result<FormatPtr> FormatRegistry::by_id(FormatId id) const {
  const IdShard& shard = id_shards_[shard_of(id)];
  // Fast path: the published snapshot, no lock. Steady-state decodes —
  // everything registered more than kPublishThreshold inserts ago — are
  // served here whatever the writers are doing.
  if (auto snapshot = shard.snapshot.load(std::memory_order_acquire)) {
    auto it = snapshot->find(id);
    if (it != snapshot->end()) {
      snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Slow path: formats registered in the last instant sit in the delta.
  // Under the writer lock the snapshot is stable, so re-checking it here
  // closes the race where a publish moved the id from delta to a fresh
  // snapshot between our lock-free load and this lock.
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.delta.find(id); it != shard.delta.end()) {
      delta_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    if (auto current = shard.snapshot.load(std::memory_order_relaxed)) {
      if (auto it = current->find(id); it != current->end()) {
        delta_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
  }
  return Status(ErrorCode::kNotFound,
                "no format with id " + std::to_string(id));
}

Result<FormatPtr> FormatRegistry::by_name(std::string_view name) const {
  const NameShard& shard = name_shards_[shard_of_name(name)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.names.find(std::string(name));
  if (it == shard.names.end())
    return Status(ErrorCode::kNotFound,
                  "no format named '" + std::string(name) + "'");
  return it->second;
}

std::size_t FormatRegistry::size() const {
  std::size_t total = 0;
  for (const IdShard& shard : id_shards_)
    total += shard.count.load(std::memory_order_relaxed);
  return total;
}

std::vector<FormatPtr> FormatRegistry::all() const {
  std::vector<FormatPtr> out;
  out.reserve(size());
  for (const IdShard& shard : id_shards_) {
    // Snapshot and delta must be read under the shard's writer lock so a
    // concurrent publish cannot move entries between them mid-read
    // (dropping or duplicating formats). The lock is held only for the
    // copy and never blocks the lock-free snapshot readers a live decode
    // uses — only a registration into this shard waits.
    std::shared_ptr<const IdTable> snapshot;
    std::vector<FormatPtr> delta;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      snapshot = shard.snapshot.load(std::memory_order_relaxed);
      delta.reserve(shard.delta.size());
      for (const auto& [id, format] : shard.delta) delta.push_back(format);
    }
    if (snapshot)
      for (const auto& [id, format] : *snapshot) out.push_back(format);
    for (auto& format : delta) out.push_back(std::move(format));
  }
  return out;
}

FormatRegistry::Stats FormatRegistry::stats() const {
  Stats out;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    out.shard_sizes[i] = id_shards_[i].count.load(std::memory_order_relaxed);
    out.formats += out.shard_sizes[i];
  }
  out.snapshot_publishes = publishes_.load(std::memory_order_relaxed);
  out.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  out.delta_hits = delta_hits_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xmit::pbio
