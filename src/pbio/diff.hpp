// Format diffing: what changed between two versions of a format, and
// will the receiver's evolution contract cope?
//
// The paper's centralized-evolution story ("changes to the message
// formats used by distributed programs can be centralized") needs an
// operator answer to "what does this schema edit do to deployed
// components?". diff_formats() compares two formats field-by-field using
// the same criteria as the Decoder's conversion planner, so `convertible`
// is authoritative: records of `from` decode into `to` exactly when it is
// true.
#pragma once

#include <string>
#include <vector>

#include "pbio/format.hpp"

namespace xmit::pbio {

struct FieldChange {
  enum class Kind : std::uint8_t {
    kAdded,         // in `to` only: zero-filled on decode (legal evolution)
    kRemoved,       // in `from` only: skipped on decode (legal evolution)
    kRetyped,       // kind changed within scalar kinds (converted)
    kResized,       // width changed (converted)
    kMoved,         // offset changed (handled by name matching)
    kShapeChanged,  // scalar <-> array or string <-> non-string (NOT legal)
  };

  Kind kind;
  std::string path;
  std::string detail;  // human-readable, e.g. "integer:4 -> integer:8"
};

const char* field_change_kind_name(FieldChange::Kind kind);

struct FormatDiff {
  std::vector<FieldChange> changes;
  bool identical_layout = false;  // byte-for-byte same (fast decode path)
  bool convertible = false;       // records of `from` decode into `to`

  // Multi-line human-readable report (empty-change diffs say so).
  std::string to_string() const;
};

FormatDiff diff_formats(const Format& from, const Format& to);

}  // namespace xmit::pbio
