// Dynamic (value-level) record access.
//
// RecordBuilder writes a complete wire record for *any* format — including
// formats describing foreign architectures (big-endian, 4-byte pointers,
// different layouts). That makes it both a convenient schema-driven API
// for callers that have no compiled struct, and the test rig that stands
// in for a real heterogeneous sender: a record built against a SPARC-style
// format is byte-identical to what a SPARC sender would emit.
//
// RecordReader is the inverse: field-by-path access to a wire record using
// the sender's format metadata, no receiver struct required. This is the
// paper's "schema-checking tools may be applied to live messages" hook.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "pbio/format.hpp"
#include "pbio/wire.hpp"

namespace xmit::pbio {

class RecordBuilder {
 public:
  explicit RecordBuilder(FormatPtr format);

  // Scalar setters. `path` addresses a flattened field ("coords.x").
  Status set_int(std::string_view path, std::int64_t value);
  Status set_uint(std::string_view path, std::uint64_t value);
  Status set_float(std::string_view path, double value);
  Status set_bool(std::string_view path, bool value);
  Status set_char(std::string_view path, char value);
  Status set_string(std::string_view path, std::string_view value);

  // Array setters work for both fixed arrays (length must match the
  // declared bound) and dynamic arrays (length becomes the run-time count;
  // the size field is filled in automatically).
  Status set_int_array(std::string_view path, std::span<const std::int64_t> values);
  Status set_float_array(std::string_view path, std::span<const double> values);

  // Produce the wire record. Unset scalar fields encode as zero; unset
  // strings/dynamic arrays encode as null.
  Result<std::vector<std::uint8_t>> build() const;

 private:
  using Value = std::variant<std::int64_t, std::uint64_t, double, std::string,
                             std::vector<std::int64_t>, std::vector<double>>;

  Result<const FlatField*> lookup(std::string_view path) const;
  Status set_scalar(std::string_view path, Value value);

  FormatPtr format_;
  std::map<std::string, Value, std::less<>> values_;
};

class RecordReader {
 public:
  // `bytes` must be a complete record whose header matches `format`'s id.
  static Result<RecordReader> make(std::span<const std::uint8_t> bytes,
                                   FormatPtr format);

  const Format& format() const { return *format_; }

  Result<std::int64_t> get_int(std::string_view path) const;
  Result<std::uint64_t> get_uint(std::string_view path) const;
  Result<double> get_float(std::string_view path) const;
  Result<std::string> get_string(std::string_view path) const;

  // Dynamic or fixed arrays, converted element-wise.
  Result<std::vector<std::int64_t>> get_int_array(std::string_view path) const;
  Result<std::vector<double>> get_float_array(std::string_view path) const;

  // Run-time element count of an array field (fixed bound for kFixed).
  Result<std::uint64_t> array_length(std::string_view path) const;

 private:
  RecordReader(std::span<const std::uint8_t> bytes, FormatPtr format,
               WireHeader header)
      : bytes_(bytes), format_(std::move(format)), header_(header) {}

  Result<const FlatField*> lookup(std::string_view path) const;
  const std::uint8_t* fixed() const { return bytes_.data() + WireHeader::kSize; }
  const std::uint8_t* var() const { return fixed() + header_.fixed_length; }
  Result<std::uint64_t> dynamic_count(const FlatField& field) const;
  Result<std::uint64_t> payload_offset(const FlatField& field,
                                       std::uint64_t payload_size) const;

  std::span<const std::uint8_t> bytes_;
  FormatPtr format_;
  WireHeader header_;
};

}  // namespace xmit::pbio
