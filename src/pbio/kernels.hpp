// Bulk marshal kernels: the element-transfer primitives a compiled
// conversion plan executes. Unlike the load_scalar/store_scalar reference
// interpreter (pbio/scalar.hpp), these are infallible by contract — every
// (kind, size) pair is validated once at plan-build time, so the inner
// loops carry no Result plumbing and no per-element dispatch: each
// (source type, destination type) combination instantiates one fully-typed
// loop the compiler can unroll and vectorize.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/endian.hpp"
#include "pbio/field.hpp"

namespace xmit::pbio {

// Byte-reverses `count` elements of `width` bytes (2, 4 or 8) from `src`
// to `dst`. Bit-preserving: NaN payloads and non-canonical booleans pass
// through untouched, which is why the planner only emits swap ops for
// integer/unsigned/float fields of equal width (booleans must normalize
// and go through convert_elements instead).
void swap_elements(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t count, std::uint32_t width);

// General element conversion: width changes (sign/zero-extending or
// truncating per the source kind), float<->double, boolean normalization,
// and byte-order correction, for `count` elements. Semantics match the
// scalar reference interpreter exactly: each element is normalized to a
// 64-bit signed / 64-bit unsigned / double intermediate chosen by the
// source kind and re-materialized at the destination (kind, size).
// Destination bytes are written in host order.
//
// Preconditions (enforced by the plan builder, not here): both (kind,
// size) pairs satisfy valid_size_for_kind and neither kind is kString or
// kNested.
void convert_elements(std::uint8_t* dst, FieldKind dst_kind,
                      std::uint32_t dst_size, const std::uint8_t* src,
                      FieldKind src_kind, std::uint32_t src_size,
                      std::size_t count, ByteOrder src_order);

}  // namespace xmit::pbio
