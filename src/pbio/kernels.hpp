// Bulk marshal kernels: the element-transfer primitives a compiled
// conversion plan executes. Unlike the load_scalar/store_scalar reference
// interpreter (pbio/scalar.hpp), these are infallible by contract — every
// (kind, size) pair is validated once at plan-build time, so the inner
// loops carry no Result plumbing and no per-element dispatch: each
// (source type, destination type) combination instantiates one fully-typed
// loop the compiler can unroll and vectorize.
//
// The swap and fused-conversion kernels additionally carry hand-written
// 128-bit SIMD main loops (pbio/simd.hpp: SSE2 / NEON, scalar fallback at
// build and run time); their scalar tails replicate the reference
// interpreter exactly, so every variant is bit-identical to
// decode_reference() — the differential tests prove it with the toggle in
// both positions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/endian.hpp"
#include "pbio/field.hpp"

namespace xmit::pbio {

// The widths the byte-swap kernel implements. The plan builder checks
// this before it emits a swap op and fails the plan with a typed error
// otherwise; swap_elements() itself aborts on an unsupported width —
// reaching it with one is a planner bug, never a data-dependent state.
inline bool swap_width_supported(std::uint32_t width) {
  return width == 2 || width == 4 || width == 8;
}

// Byte-reverses `count` elements of `width` bytes (2, 4 or 8) from `src`
// to `dst`. Bit-preserving: NaN payloads and non-canonical booleans pass
// through untouched, which is why the planner only emits swap ops for
// integer/unsigned/float fields of equal width (booleans must normalize
// and go through convert_elements instead). Widths outside
// swap_width_supported() abort the process.
void swap_elements(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t count, std::uint32_t width);

// The conversions common enough to earn a fused kernel: one pass that
// byte-swaps (optionally) and widens/narrows in vector registers instead
// of round-tripping every element through the generic 64-bit
// intermediate. Selected by the *source* kind: sign- vs zero-extension
// follows the sender's declaration, truncation is sign-agnostic.
enum class FusedKind : std::uint8_t {
  kWidenI32ToI64,   // sign-extend int32 -> 64-bit integer
  kWidenU32ToU64,   // zero-extend uint32 -> 64-bit integer
  kNarrow64To32,    // truncate 64-bit integer -> 32-bit integer
  kWidenF32ToF64,   // float -> double (exact)
  kNarrowF64ToF32,  // double -> float (round to nearest-even)
};

const char* fused_kind_name(FusedKind kind);

// True when the (kind, size) pair has a fused kernel, i.e. when
// convert_fused(dst, *kind, ...) is bit-identical to convert_elements()
// for this shape. Booleans never qualify (they normalize to 0/1), nor do
// int<->float changes or width-preserving moves (those are swap/copy).
bool fused_shape(FieldKind src_kind, std::uint32_t src_size,
                 FieldKind dst_kind, std::uint32_t dst_size,
                 FusedKind* kind);

// Runs one fused conversion over `count` elements. `swap_src` byte-
// reverses each source element (at the source width) before converting —
// the cross-endian case the plan coalescer targets. Destination bytes
// are written in host order.
void convert_fused(std::uint8_t* dst, FusedKind kind,
                   const std::uint8_t* src, std::size_t count,
                   bool swap_src);

// General element conversion: width changes (sign/zero-extending or
// truncating per the source kind), float<->double, boolean normalization,
// and byte-order correction, for `count` elements. Semantics match the
// scalar reference interpreter exactly: each element is normalized to a
// 64-bit signed / 64-bit unsigned / double intermediate chosen by the
// source kind and re-materialized at the destination (kind, size).
// Destination bytes are written in host order.
//
// Preconditions (enforced by the plan builder, not here): both (kind,
// size) pairs satisfy valid_size_for_kind and neither kind is kString or
// kNested.
void convert_elements(std::uint8_t* dst, FieldKind dst_kind,
                      std::uint32_t dst_size, const std::uint8_t* src,
                      FieldKind src_kind, std::uint32_t src_size,
                      std::size_t count, ByteOrder src_order);

}  // namespace xmit::pbio
