#include "pbio/batch.hpp"

#include <limits>

namespace xmit::pbio {

BatchDecoder::BatchDecoder(const Decoder& decoder, std::size_t workers)
    : decoder_(&decoder),
      workers_(workers == 0 ? 1 : (workers > kMaxWorkers ? kMaxWorkers
                                                         : workers)) {
  arenas_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i)
    arenas_.push_back(std::make_unique<Arena>());
  first_error_ = Status::ok();
  if (workers_ == 1) return;  // single worker decodes on the caller thread
  threads_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

BatchDecoder::~BatchDecoder() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void BatchDecoder::record_error(std::size_t index, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_.ok() || index < first_error_index_) {
    first_error_ = std::move(status);
    first_error_index_ = index;
  }
}

void BatchDecoder::run_worker(std::size_t worker_index) {
  Arena& arena = *arenas_[worker_index];
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch_count_) return;
    Status status = decoder_->decode(batch_reqs_[i].bytes, *batch_receiver_,
                                     batch_reqs_[i].out, arena);
    if (!status.ok()) record_error(i, std::move(status));
  }
}

void BatchDecoder::worker_main(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    run_worker(worker_index);
    lock.lock();
    if (++workers_done_ == workers_) cv_done_.notify_all();
  }
}

Status BatchDecoder::decode_batch(std::span<const Request> requests,
                                  const Format& receiver) {
  for (auto& arena : arenas_) arena->rewind();
  if (requests.empty()) return Status::ok();
  ++batches_;
  records_decoded_ += requests.size();

  if (workers_ == 1 || requests.size() == 1) {
    // Too little work to amortize a wake-up: decode on the caller thread.
    Status first = Status::ok();
    Arena& arena = *arenas_[0];
    for (const Request& request : requests) {
      Status status =
          decoder_->decode(request.bytes, receiver, request.out, arena);
      if (!status.ok() && first.ok()) first = std::move(status);
    }
    return first;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_reqs_ = requests.data();
    batch_count_ = requests.size();
    batch_receiver_ = &receiver;
    first_error_ = Status::ok();
    first_error_index_ = std::numeric_limits<std::size_t>::max();
    cursor_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++generation_;
  }
  cv_work_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return workers_done_ == workers_; });
  batch_reqs_ = nullptr;
  batch_receiver_ = nullptr;
  return std::move(first_error_);
}

Status BatchDecoder::decode_batch(
    std::span<const std::span<const std::uint8_t>> records,
    const Format& receiver, void* out, std::size_t stride) {
  if (out == nullptr && !records.empty())
    return Status(ErrorCode::kInvalidArgument, "null batch output");
  if (stride < receiver.struct_size())
    return Status(ErrorCode::kInvalidArgument,
                  "batch stride " + std::to_string(stride) +
                      " smaller than receiver struct (" +
                      std::to_string(receiver.struct_size()) + " bytes)");
  stream_requests_.clear();
  stream_requests_.reserve(records.size());
  auto* base = static_cast<std::uint8_t*>(out);
  for (std::size_t i = 0; i < records.size(); ++i)
    stream_requests_.push_back({records[i], base + i * stride});
  return decode_batch(
      std::span<const Request>(stream_requests_.data(),
                               stream_requests_.size()),
      receiver);
}

Result<std::uint64_t> BatchDecoder::decode_stream(const NextRecord& next,
                                                  const Format& receiver,
                                                  const Deliver& deliver,
                                                  std::size_t window) {
  if (window == 0) window = workers_ * 4;
  const std::size_t stride =
      align_up(std::size_t(receiver.struct_size() == 0
                               ? 1
                               : receiver.struct_size()),
               alignof(std::max_align_t));
  if (stream_buffers_.size() < window) stream_buffers_.resize(window);
  const std::size_t cells =
      (window * stride + sizeof(std::max_align_t) - 1) /
      sizeof(std::max_align_t);
  if (stream_outs_.size() < cells) stream_outs_.resize(cells);
  auto* out_base = reinterpret_cast<std::uint8_t*>(stream_outs_.data());

  std::uint64_t delivered = 0;
  bool end_of_stream = false;
  while (!end_of_stream) {
    stream_requests_.clear();
    while (stream_requests_.size() < window) {
      std::vector<std::uint8_t>& buffer =
          stream_buffers_[stream_requests_.size()];
      XMIT_ASSIGN_OR_RETURN(bool more, next(&buffer));
      if (!more) {
        end_of_stream = true;
        break;
      }
      stream_requests_.push_back(
          {std::span<const std::uint8_t>(buffer.data(), buffer.size()),
           out_base + stream_requests_.size() * stride});
    }
    if (stream_requests_.empty()) break;
    // decode_batch(Request...) reuses stream_requests_ only through the
    // caller-facing stride overload, never here, so passing our own
    // vector down is safe.
    XMIT_RETURN_IF_ERROR(decode_batch(
        std::span<const Request>(stream_requests_.data(),
                                 stream_requests_.size()),
        receiver));
    for (std::size_t i = 0; i < stream_requests_.size(); ++i) {
      XMIT_RETURN_IF_ERROR(deliver(delivered, stream_requests_[i].out));
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace xmit::pbio
