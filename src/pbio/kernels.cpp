#include "pbio/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pbio/simd.hpp"

namespace xmit::pbio {
namespace simd {
namespace {

bool env_default() {
  const char* value = std::getenv("XMIT_SIMD");
  if (value == nullptr) return true;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
           std::strcmp(value, "OFF") == 0 ||
           std::strcmp(value, "false") == 0 ||
           std::strcmp(value, "no") == 0);
}

std::atomic<bool>& runtime_flag() {
  static std::atomic<bool> flag{env_default()};
  return flag;
}

}  // namespace

const char* backend() {
#if XMIT_SIMD_SSE2
  return "sse2";
#elif XMIT_SIMD_NEON
  return "neon";
#else
  return "scalar";
#endif
}

bool enabled() {
  return compiled_in() && runtime_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  runtime_flag().store(on, std::memory_order_relaxed);
}

}  // namespace simd

namespace {

template <typename U>
inline U load_u(const std::uint8_t* p, bool swap) {
  U v = load_raw<U>(p);
  return swap ? bswap(v) : v;
}

// Invokes `fn` with a loader lambda `const std::uint8_t* -> Interm`, where
// Interm (int64/uint64/double) is picked by the source kind — the same
// normalization ScalarValue performs, minus the variant and the Result.
template <typename Fn>
inline void with_loader(FieldKind kind, std::uint32_t size, bool swap,
                        Fn&& fn) {
  switch (kind) {
    case FieldKind::kFloat:
      if (size == 4)
        fn([swap](const std::uint8_t* p) -> double {
          return bits_to_float(load_u<std::uint32_t>(p, swap));
        });
      else
        fn([swap](const std::uint8_t* p) -> double {
          return bits_to_double(load_u<std::uint64_t>(p, swap));
        });
      return;
    case FieldKind::kInteger:
      switch (size) {
        case 1:
          fn([](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int8_t>(p[0]);
          });
          return;
        case 2:
          fn([swap](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int16_t>(load_u<std::uint16_t>(p, swap));
          });
          return;
        case 4:
          fn([swap](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int32_t>(load_u<std::uint32_t>(p, swap));
          });
          return;
        default:
          fn([swap](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int64_t>(load_u<std::uint64_t>(p, swap));
          });
          return;
      }
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean: {
      const bool normalize = kind == FieldKind::kBoolean;
      switch (size) {
        case 1:
          fn([normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = p[0];
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
        case 2:
          fn([swap, normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = load_u<std::uint16_t>(p, swap);
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
        case 4:
          fn([swap, normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = load_u<std::uint32_t>(p, swap);
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
        default:
          fn([swap, normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = load_u<std::uint64_t>(p, swap);
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
      }
    }
    case FieldKind::kChar:
    default:
      fn([](const std::uint8_t* p) -> std::uint64_t { return p[0]; });
      return;
  }
}

// Invokes `fn` with a storer lambda `(std::uint8_t*, Interm)`. The casts
// inside replicate ScalarValue::as_signed/as_unsigned/as_real for
// whichever intermediate type the loader produced.
template <typename Fn>
inline void with_storer(FieldKind kind, std::uint32_t size, Fn&& fn) {
  switch (kind) {
    case FieldKind::kFloat:
      if (size == 4)
        fn([](std::uint8_t* p, auto v) {
          store_raw(p, float_bits(static_cast<float>(static_cast<double>(v))));
        });
      else
        fn([](std::uint8_t* p, auto v) {
          store_raw(p, double_bits(static_cast<double>(v)));
        });
      return;
    case FieldKind::kInteger:
      switch (size) {
        case 1:
          fn([](std::uint8_t* p, auto v) {
            p[0] = static_cast<std::uint8_t>(
                static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
          });
          return;
        case 2:
          fn([](std::uint8_t* p, auto v) {
            store_raw(p, static_cast<std::uint16_t>(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(v))));
          });
          return;
        case 4:
          fn([](std::uint8_t* p, auto v) {
            store_raw(p, static_cast<std::uint32_t>(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(v))));
          });
          return;
        default:
          fn([](std::uint8_t* p, auto v) {
            store_raw(p,
                      static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
          });
          return;
      }
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean: {
      const bool normalize = kind == FieldKind::kBoolean;
      switch (size) {
        case 1:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            p[0] = static_cast<std::uint8_t>(bits);
          });
          return;
        case 2:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            store_raw(p, static_cast<std::uint16_t>(bits));
          });
          return;
        case 4:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            store_raw(p, static_cast<std::uint32_t>(bits));
          });
          return;
        default:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            store_raw(p, bits);
          });
          return;
      }
    }
    case FieldKind::kChar:
    default:
      fn([](std::uint8_t* p, auto v) {
        p[0] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(v));
      });
      return;
  }
}

}  // namespace

void swap_elements(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t count, std::uint32_t width) {
  switch (width) {
    case 2:
#if XMIT_SIMD_HAVE
      if (simd::enabled()) {
        // 4 blocks per iteration: the shift/or swap chains are
        // latency-bound, so independent blocks in flight hide them.
        for (; count >= 32; count -= 32, src += 64, dst += 64) {
          simd::swap16_block(dst, src);
          simd::swap16_block(dst + 16, src + 16);
          simd::swap16_block(dst + 32, src + 32);
          simd::swap16_block(dst + 48, src + 48);
        }
        for (; count >= 8; count -= 8, src += 16, dst += 16)
          simd::swap16_block(dst, src);
      }
#endif
      for (std::size_t i = 0; i < count; ++i)
        store_raw(dst + i * 2, bswap16(load_raw<std::uint16_t>(src + i * 2)));
      return;
    case 4:
#if XMIT_SIMD_HAVE
      if (simd::enabled()) {
        for (; count >= 16; count -= 16, src += 64, dst += 64) {
          simd::swap32_block(dst, src);
          simd::swap32_block(dst + 16, src + 16);
          simd::swap32_block(dst + 32, src + 32);
          simd::swap32_block(dst + 48, src + 48);
        }
        for (; count >= 4; count -= 4, src += 16, dst += 16)
          simd::swap32_block(dst, src);
      }
#endif
      for (std::size_t i = 0; i < count; ++i)
        store_raw(dst + i * 4, bswap32(load_raw<std::uint32_t>(src + i * 4)));
      return;
    case 8:
#if XMIT_SIMD_HAVE
      if (simd::enabled()) {
        for (; count >= 8; count -= 8, src += 64, dst += 64) {
          simd::swap64_block(dst, src);
          simd::swap64_block(dst + 16, src + 16);
          simd::swap64_block(dst + 32, src + 32);
          simd::swap64_block(dst + 48, src + 48);
        }
        for (; count >= 2; count -= 2, src += 16, dst += 16)
          simd::swap64_block(dst, src);
      }
#endif
      for (std::size_t i = 0; i < count; ++i)
        store_raw(dst + i * 8, bswap64(load_raw<std::uint64_t>(src + i * 8)));
      return;
    default:
      // Unreachable through a verified plan: the plan builder rejects any
      // swap whose width fails swap_width_supported() before the op is
      // admitted. Ending up here means memory corruption or a planner bug
      // — silently copying (the old behavior) would emit garbage records,
      // so die loudly instead.
      std::fprintf(stderr,
                   "xmit/pbio: swap_elements called with unsupported width "
                   "%u (planner invariant violated)\n",
                   width);
      std::abort();
  }
}

const char* fused_kind_name(FusedKind kind) {
  switch (kind) {
    case FusedKind::kWidenI32ToI64: return "widen-i32";
    case FusedKind::kWidenU32ToU64: return "widen-u32";
    case FusedKind::kNarrow64To32: return "narrow-64";
    case FusedKind::kWidenF32ToF64: return "widen-f32";
    case FusedKind::kNarrowF64ToF32: return "narrow-f64";
  }
  return "?";
}

bool fused_shape(FieldKind src_kind, std::uint32_t src_size,
                 FieldKind dst_kind, std::uint32_t dst_size,
                 FusedKind* kind) {
  const bool src_int =
      src_kind == FieldKind::kInteger || src_kind == FieldKind::kUnsigned;
  const bool dst_int =
      dst_kind == FieldKind::kInteger || dst_kind == FieldKind::kUnsigned;
  FusedKind picked;
  if (src_int && dst_int && src_size == 4 && dst_size == 8) {
    picked = src_kind == FieldKind::kInteger ? FusedKind::kWidenI32ToI64
                                             : FusedKind::kWidenU32ToU64;
  } else if (src_int && dst_int && src_size == 8 && dst_size == 4) {
    picked = FusedKind::kNarrow64To32;
  } else if (src_kind == FieldKind::kFloat && dst_kind == FieldKind::kFloat &&
             src_size == 4 && dst_size == 8) {
    picked = FusedKind::kWidenF32ToF64;
  } else if (src_kind == FieldKind::kFloat && dst_kind == FieldKind::kFloat &&
             src_size == 8 && dst_size == 4) {
    picked = FusedKind::kNarrowF64ToF32;
  } else {
    return false;
  }
  if (kind != nullptr) *kind = picked;
  return true;
}

void convert_fused(std::uint8_t* dst, FusedKind kind,
                   const std::uint8_t* src, std::size_t count,
                   bool swap_src) {
  // Each case: SIMD main loop over whole 128-bit blocks, then a scalar
  // tail that mirrors the reference interpreter element for element.
  switch (kind) {
    case FusedKind::kWidenI32ToI64:
#if XMIT_SIMD_HAVE
      if (simd::enabled())
        for (; count >= 4; count -= 4, src += 16, dst += 32)
          simd::widen_i32_block(dst, src, swap_src);
#endif
      for (; count > 0; --count, src += 4, dst += 8) {
        std::uint32_t u = load_u<std::uint32_t>(src, swap_src);
        store_raw(dst, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                           static_cast<std::int32_t>(u))));
      }
      return;
    case FusedKind::kWidenU32ToU64:
#if XMIT_SIMD_HAVE
      if (simd::enabled())
        for (; count >= 4; count -= 4, src += 16, dst += 32)
          simd::widen_u32_block(dst, src, swap_src);
#endif
      for (; count > 0; --count, src += 4, dst += 8) {
        store_raw(dst,
                  static_cast<std::uint64_t>(load_u<std::uint32_t>(src, swap_src)));
      }
      return;
    case FusedKind::kNarrow64To32:
#if XMIT_SIMD_HAVE
      if (simd::enabled())
        for (; count >= 4; count -= 4, src += 32, dst += 16)
          simd::narrow_64_block(dst, src, swap_src);
#endif
      for (; count > 0; --count, src += 8, dst += 4) {
        store_raw(dst, static_cast<std::uint32_t>(
                           load_u<std::uint64_t>(src, swap_src)));
      }
      return;
    case FusedKind::kWidenF32ToF64:
#if XMIT_SIMD_HAVE
      if (simd::enabled())
        for (; count >= 4; count -= 4, src += 16, dst += 32)
          simd::widen_f32_block(dst, src, swap_src);
#endif
      for (; count > 0; --count, src += 4, dst += 8) {
        const double v = bits_to_float(load_u<std::uint32_t>(src, swap_src));
        store_raw(dst, double_bits(v));
      }
      return;
    case FusedKind::kNarrowF64ToF32:
#if XMIT_SIMD_HAVE
      if (simd::enabled())
        for (; count >= 4; count -= 4, src += 32, dst += 16)
          simd::narrow_f64_block(dst, src, swap_src);
#endif
      for (; count > 0; --count, src += 8, dst += 4) {
        const double v = bits_to_double(load_u<std::uint64_t>(src, swap_src));
        store_raw(dst, float_bits(static_cast<float>(v)));
      }
      return;
  }
}

void convert_elements(std::uint8_t* dst, FieldKind dst_kind,
                      std::uint32_t dst_size, const std::uint8_t* src,
                      FieldKind src_kind, std::uint32_t src_size,
                      std::size_t count, ByteOrder src_order) {
  const bool swap = src_order != host_byte_order();
  // Shapes with a fused kernel take it even when the caller did not go
  // through a fused plan op (e.g. reference-built tools): the fused path
  // is bit-identical by contract.
  FusedKind fused;
  if (fused_shape(src_kind, src_size, dst_kind, dst_size, &fused)) {
    convert_fused(dst, fused, src, count, swap);
    return;
  }
  with_loader(src_kind, src_size, swap, [&](auto load) {
    with_storer(dst_kind, dst_size, [&](auto store) {
      for (std::size_t i = 0; i < count; ++i)
        store(dst + i * std::size_t(dst_size),
              load(src + i * std::size_t(src_size)));
    });
  });
}

}  // namespace xmit::pbio
