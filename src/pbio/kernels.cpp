#include "pbio/kernels.hpp"

#include <cstring>

namespace xmit::pbio {
namespace {

template <typename U>
inline U load_u(const std::uint8_t* p, bool swap) {
  U v = load_raw<U>(p);
  return swap ? bswap(v) : v;
}

// Invokes `fn` with a loader lambda `const std::uint8_t* -> Interm`, where
// Interm (int64/uint64/double) is picked by the source kind — the same
// normalization ScalarValue performs, minus the variant and the Result.
template <typename Fn>
inline void with_loader(FieldKind kind, std::uint32_t size, bool swap,
                        Fn&& fn) {
  switch (kind) {
    case FieldKind::kFloat:
      if (size == 4)
        fn([swap](const std::uint8_t* p) -> double {
          return bits_to_float(load_u<std::uint32_t>(p, swap));
        });
      else
        fn([swap](const std::uint8_t* p) -> double {
          return bits_to_double(load_u<std::uint64_t>(p, swap));
        });
      return;
    case FieldKind::kInteger:
      switch (size) {
        case 1:
          fn([](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int8_t>(p[0]);
          });
          return;
        case 2:
          fn([swap](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int16_t>(load_u<std::uint16_t>(p, swap));
          });
          return;
        case 4:
          fn([swap](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int32_t>(load_u<std::uint32_t>(p, swap));
          });
          return;
        default:
          fn([swap](const std::uint8_t* p) -> std::int64_t {
            return static_cast<std::int64_t>(load_u<std::uint64_t>(p, swap));
          });
          return;
      }
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean: {
      const bool normalize = kind == FieldKind::kBoolean;
      switch (size) {
        case 1:
          fn([normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = p[0];
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
        case 2:
          fn([swap, normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = load_u<std::uint16_t>(p, swap);
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
        case 4:
          fn([swap, normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = load_u<std::uint32_t>(p, swap);
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
        default:
          fn([swap, normalize](const std::uint8_t* p) -> std::uint64_t {
            std::uint64_t v = load_u<std::uint64_t>(p, swap);
            return normalize ? (v ? 1 : 0) : v;
          });
          return;
      }
    }
    case FieldKind::kChar:
    default:
      fn([](const std::uint8_t* p) -> std::uint64_t { return p[0]; });
      return;
  }
}

// Invokes `fn` with a storer lambda `(std::uint8_t*, Interm)`. The casts
// inside replicate ScalarValue::as_signed/as_unsigned/as_real for
// whichever intermediate type the loader produced.
template <typename Fn>
inline void with_storer(FieldKind kind, std::uint32_t size, Fn&& fn) {
  switch (kind) {
    case FieldKind::kFloat:
      if (size == 4)
        fn([](std::uint8_t* p, auto v) {
          store_raw(p, float_bits(static_cast<float>(static_cast<double>(v))));
        });
      else
        fn([](std::uint8_t* p, auto v) {
          store_raw(p, double_bits(static_cast<double>(v)));
        });
      return;
    case FieldKind::kInteger:
      switch (size) {
        case 1:
          fn([](std::uint8_t* p, auto v) {
            p[0] = static_cast<std::uint8_t>(
                static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
          });
          return;
        case 2:
          fn([](std::uint8_t* p, auto v) {
            store_raw(p, static_cast<std::uint16_t>(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(v))));
          });
          return;
        case 4:
          fn([](std::uint8_t* p, auto v) {
            store_raw(p, static_cast<std::uint32_t>(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(v))));
          });
          return;
        default:
          fn([](std::uint8_t* p, auto v) {
            store_raw(p,
                      static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
          });
          return;
      }
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean: {
      const bool normalize = kind == FieldKind::kBoolean;
      switch (size) {
        case 1:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            p[0] = static_cast<std::uint8_t>(bits);
          });
          return;
        case 2:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            store_raw(p, static_cast<std::uint16_t>(bits));
          });
          return;
        case 4:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            store_raw(p, static_cast<std::uint32_t>(bits));
          });
          return;
        default:
          fn([normalize](std::uint8_t* p, auto v) {
            std::uint64_t bits = static_cast<std::uint64_t>(v);
            if (normalize) bits = bits ? 1 : 0;
            store_raw(p, bits);
          });
          return;
      }
    }
    case FieldKind::kChar:
    default:
      fn([](std::uint8_t* p, auto v) {
        p[0] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(v));
      });
      return;
  }
}

}  // namespace

void swap_elements(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t count, std::uint32_t width) {
  switch (width) {
    case 2:
      for (std::size_t i = 0; i < count; ++i)
        store_raw(dst + i * 2, bswap16(load_raw<std::uint16_t>(src + i * 2)));
      return;
    case 4:
      for (std::size_t i = 0; i < count; ++i)
        store_raw(dst + i * 4, bswap32(load_raw<std::uint32_t>(src + i * 4)));
      return;
    case 8:
      for (std::size_t i = 0; i < count; ++i)
        store_raw(dst + i * 8, bswap64(load_raw<std::uint64_t>(src + i * 8)));
      return;
    default:
      // width 1 never reaches a swap op; other widths are planner bugs.
      std::memcpy(dst, src, std::size_t(width) * count);
      return;
  }
}

void convert_elements(std::uint8_t* dst, FieldKind dst_kind,
                      std::uint32_t dst_size, const std::uint8_t* src,
                      FieldKind src_kind, std::uint32_t src_size,
                      std::size_t count, ByteOrder src_order) {
  const bool swap = src_order != host_byte_order();
  with_loader(src_kind, src_size, swap, [&](auto load) {
    with_storer(dst_kind, dst_size, [&](auto store) {
      for (std::size_t i = 0; i < count; ++i)
        store(dst + i * std::size_t(dst_size),
              load(src + i * std::size_t(src_size)));
    });
  });
}

}  // namespace xmit::pbio
