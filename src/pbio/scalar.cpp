#include "pbio/scalar.hpp"

#include <cstring>

namespace xmit::pbio {

std::int64_t ScalarValue::as_signed() const {
  switch (cls) {
    case Class::kSigned: return i;
    case Class::kUnsigned: return static_cast<std::int64_t>(u);
    case Class::kReal: return static_cast<std::int64_t>(d);
  }
  return 0;
}

std::uint64_t ScalarValue::as_unsigned() const {
  switch (cls) {
    case Class::kSigned: return static_cast<std::uint64_t>(i);
    case Class::kUnsigned: return u;
    case Class::kReal: return static_cast<std::uint64_t>(d);
  }
  return 0;
}

double ScalarValue::as_real() const {
  switch (cls) {
    case Class::kSigned: return static_cast<double>(i);
    case Class::kUnsigned: return static_cast<double>(u);
    case Class::kReal: return d;
  }
  return 0;
}

Result<ScalarValue> load_scalar(const std::uint8_t* src, FieldKind kind,
                                std::uint32_t size, ByteOrder order) {
  switch (kind) {
    case FieldKind::kFloat:
      if (size == 4)
        return ScalarValue::from_real(
            bits_to_float(load_with_order<std::uint32_t>(src, order)));
      return ScalarValue::from_real(
          bits_to_double(load_with_order<std::uint64_t>(src, order)));
    case FieldKind::kInteger:
      switch (size) {
        case 1: return ScalarValue::from_signed(static_cast<std::int8_t>(src[0]));
        case 2: return ScalarValue::from_signed(static_cast<std::int16_t>(
            load_with_order<std::uint16_t>(src, order)));
        case 4: return ScalarValue::from_signed(static_cast<std::int32_t>(
            load_with_order<std::uint32_t>(src, order)));
        case 8: return ScalarValue::from_signed(static_cast<std::int64_t>(
            load_with_order<std::uint64_t>(src, order)));
        default: return Status(ErrorCode::kInternal, "bad integer size");
      }
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean: {
      std::uint64_t v;
      switch (size) {
        case 1: v = src[0]; break;
        case 2: v = load_with_order<std::uint16_t>(src, order); break;
        case 4: v = load_with_order<std::uint32_t>(src, order); break;
        case 8: v = load_with_order<std::uint64_t>(src, order); break;
        default: return Status(ErrorCode::kInternal, "bad unsigned size");
      }
      if (kind == FieldKind::kBoolean) v = v ? 1 : 0;
      return ScalarValue::from_unsigned(v);
    }
    case FieldKind::kChar:
      return ScalarValue::from_unsigned(src[0]);
    default:
      return Status(ErrorCode::kInternal, "load_scalar on non-scalar kind");
  }
}

void store_scalar(std::uint8_t* dst, FieldKind kind, std::uint32_t size,
                  const ScalarValue& value, ByteOrder order) {
  switch (kind) {
    case FieldKind::kFloat:
      if (size == 4)
        store_with_order(dst, float_bits(static_cast<float>(value.as_real())),
                         order);
      else
        store_with_order(dst, double_bits(value.as_real()), order);
      return;
    case FieldKind::kInteger: {
      std::uint64_t bits = static_cast<std::uint64_t>(value.as_signed());
      switch (size) {
        case 1: dst[0] = static_cast<std::uint8_t>(bits); return;
        case 2: store_with_order(dst, static_cast<std::uint16_t>(bits), order); return;
        case 4: store_with_order(dst, static_cast<std::uint32_t>(bits), order); return;
        case 8: store_with_order(dst, bits, order); return;
      }
      return;
    }
    case FieldKind::kUnsigned:
    case FieldKind::kBoolean: {
      std::uint64_t bits = value.as_unsigned();
      if (kind == FieldKind::kBoolean) bits = bits ? 1 : 0;
      switch (size) {
        case 1: dst[0] = static_cast<std::uint8_t>(bits); return;
        case 2: store_with_order(dst, static_cast<std::uint16_t>(bits), order); return;
        case 4: store_with_order(dst, static_cast<std::uint32_t>(bits), order); return;
        case 8: store_with_order(dst, bits, order); return;
      }
      return;
    }
    case FieldKind::kChar:
      dst[0] = static_cast<std::uint8_t>(value.as_unsigned());
      return;
    default:
      return;  // strings / nested never reach scalar stores
  }
}

std::uint64_t read_slot_value(const std::uint8_t* fixed, std::size_t offset,
                              std::uint8_t pointer_size, ByteOrder order) {
  if (pointer_size == 8)
    return load_with_order<std::uint64_t>(fixed + offset, order);
  return load_with_order<std::uint32_t>(fixed + offset, order);
}

void write_slot_value(std::uint8_t* fixed, std::size_t offset,
                      std::uint8_t pointer_size, ByteOrder order,
                      std::uint64_t value) {
  if (pointer_size == 8)
    store_with_order<std::uint64_t>(fixed + offset, value, order);
  else
    store_with_order<std::uint32_t>(fixed + offset,
                                    static_cast<std::uint32_t>(value), order);
}

}  // namespace xmit::pbio
