// PBIO data files: "encoding application data structures ... so that they
// may be ... written to data files in a heterogeneous computing
// environment" (paper §3.2).
//
// Layout:  'PBIOFILE' magic, u32 version, then self-framing blocks:
//   [u8 block-type | u32 LE payload-length | payload]
// Block type 1 carries serialized format metadata; type 2 carries one
// complete wire record. Every format appears before the first record that
// uses it, so a reader can stream the file on any architecture and decode
// with full metadata — the file is self-describing.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/limits.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"

namespace xmit::pbio {

class FileSink {
 public:
  static Result<FileSink> create(const std::string& path);

  FileSink(FileSink&&) = default;
  FileSink& operator=(FileSink&&) = default;

  // Encodes `record` with `encoder` and appends it, emitting the format
  // metadata block first if this format has not been written yet.
  Status write(const Encoder& encoder, const void* record);

  // Appends an already-encoded wire record belonging to `format`.
  Status write_encoded(const Format& format,
                       std::span<const std::uint8_t> record);

  Status flush();

 private:
  explicit FileSink(std::FILE* file) : file_(file, &std::fclose) {}

  Status ensure_format_written(const Format& format);
  Status write_block(std::uint8_t type, std::span<const std::uint8_t> payload);

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  std::set<FormatId> written_formats_;
};

class FileSource {
 public:
  // Opens the file and registers every format block it encounters into
  // `registry` as it streams (formats precede their records).
  static Result<FileSource> open(const std::string& path,
                                 FormatRegistry& registry);

  FileSource(FileSource&&) = default;
  FileSource& operator=(FileSource&&) = default;

  // Next data record (raw wire bytes, decodable via Decoder), or nullopt
  // at end of file.
  Result<std::optional<std::vector<std::uint8_t>>> next_record();

  // Budget applied when decoding the file's embedded format metadata —
  // a data file is untrusted input like any wire peer.
  void set_limits(const DecodeLimits& limits) { limits_ = limits; }

  std::size_t records_read() const { return records_read_; }
  std::size_t formats_read() const { return formats_read_; }

 private:
  FileSource(std::FILE* file, FormatRegistry& registry)
      : file_(file, &std::fclose), registry_(&registry) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  FormatRegistry* registry_;
  DecodeLimits limits_ = DecodeLimits::defaults();
  std::size_t records_read_ = 0;
  std::size_t formats_read_ = 0;
};

}  // namespace xmit::pbio
