// Format: a registered message format — name, field list, structure size,
// architecture — plus the flattened field view that the encoder and the
// conversion planner operate on.
//
// Formats are immutable once registered. A FormatId is a stable 64-bit
// fingerprint of the canonical format description; it is what travels in
// wire record headers so receivers can look the metadata up on demand
// (the paper's "format identifiers are generated which allow component
// programs to retrieve the metadata").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "pbio/arch.hpp"
#include "pbio/field.hpp"

namespace xmit::pbio {

class Format;
using FormatPtr = std::shared_ptr<const Format>;

using FormatId = std::uint64_t;

// One leaf of the flattened structure: nested formats expanded, fixed
// arrays of nested types unrolled per element, names joined with '.'.
// Primitive fixed arrays stay as a single entry with a count.
struct FlatField {
  std::string path;           // "coords.x" / "rows[2].label"
  FieldKind kind = FieldKind::kInteger;
  std::uint32_t size = 0;     // element size
  std::uint32_t offset = 0;   // absolute offset from struct start
  ArrayMode array_mode = ArrayMode::kNone;
  std::uint32_t fixed_count = 0;
  // Dynamic arrays: location/shape of the run-time count field, resolved
  // to an absolute offset at flatten time.
  std::uint32_t count_offset = 0;
  std::uint32_t count_size = 0;
  FieldKind count_kind = FieldKind::kInteger;
};

class Format {
 public:
  const std::string& name() const { return name_; }
  FormatId id() const { return id_; }
  const std::vector<IOField>& fields() const { return fields_; }
  std::uint32_t struct_size() const { return struct_size_; }
  const ArchInfo& arch() const { return arch_; }
  const std::vector<FlatField>& flat_fields() const { return flat_; }
  const std::vector<FormatPtr>& nested_formats() const { return nested_; }

  // True when the flattened layout contains no out-of-line data — encode
  // and same-arch decode degenerate to single memcpys.
  bool is_contiguous() const { return contiguous_; }

  // Canonical one-line description (also the FormatId hash input):
  //   name{field:type:size:offset;...}arch/size
  std::string canonical_description() const;

  // Field lookup by (top-level) name; nullptr when absent.
  const IOField* field_named(std::string_view name) const;
  const FlatField* flat_field(std::string_view path) const;

  // Construction goes through make() so every Format is validated and
  // flattened exactly once. `nested` must contain a format (of the same
  // arch) for every nested type reference in `fields`.
  static Result<FormatPtr> make(std::string name, std::vector<IOField> fields,
                                std::uint32_t struct_size, ArchInfo arch,
                                std::vector<FormatPtr> nested = {});

 private:
  Format() = default;

  Status validate_and_flatten();
  Status flatten_into(const std::string& prefix, std::uint32_t base_offset,
                      const Format& format, int depth);
  const FormatPtr* nested_named(std::string_view name) const;

  std::string name_;
  std::vector<IOField> fields_;
  std::uint32_t struct_size_ = 0;
  ArchInfo arch_;
  std::vector<FormatPtr> nested_;
  std::vector<FlatField> flat_;
  bool contiguous_ = true;
  FormatId id_ = 0;
};

// FNV-1a 64 over the canonical description — stable across processes and
// platforms, so both ends of a connection derive identical ids.
FormatId hash_format_description(std::string_view description);

}  // namespace xmit::pbio
