#include "pbio/format.hpp"

#include <algorithm>

namespace xmit::pbio {

namespace {
constexpr int kMaxNestingDepth = 16;
// Cap on the flattened leaf-field count. Fixed-size arrays of nested
// types unroll per element, so a peer-supplied format metadata blob a few
// hundred bytes long can otherwise request maxOccurs^depth leaves — an
// unbounded-memory / infinite-loop bomb at adoption time. Matches
// DecodeLimits::max_flat_fields.
constexpr std::size_t kMaxFlatFields = 1u << 16;
}

FormatId hash_format_description(std::string_view description) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (char c : description) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  // Never hand out 0: it is the "no format" sentinel in wire headers.
  return hash == 0 ? 1 : hash;
}

std::string Format::canonical_description() const {
  std::string out = name_;
  out += '{';
  for (const auto& field : fields_) {
    out += field.name;
    out += ':';
    out += field.type_name;
    out += ':';
    out += std::to_string(field.size);
    out += ':';
    out += std::to_string(field.offset);
    out += ';';
  }
  out += '}';
  // Nested layouts contribute through their own canonical descriptions, so
  // a change in a subformat changes the outer id too.
  for (const auto& nested : nested_) {
    out += '<';
    out += nested->canonical_description();
    out += '>';
  }
  out += arch_.to_string();
  out += '/';
  out += std::to_string(struct_size_);
  return out;
}

const IOField* Format::field_named(std::string_view name) const {
  for (const auto& field : fields_)
    if (field.name == name) return &field;
  return nullptr;
}

const FlatField* Format::flat_field(std::string_view path) const {
  for (const auto& field : flat_)
    if (field.path == path) return &field;
  return nullptr;
}

const FormatPtr* Format::nested_named(std::string_view name) const {
  for (const auto& nested : nested_)
    if (nested->name() == name) return &nested;
  return nullptr;
}

Result<FormatPtr> Format::make(std::string name, std::vector<IOField> fields,
                               std::uint32_t struct_size, ArchInfo arch,
                               std::vector<FormatPtr> nested) {
  auto format = std::shared_ptr<Format>(new Format());
  format->name_ = std::move(name);
  format->fields_ = std::move(fields);
  format->struct_size_ = struct_size;
  format->arch_ = arch;
  format->nested_ = std::move(nested);
  XMIT_RETURN_IF_ERROR(format->validate_and_flatten());
  format->id_ = hash_format_description(format->canonical_description());
  return FormatPtr(format);
}

Status Format::validate_and_flatten() {
  if (name_.empty())
    return make_error(ErrorCode::kInvalidArgument, "format needs a name");
  if (fields_.empty())
    return make_error(ErrorCode::kInvalidArgument,
                      "format '" + name_ + "' has no fields");
  if (struct_size_ == 0)
    return make_error(ErrorCode::kInvalidArgument,
                      "format '" + name_ + "' has zero struct size");
  for (const auto& nested : nested_) {
    if (!(nested->arch() == arch_))
      return make_error(ErrorCode::kInvalidArgument,
                        "nested format '" + nested->name() +
                            "' has a different architecture than '" + name_ +
                            "'");
  }
  // Duplicate field names would make evolution matching ambiguous.
  for (std::size_t i = 0; i < fields_.size(); ++i)
    for (std::size_t j = i + 1; j < fields_.size(); ++j)
      if (fields_[i].name == fields_[j].name)
        return make_error(ErrorCode::kInvalidArgument,
                          "duplicate field '" + fields_[i].name +
                              "' in format '" + name_ + "'");
  XMIT_RETURN_IF_ERROR(flatten_into("", 0, *this, 0));
  // Deterministic plan order regardless of declaration order tweaks.
  std::stable_sort(flat_.begin(), flat_.end(),
                   [](const FlatField& a, const FlatField& b) {
                     return a.offset < b.offset;
                   });
  for (const auto& flat : flat_) {
    if (flat.kind == FieldKind::kString || flat.array_mode == ArrayMode::kDynamic)
      contiguous_ = false;
    if (flat.kind == FieldKind::kString && flat.size != arch_.pointer_size)
      return make_error(ErrorCode::kInvalidArgument,
                        "string field '" + flat.path + "' size " +
                            std::to_string(flat.size) +
                            " != pointer size of " + arch_.to_string());
    // In-memory footprint: pointer slots for strings and dynamic arrays,
    // element-count multiples for inline fixed arrays.
    std::uint64_t footprint;
    if (flat.kind == FieldKind::kString)
      footprint = std::uint64_t(arch_.pointer_size) *
                  (flat.array_mode == ArrayMode::kFixed ? flat.fixed_count : 1);
    else if (flat.array_mode == ArrayMode::kDynamic)
      footprint = arch_.pointer_size;
    else if (flat.array_mode == ArrayMode::kFixed)
      footprint = std::uint64_t(flat.size) * flat.fixed_count;
    else
      footprint = flat.size;
    std::uint64_t extent = flat.offset + footprint;
    if (extent > struct_size_)
      return make_error(ErrorCode::kOutOfRange,
                        "field '" + flat.path + "' extends past struct size in '" +
                            name_ + "'");
  }
  return Status::ok();
}

// Expands `format`'s fields (recursing through nested formats) into flat_,
// with offsets rebased by `base_offset` and names prefixed by `prefix`.
Status Format::flatten_into(const std::string& prefix,
                            std::uint32_t base_offset, const Format& format,
                            int depth) {
  if (depth > kMaxNestingDepth)
    return make_error(ErrorCode::kInvalidArgument,
                      "format nesting too deep in '" + name_ + "'");
  for (const auto& field : format.fields_) {
    if (flat_.size() >= kMaxFlatFields)
      return make_error(ErrorCode::kResourceExhausted,
                        "format '" + name_ + "' flattens to more than " +
                            std::to_string(kMaxFlatFields) + " fields");
    XMIT_ASSIGN_OR_RETURN(auto type, parse_field_type(field.type_name));
    std::string path = prefix.empty() ? field.name : prefix + "." + field.name;
    // Offsets are u32 on the wire; rebasing must not wrap into a small
    // (bounds-check-passing) value.
    const std::uint64_t rebased = std::uint64_t(base_offset) + field.offset;
    if (rebased > UINT32_MAX)
      return make_error(ErrorCode::kMalformedInput,
                        "field offset overflow at '" + path + "'");

    if (type.kind == FieldKind::kNested) {
      const FormatPtr* nested = format.nested_named(type.nested_format);
      if (nested == nullptr)
        return make_error(ErrorCode::kNotFound,
                          "unresolved nested type '" + type.nested_format +
                              "' for field '" + path + "'");
      switch (type.array.mode) {
        case ArrayMode::kNone:
          XMIT_RETURN_IF_ERROR(flatten_into(
              path, static_cast<std::uint32_t>(rebased), **nested, depth + 1));
          break;
        case ArrayMode::kFixed:
          // Unroll: rows[0].x, rows[1].x, ... Element stride is the
          // nested struct size (the field's `size` must agree).
          if (field.size != (*nested)->struct_size())
            return make_error(ErrorCode::kInvalidArgument,
                              "field '" + path + "' element size " +
                                  std::to_string(field.size) +
                                  " != nested struct size " +
                                  std::to_string((*nested)->struct_size()));
          for (std::uint32_t i = 0; i < type.array.fixed_count; ++i) {
            if (flat_.size() >= kMaxFlatFields)
              return make_error(ErrorCode::kResourceExhausted,
                                "format '" + name_ +
                                    "' flattens to more than " +
                                    std::to_string(kMaxFlatFields) + " fields");
            const std::uint64_t elem_offset =
                rebased + std::uint64_t(i) * field.size;
            if (elem_offset > UINT32_MAX)
              return make_error(ErrorCode::kMalformedInput,
                                "field offset overflow at '" + path + "'");
            XMIT_RETURN_IF_ERROR(flatten_into(
                path + "[" + std::to_string(i) + "]",
                static_cast<std::uint32_t>(elem_offset), **nested, depth + 1));
          }
          break;
        case ArrayMode::kDynamic:
          // Dynamic arrays carry primitive elements only in this dialect
          // (matches the paper: array base types come from the XML Schema
          // primitive set).
          return make_error(ErrorCode::kUnsupported,
                            "dynamic array of nested type at '" + path + "'");
      }
      continue;
    }

    if (!valid_size_for_kind(type.kind, field.size))
      return make_error(ErrorCode::kInvalidArgument,
                        "bad size " + std::to_string(field.size) +
                            " for field '" + path + "' of type '" +
                            field.type_name + "'");

    FlatField flat;
    flat.path = std::move(path);
    flat.kind = type.kind;
    flat.size = field.size;
    flat.offset = static_cast<std::uint32_t>(rebased);
    flat.array_mode = type.array.mode;
    flat.fixed_count = type.array.fixed_count;

    if (type.array.mode == ArrayMode::kDynamic) {
      if (type.kind == FieldKind::kString)
        return make_error(ErrorCode::kUnsupported,
                          "dynamic array of strings at '" + flat.path + "'");
      // Resolve the count field among the *same* format's fields.
      const IOField* count = format.field_named(type.array.size_field);
      if (count == nullptr)
        return make_error(ErrorCode::kNotFound,
                          "size field '" + type.array.size_field +
                              "' for array '" + flat.path + "' not found");
      XMIT_ASSIGN_OR_RETURN(auto count_type, parse_field_type(count->type_name));
      if ((count_type.kind != FieldKind::kInteger &&
           count_type.kind != FieldKind::kUnsigned) ||
          count_type.array.mode != ArrayMode::kNone)
        return make_error(ErrorCode::kInvalidArgument,
                          "size field '" + type.array.size_field +
                              "' for array '" + flat.path +
                              "' must be a scalar integer");
      const std::uint64_t count_at = std::uint64_t(base_offset) + count->offset;
      if (count_at > UINT32_MAX)
        return make_error(ErrorCode::kMalformedInput,
                          "count field offset overflow at '" + flat.path + "'");
      flat.count_offset = static_cast<std::uint32_t>(count_at);
      flat.count_size = count->size;
      flat.count_kind = count_type.kind;
    }
    flat_.push_back(std::move(flat));
  }
  return Status::ok();
}

}  // namespace xmit::pbio
