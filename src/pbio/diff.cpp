#include "pbio/diff.hpp"

namespace xmit::pbio {
namespace {

bool same_flat_layout(const FlatField& a, const FlatField& b) {
  return a.kind == b.kind && a.size == b.size && a.offset == b.offset &&
         a.array_mode == b.array_mode && a.fixed_count == b.fixed_count;
}

std::string describe(const FlatField& field) {
  std::string out = field_kind_name(field.kind);
  out += ":" + std::to_string(field.size);
  switch (field.array_mode) {
    case ArrayMode::kNone: break;
    case ArrayMode::kFixed:
      out += "[" + std::to_string(field.fixed_count) + "]";
      break;
    case ArrayMode::kDynamic:
      out += "[dyn]";
      break;
  }
  out += "@" + std::to_string(field.offset);
  return out;
}

}  // namespace

const char* field_change_kind_name(FieldChange::Kind kind) {
  switch (kind) {
    case FieldChange::Kind::kAdded: return "added";
    case FieldChange::Kind::kRemoved: return "removed";
    case FieldChange::Kind::kRetyped: return "retyped";
    case FieldChange::Kind::kResized: return "resized";
    case FieldChange::Kind::kMoved: return "moved";
    case FieldChange::Kind::kShapeChanged: return "shape-changed";
  }
  return "unknown";
}

FormatDiff diff_formats(const Format& from, const Format& to) {
  FormatDiff diff;
  diff.convertible = true;

  // Same structural layout and architecture => identity decode.
  diff.identical_layout =
      from.arch() == to.arch() && from.struct_size() == to.struct_size() &&
      from.flat_fields().size() == to.flat_fields().size();
  if (diff.identical_layout) {
    for (std::size_t i = 0; i < from.flat_fields().size(); ++i) {
      const FlatField& a = from.flat_fields()[i];
      const FlatField& b = to.flat_fields()[i];
      if (a.path != b.path || !same_flat_layout(a, b)) {
        diff.identical_layout = false;
        break;
      }
    }
  }

  for (const auto& target : to.flat_fields()) {
    const FlatField* source = from.flat_field(target.path);
    if (source == nullptr) {
      diff.changes.push_back({FieldChange::Kind::kAdded, target.path,
                              "-> " + describe(target) + " (zero-filled)"});
      continue;
    }
    // Shape changes break the evolution contract (mirrors the planner).
    const bool source_string = source->kind == FieldKind::kString;
    const bool target_string = target.kind == FieldKind::kString;
    const bool shape_broken =
        source_string != target_string ||
        (source->array_mode != target.array_mode &&
         !(source->array_mode == ArrayMode::kFixed &&
           target.array_mode == ArrayMode::kFixed));
    if (shape_broken) {
      diff.changes.push_back({FieldChange::Kind::kShapeChanged, target.path,
                              describe(*source) + " -> " + describe(target)});
      diff.convertible = false;
      continue;
    }
    if (source->kind != target.kind) {
      diff.changes.push_back({FieldChange::Kind::kRetyped, target.path,
                              describe(*source) + " -> " + describe(target)});
    } else if (source->size != target.size ||
               source->fixed_count != target.fixed_count) {
      diff.changes.push_back({FieldChange::Kind::kResized, target.path,
                              describe(*source) + " -> " + describe(target)});
    } else if (source->offset != target.offset) {
      diff.changes.push_back({FieldChange::Kind::kMoved, target.path,
                              describe(*source) + " -> " + describe(target)});
    }
  }
  for (const auto& source : from.flat_fields()) {
    if (to.flat_field(source.path) == nullptr)
      diff.changes.push_back({FieldChange::Kind::kRemoved, source.path,
                              describe(source) + " -> (skipped)"});
  }
  return diff;
}

std::string FormatDiff::to_string() const {
  std::string out;
  if (changes.empty()) {
    out = identical_layout ? "identical layouts\n"
                           : "no field changes (architecture or padding "
                             "differences only)\n";
  }
  for (const auto& change : changes) {
    out += "  ";
    out += field_change_kind_name(change.kind);
    out += "  " + change.path + "  " + change.detail + "\n";
  }
  out += convertible ? "=> convertible: records of the old format decode "
                       "into the new one\n"
                     : "=> NOT convertible: shape changes break the "
                       "evolution contract\n";
  return out;
}

}  // namespace xmit::pbio
