// IOField: one entry of a PBIO field list, mirroring the paper's
//
//   IOField asdOffFields[] = {
//     { "flight", "integer", sizeof(int), IOOffset(asdOffptr, flightNum) },
//     ...
//   };
//
// Type strings follow PBIO's dialect:
//   "integer" | "unsigned integer" | "float" | "char" | "string" |
//   "boolean" | "<FormatName>"                 (nested structure by value)
// optionally suffixed with an array specifier:
//   "[N]"        fixed-size array of N elements, stored inline
//   "[field]"    dynamically-allocated array; the named sibling integer
//                field holds the element count at run time
// The element size of the field (for arrays: one element; for strings:
// sizeof(char*)) is carried in `size`, its structure offset in `offset`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace xmit::pbio {

enum class FieldKind : std::uint8_t {
  kInteger,   // signed two's-complement, size 1/2/4/8
  kUnsigned,  // size 1/2/4/8
  kFloat,     // IEEE-754, size 4/8
  kChar,      // single byte, no conversion
  kBoolean,   // normalized to 0/1 on conversion, size 1/2/4/8
  kString,    // char*, NUL-terminated, out-of-line on the wire
  kNested,    // embedded structure described by another format
};

const char* field_kind_name(FieldKind kind);

enum class ArrayMode : std::uint8_t {
  kNone,     // scalar
  kFixed,    // inline array of fixed_count elements
  kDynamic,  // pointer in memory; count in the sibling field `size_field`
};

struct ArraySpec {
  ArrayMode mode = ArrayMode::kNone;
  std::uint32_t fixed_count = 0;  // when kFixed
  std::string size_field;         // when kDynamic

  bool operator==(const ArraySpec&) const = default;
};

struct IOField {
  std::string name;
  std::string type_name;  // canonical type string, array suffix included
  std::uint32_t size = 0;    // in-memory element size
  std::uint32_t offset = 0;  // in-memory structure offset

  bool operator==(const IOField&) const = default;
};

// Parsed view of a type string.
struct FieldType {
  FieldKind kind = FieldKind::kInteger;
  std::string nested_format;  // when kind == kNested
  ArraySpec array;
};

// Parse PBIO type strings ("unsigned integer[count]", "float[3]",
// "SimpleData", ...). Unknown base names are treated as nested format
// references; validity of the reference is checked at registration.
Result<FieldType> parse_field_type(std::string_view type_name);

// Render a FieldType back to its canonical string form.
std::string format_field_type(const FieldType& type);

// True if `size` is legal for the kind (e.g. floats must be 4 or 8).
bool valid_size_for_kind(FieldKind kind, std::uint32_t size);

}  // namespace xmit::pbio
