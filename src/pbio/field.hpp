// IOField: one entry of a PBIO field list, mirroring the paper's
//
//   IOField asdOffFields[] = {
//     { "flight", "integer", sizeof(int), IOOffset(asdOffptr, flightNum) },
//     ...
//   };
//
// Type strings follow PBIO's dialect:
//   "integer" | "unsigned integer" | "float" | "char" | "string" |
//   "boolean" | "<FormatName>"                 (nested structure by value)
// optionally suffixed with an array specifier:
//   "[N]"        fixed-size array of N elements, stored inline
//   "[field]"    dynamically-allocated array; the named sibling integer
//                field holds the element count at run time
// The element size of the field (for arrays: one element; for strings:
// sizeof(char*)) is carried in `size`, its structure offset in `offset`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/endian.hpp"
#include "common/error.hpp"

namespace xmit::pbio {

enum class FieldKind : std::uint8_t {
  kInteger,   // signed two's-complement, size 1/2/4/8
  kUnsigned,  // size 1/2/4/8
  kFloat,     // IEEE-754, size 4/8
  kChar,      // single byte, no conversion
  kBoolean,   // normalized to 0/1 on conversion, size 1/2/4/8
  kString,    // char*, NUL-terminated, out-of-line on the wire
  kNested,    // embedded structure described by another format
};

const char* field_kind_name(FieldKind kind);

enum class ArrayMode : std::uint8_t {
  kNone,     // scalar
  kFixed,    // inline array of fixed_count elements
  kDynamic,  // pointer in memory; count in the sibling field `size_field`
};

struct ArraySpec {
  ArrayMode mode = ArrayMode::kNone;
  std::uint32_t fixed_count = 0;  // when kFixed
  std::string size_field;         // when kDynamic

  bool operator==(const ArraySpec&) const = default;
};

struct IOField {
  std::string name;
  std::string type_name;  // canonical type string, array suffix included
  std::uint32_t size = 0;    // in-memory element size
  std::uint32_t offset = 0;  // in-memory structure offset

  bool operator==(const IOField&) const = default;
};

// Parsed view of a type string.
struct FieldType {
  FieldKind kind = FieldKind::kInteger;
  std::string nested_format;  // when kind == kNested
  ArraySpec array;
};

// Parse PBIO type strings ("unsigned integer[count]", "float[3]",
// "SimpleData", ...). Unknown base names are treated as nested format
// references; validity of the reference is checked at registration.
Result<FieldType> parse_field_type(std::string_view type_name);

// Render a FieldType back to its canonical string form.
std::string format_field_type(const FieldType& type);

// True if `size` is legal for the kind (e.g. floats must be 4 or 8).
bool valid_size_for_kind(FieldKind kind, std::uint32_t size);

// Reads the run-time element count of a dynamic array from a structure
// image laid out in `order` (a live host struct for the encoder, a wire
// record's fixed section for the decoders). One definition of the count
// contract for every path:
//   - signed count fields: negative values fail with `negative_error`
//   - unsigned count fields: the full unsigned value of the field's width
//     (the top bit is not a sign bit — callers bounds-check the count
//     against the payload they actually have)
// `offset`/`size`/`kind` come from FlatField::count_*; sizes other than
// 1/2/4/8 are a planner bug and fail kInternal.
Result<std::uint64_t> read_count_field(const std::uint8_t* image,
                                       std::uint32_t offset,
                                       std::uint32_t size, FieldKind kind,
                                       ByteOrder order, std::string_view path,
                                       ErrorCode negative_error);

}  // namespace xmit::pbio
