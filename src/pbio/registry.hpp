// FormatRegistry: the per-process table of registered formats.
//
// register_format() is the operation whose cost the paper measures
// (Figures 3 and 6 compare it against the full XMIT path). Lookup by id
// serves incoming records; lookup by name serves binding and evolution
// (a receiver binds its *own* format by name, then converts records whose
// id differs). Thread-safe: registration is rare, lookup is hot.
//
// Scale (DESIGN.md §5k): real deployments carry thousands of live
// formats, registered and looked up concurrently. The table is sharded
// by FormatId so registration never funnels through one global mutex,
// and the hot by_id() path is an RCU-style read: each shard publishes an
// immutable snapshot map through an atomic shared_ptr, so a decode
// lookup that hits the snapshot takes no lock at all and can never be
// stalled by a registration storm or a stats scan. Writers append to a
// small mutex-guarded delta and republish the snapshot every
// kPublishThreshold inserts, so a lookup falls back to the (briefly
// locked) delta only for formats registered in the last instant.
// Formats are never evicted from the registry — bounded-memory pressure
// is the job of the caches layered above it (plan cache, binding cache).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "pbio/format.hpp"

namespace xmit::pbio {

class FormatRegistry {
 public:
  // Power of two so shard selection is a mask. 16 shards keeps writer
  // collisions rare at realistic thread counts while the per-shard
  // snapshots stay small enough to republish cheaply.
  static constexpr std::size_t kShardCount = 16;

  // Snapshot republication cadence: a shard merges its delta into a new
  // immutable snapshot after this many buffered inserts, bounding both
  // the slow-path (delta) lookup cost and the amortized copy cost of
  // publication to O(shard_size / kPublishThreshold) per insert.
  static constexpr std::size_t kPublishThreshold = 32;

  // Occupancy picture assembled entirely from per-shard atomic counters —
  // never takes a lock, so polling it (xmit_inspect --registry) cannot
  // stall a decode or a registration.
  struct Stats {
    std::size_t formats = 0;
    std::size_t snapshot_publishes = 0;   // RCU republications so far
    std::size_t snapshot_hits = 0;        // by_id served lock-free
    std::size_t delta_hits = 0;           // by_id served from a delta
    std::array<std::size_t, kShardCount> shard_sizes{};
  };

  FormatRegistry() = default;
  FormatRegistry(const FormatRegistry&) = delete;
  FormatRegistry& operator=(const FormatRegistry&) = delete;

  // Registers a format whose nested type references (if any) resolve to
  // formats already registered here — subformats first, exactly like PBIO.
  // Registering the identical description again returns the existing
  // format (idempotent); a *different* description under the same name
  // becomes the new "current" format for that name, and the old one stays
  // reachable by id (how evolution coexists with in-flight records).
  Result<FormatPtr> register_format(std::string name,
                                    std::vector<IOField> fields,
                                    std::uint32_t struct_size,
                                    const ArchInfo& arch = ArchInfo::host());

  // Registers an externally constructed format (e.g. deserialized from a
  // file header or received from a format server).
  Result<FormatPtr> adopt(FormatPtr format);

  // The hot decode lookup: lock-free when the id is in the shard's
  // published snapshot (steady state); a format registered within the
  // last kPublishThreshold inserts is found in the delta under a brief
  // per-shard lock.
  Result<FormatPtr> by_id(FormatId id) const;
  Result<FormatPtr> by_name(std::string_view name) const;  // current version

  // Non-blocking: sums per-shard atomic counters.
  std::size_t size() const;

  // Assembles the full format list from the per-shard snapshots plus
  // deltas. Readers (by_id snapshot hits) are never blocked; each shard's
  // writer lock is held only long enough to copy its delta.
  std::vector<FormatPtr> all() const;

  // Never takes a lock; safe to poll from a stats thread at any rate.
  Stats stats() const;

 private:
  using IdTable = std::unordered_map<FormatId, FormatPtr>;
  using NameTable = std::unordered_map<std::string, FormatPtr>;

  struct IdShard {
    mutable std::mutex mutex;  // serializes writers and delta reads
    // RCU-published immutable snapshot; readers load without the mutex.
    std::atomic<std::shared_ptr<const IdTable>> snapshot;
    IdTable delta XMIT_GUARDED_BY(mutex);
    std::atomic<std::size_t> count{0};
  };

  // Names are not on the decode hot path (binding + nested resolution
  // only) and, unlike ids, get overwritten by evolution ("current"
  // version), which an immutable snapshot would serve stale. A plain
  // sharded mutex-guarded table is correct and plenty fast there.
  struct NameShard {
    mutable std::mutex mutex;
    NameTable names XMIT_GUARDED_BY(mutex);
  };

  static std::size_t shard_of(FormatId id) {
    return static_cast<std::size_t>((id ^ (id >> 32)) & (kShardCount - 1));
  }
  static std::size_t shard_of_name(std::string_view name);

  // Merges snapshot + delta into a freshly published snapshot.
  void publish_locked(IdShard& shard) const XMIT_REQUIRES(shard.mutex);

  mutable std::array<IdShard, kShardCount> id_shards_;
  mutable std::array<NameShard, kShardCount> name_shards_;
  mutable std::atomic<std::size_t> publishes_{0};
  mutable std::atomic<std::size_t> snapshot_hits_{0};
  mutable std::atomic<std::size_t> delta_hits_{0};
};

}  // namespace xmit::pbio
