// FormatRegistry: the per-process table of registered formats.
//
// register_format() is the operation whose cost the paper measures
// (Figures 3 and 6 compare it against the full XMIT path). Lookup by id
// serves incoming records; lookup by name serves binding and evolution
// (a receiver binds its *own* format by name, then converts records whose
// id differs). Thread-safe: registration is rare, lookup is hot.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "pbio/format.hpp"

namespace xmit::pbio {

class FormatRegistry {
 public:
  FormatRegistry() = default;
  FormatRegistry(const FormatRegistry&) = delete;
  FormatRegistry& operator=(const FormatRegistry&) = delete;

  // Registers a format whose nested type references (if any) resolve to
  // formats already registered here — subformats first, exactly like PBIO.
  // Registering the identical description again returns the existing
  // format (idempotent); a *different* description under the same name
  // becomes the new "current" format for that name, and the old one stays
  // reachable by id (how evolution coexists with in-flight records).
  Result<FormatPtr> register_format(std::string name,
                                    std::vector<IOField> fields,
                                    std::uint32_t struct_size,
                                    const ArchInfo& arch = ArchInfo::host());

  // Registers an externally constructed format (e.g. deserialized from a
  // file header or received from a format server).
  Result<FormatPtr> adopt(FormatPtr format);

  Result<FormatPtr> by_id(FormatId id) const;
  Result<FormatPtr> by_name(std::string_view name) const;  // current version

  std::size_t size() const;
  std::vector<FormatPtr> all() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<FormatId, FormatPtr> by_id_ XMIT_GUARDED_BY(mutex_);
  std::unordered_map<std::string, FormatPtr> by_name_ XMIT_GUARDED_BY(mutex_);
};

}  // namespace xmit::pbio
