// Order-aware scalar load/store shared by the decoder's conversion path,
// the dynamic RecordBuilder/RecordReader, and the file reader. A scalar in
// transit is normalized to 64-bit signed / 64-bit unsigned / double and
// re-materialized at any legal kind/width, which is how cross-architecture
// and evolved-width conversions stay a single code path.
#pragma once

#include <cstdint>

#include "common/endian.hpp"
#include "common/error.hpp"
#include "pbio/field.hpp"

namespace xmit::pbio {

struct ScalarValue {
  enum class Class : std::uint8_t { kSigned, kUnsigned, kReal };
  Class cls = Class::kSigned;
  union {
    std::int64_t i;
    std::uint64_t u;
    double d;
  };

  static ScalarValue from_signed(std::int64_t v) {
    ScalarValue s;
    s.cls = Class::kSigned;
    s.i = v;
    return s;
  }
  static ScalarValue from_unsigned(std::uint64_t v) {
    ScalarValue s;
    s.cls = Class::kUnsigned;
    s.u = v;
    return s;
  }
  static ScalarValue from_real(double v) {
    ScalarValue s;
    s.cls = Class::kReal;
    s.d = v;
    return s;
  }

  std::int64_t as_signed() const;
  std::uint64_t as_unsigned() const;
  double as_real() const;
};

// Reads a scalar of (kind, size) stored in `order` from `src`.
Result<ScalarValue> load_scalar(const std::uint8_t* src, FieldKind kind,
                                std::uint32_t size, ByteOrder order);

// Writes `value` as a scalar of (kind, size) in `order` to `dst`.
// Booleans are normalized to 0/1.
void store_scalar(std::uint8_t* dst, FieldKind kind, std::uint32_t size,
                  const ScalarValue& value, ByteOrder order);

// Reads a pointer slot of the wire's pointer width; returned value is the
// raw slot content (variable-section offset + 1, or 0 for null).
std::uint64_t read_slot_value(const std::uint8_t* fixed, std::size_t offset,
                              std::uint8_t pointer_size, ByteOrder order);

// Writes a pointer slot of the given width/order.
void write_slot_value(std::uint8_t* fixed, std::size_t offset,
                      std::uint8_t pointer_size, ByteOrder order,
                      std::uint64_t value);

}  // namespace xmit::pbio
