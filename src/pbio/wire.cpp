#include "pbio/wire.hpp"

#include <cstring>

namespace xmit::pbio {
namespace {

constexpr std::uint8_t kFlagBigEndian = 0x01;
constexpr std::uint8_t kFlagPointer8 = 0x02;

void render_header(std::uint8_t out[WireHeader::kSize],
                   const WireHeader& header) {
  std::memset(out, 0, WireHeader::kSize);
  std::memcpy(out, WireHeader::kMagic, 4);
  out[4] = WireHeader::kVersion;
  std::uint8_t flags = 0;
  if (header.byte_order == ByteOrder::kBig) flags |= kFlagBigEndian;
  if (header.pointer_size == 8) flags |= kFlagPointer8;
  out[5] = flags;
  ByteOrder order = header.byte_order;
  store_with_order<std::uint16_t>(out + 6, WireHeader::kSize, order);
  store_with_order<std::uint64_t>(out + 8, header.format_id, order);
  store_with_order<std::uint32_t>(out + 16, header.fixed_length, order);
  store_with_order<std::uint32_t>(out + 20, header.var_length, order);
}

}  // namespace

void append_header(ByteBuffer& out, const WireHeader& header) {
  std::uint8_t raw[WireHeader::kSize];
  render_header(raw, header);
  out.append(raw, sizeof(raw));
}

void patch_header(ByteBuffer& out, std::size_t offset,
                  const WireHeader& header) {
  std::uint8_t raw[WireHeader::kSize];
  render_header(raw, header);
  std::memcpy(out.data() + offset, raw, sizeof(raw));
}

Result<WireHeader> parse_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < WireHeader::kSize)
    return Status(ErrorCode::kOutOfRange, "record shorter than header");
  if (std::memcmp(bytes.data(), WireHeader::kMagic, 4) != 0)
    return Status(ErrorCode::kParseError, "bad record magic");
  if (bytes[4] != WireHeader::kVersion)
    return Status(ErrorCode::kUnsupported,
                  "unsupported wire version " + std::to_string(bytes[4]));
  WireHeader header;
  std::uint8_t flags = bytes[5];
  header.byte_order =
      (flags & kFlagBigEndian) ? ByteOrder::kBig : ByteOrder::kLittle;
  header.pointer_size = (flags & kFlagPointer8) ? 8 : 4;
  ByteOrder order = header.byte_order;
  std::uint16_t header_size =
      load_with_order<std::uint16_t>(bytes.data() + 6, order);
  if (header_size != WireHeader::kSize)
    return Status(ErrorCode::kUnsupported,
                  "unexpected header size " + std::to_string(header_size));
  header.format_id = load_with_order<std::uint64_t>(bytes.data() + 8, order);
  header.fixed_length =
      load_with_order<std::uint32_t>(bytes.data() + 16, order);
  header.var_length = load_with_order<std::uint32_t>(bytes.data() + 20, order);
  if (header.format_id == 0)
    return Status(ErrorCode::kParseError, "record has null format id");
  return header;
}

Result<WireHeader> parse_record(std::span<const std::uint8_t> bytes) {
  XMIT_ASSIGN_OR_RETURN(auto header, parse_header(bytes));
  if (bytes.size() != header.record_length())
    return Status(ErrorCode::kOutOfRange,
                  "record length mismatch: have " +
                      std::to_string(bytes.size()) + " bytes, header claims " +
                      std::to_string(header.record_length()));
  return header;
}

}  // namespace xmit::pbio
