#include "pbio/format_wire.hpp"

namespace xmit::pbio {
namespace {

constexpr ByteOrder kMetaOrder = ByteOrder::kLittle;
constexpr std::uint8_t kMetaVersion = 1;
constexpr int kMaxMetaNesting = 16;

void put_string(ByteBuffer& out, std::string_view s) {
  out.append_u16(static_cast<std::uint16_t>(s.size()), kMetaOrder);
  out.append(s);
}

Result<std::string> get_string(ByteReader& reader,
                               const DecodeLimits& limits) {
  XMIT_ASSIGN_OR_RETURN(auto length, reader.read_u16(kMetaOrder));
  if (length > limits.max_string_bytes)
    return Status(ErrorCode::kResourceExhausted,
                  "format metadata string exceeds limit");
  return reader.read_string(length);
}

void serialize_into(const Format& format, ByteBuffer& out) {
  out.append_byte(kMetaVersion);
  const ArchInfo& arch = format.arch();
  out.append_byte(arch.byte_order == ByteOrder::kBig ? 1 : 0);
  out.append_byte(arch.pointer_size);
  out.append_byte(arch.long_size);
  out.append_byte(arch.max_align);
  put_string(out, format.name());
  out.append_u32(format.struct_size(), kMetaOrder);
  out.append_u16(static_cast<std::uint16_t>(format.fields().size()), kMetaOrder);
  for (const auto& field : format.fields()) {
    put_string(out, field.name);
    put_string(out, field.type_name);
    out.append_u32(field.size, kMetaOrder);
    out.append_u32(field.offset, kMetaOrder);
  }
  out.append_u16(static_cast<std::uint16_t>(format.nested_formats().size()),
                 kMetaOrder);
  for (const auto& nested : format.nested_formats())
    serialize_into(*nested, out);
}

// Smallest possible encodings, used to reject declared counts that could
// never fit in the bytes remaining (so a hostile u16 count can't drive
// oversized reserve() calls or long parse loops before hitting the end).
constexpr std::size_t kMinFieldEncoding = 2 + 2 + 4 + 4;  // 2 empty strings
constexpr std::size_t kMinFormatEncoding = 5 + 2 + 4 + 2 + 2;

Result<FormatPtr> deserialize_from(ByteReader& reader, int depth,
                                   const DecodeLimits& limits,
                                   std::size_t& total_fields) {
  if (depth > kMaxMetaNesting || depth > limits.max_depth)
    return Status(ErrorCode::kResourceExhausted,
                  "format metadata nesting too deep");
  XMIT_ASSIGN_OR_RETURN(auto version, reader.read_u8());
  if (version != kMetaVersion)
    return Status(ErrorCode::kUnsupported,
                  "unknown format metadata version " + std::to_string(version));
  ArchInfo arch;
  XMIT_ASSIGN_OR_RETURN(auto order_byte, reader.read_u8());
  arch.byte_order = order_byte ? ByteOrder::kBig : ByteOrder::kLittle;
  XMIT_ASSIGN_OR_RETURN(arch.pointer_size, reader.read_u8());
  XMIT_ASSIGN_OR_RETURN(arch.long_size, reader.read_u8());
  XMIT_ASSIGN_OR_RETURN(arch.max_align, reader.read_u8());
  XMIT_ASSIGN_OR_RETURN(auto name, get_string(reader, limits));
  XMIT_ASSIGN_OR_RETURN(auto struct_size, reader.read_u32(kMetaOrder));
  XMIT_ASSIGN_OR_RETURN(auto field_count, reader.read_u16(kMetaOrder));
  if (std::size_t(field_count) * kMinFieldEncoding > reader.remaining())
    return Status(ErrorCode::kMalformedInput,
                  "format metadata declares more fields than bytes present");
  total_fields += field_count;
  if (total_fields > limits.max_flat_fields)
    return Status(ErrorCode::kResourceExhausted,
                  "format metadata field count exceeds limit");
  std::vector<IOField> fields;
  fields.reserve(field_count);
  for (std::uint16_t i = 0; i < field_count; ++i) {
    IOField field;
    XMIT_ASSIGN_OR_RETURN(field.name, get_string(reader, limits));
    XMIT_ASSIGN_OR_RETURN(field.type_name, get_string(reader, limits));
    XMIT_ASSIGN_OR_RETURN(field.size, reader.read_u32(kMetaOrder));
    XMIT_ASSIGN_OR_RETURN(field.offset, reader.read_u32(kMetaOrder));
    fields.push_back(std::move(field));
  }
  XMIT_ASSIGN_OR_RETURN(auto nested_count, reader.read_u16(kMetaOrder));
  if (std::size_t(nested_count) * kMinFormatEncoding > reader.remaining())
    return Status(ErrorCode::kMalformedInput,
                  "format metadata declares more subformats than bytes present");
  std::vector<FormatPtr> nested;
  nested.reserve(nested_count);
  for (std::uint16_t i = 0; i < nested_count; ++i) {
    XMIT_ASSIGN_OR_RETURN(
        auto sub, deserialize_from(reader, depth + 1, limits, total_fields));
    nested.push_back(std::move(sub));
  }
  return Format::make(std::move(name), std::move(fields), struct_size, arch,
                      std::move(nested));
}

}  // namespace

void serialize_format(const Format& format, ByteBuffer& out) {
  serialize_into(format, out);
}

std::vector<std::uint8_t> serialize_format(const Format& format) {
  ByteBuffer out;
  serialize_into(format, out);
  return out.take();
}

Result<FormatPtr> deserialize_format(ByteReader& reader,
                                     const DecodeLimits& limits) {
  std::size_t total_fields = 0;
  return deserialize_from(reader, 0, limits, total_fields);
}

Result<FormatPtr> deserialize_format(std::span<const std::uint8_t> bytes,
                                     const DecodeLimits& limits) {
  ByteReader reader(bytes);
  std::size_t total_fields = 0;
  return deserialize_from(reader, 0, limits, total_fields);
}

}  // namespace xmit::pbio
