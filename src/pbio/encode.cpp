#include "pbio/encode.hpp"

#include <cstring>

namespace xmit::pbio {
namespace {

// Variable-section payloads are aligned so that in-place decode hands out
// naturally-aligned array pointers (record buffers are allocated with
// at-least-8 alignment by vector/new).
std::size_t var_alignment(const FlatField& field) {
  std::size_t align = field.size;
  if (align > 8) align = 8;
  if (align == 0) align = 1;
  return align;
}

}  // namespace

Encoder::Encoder(FormatPtr format) : format_(std::move(format)) {
  for (const auto& flat : format_->flat_fields())
    if (flat.kind == FieldKind::kString ||
        flat.array_mode == ArrayMode::kDynamic)
      var_fields_.push_back(flat);
}

Result<Encoder> Encoder::make(FormatPtr format) {
  if (!format) return Status(ErrorCode::kInvalidArgument, "null format");
  if (!(format->arch() == ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "encoder requires a host-architecture format, got " +
                      format->arch().to_string());
  return Encoder(std::move(format));
}

Result<std::uint64_t> Encoder::read_count(const std::uint8_t* record,
                                          const FlatField& field) {
  std::int64_t count = 0;
  switch (field.count_size) {
    case 1: count = *reinterpret_cast<const std::int8_t*>(record + field.count_offset); break;
    case 2: count = load_raw<std::int16_t>(record + field.count_offset); break;
    case 4: count = load_raw<std::int32_t>(record + field.count_offset); break;
    case 8: count = load_raw<std::int64_t>(record + field.count_offset); break;
    default:
      return Status(ErrorCode::kInternal, "bad count field size");
  }
  if (field.count_kind == FieldKind::kUnsigned) {
    // Reinterpret the loaded bits as unsigned of the same width.
    std::uint64_t mask = field.count_size == 8
                             ? ~0ull
                             : ((1ull << (field.count_size * 8)) - 1);
    return static_cast<std::uint64_t>(count) & mask;
  }
  if (count < 0)
    return Status(ErrorCode::kInvalidArgument,
                  "negative element count in field '" + field.path + "'");
  return static_cast<std::uint64_t>(count);
}

Status Encoder::encode(const void* record, ByteBuffer& out) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  const std::size_t record_start = out.size();
  const std::size_t fixed_size = format_->struct_size();

  out.reserve_slot(WireHeader::kSize);
  const std::size_t fixed_start = out.size();
  out.append(bytes, fixed_size);

  // Variable section. Slots hold var-relative offset + 1; 0 means null.
  std::size_t var_size = 0;
  const std::size_t var_start = out.size();
  const std::size_t ptr_size = sizeof(void*);

  auto patch_slot = [&](std::size_t slot_offset, std::uint64_t value) {
    // Wire slots are sender-native, and we are the sender: plain stores.
    if (ptr_size == 8)
      store_raw<std::uint64_t>(out.data() + fixed_start + slot_offset, value);
    else
      store_raw<std::uint32_t>(out.data() + fixed_start + slot_offset,
                               static_cast<std::uint32_t>(value));
  };

  for (const auto& field : var_fields_) {
    const std::uint32_t elem_count =
        field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;

    if (field.kind == FieldKind::kString) {
      // Scalar string or fixed array of strings: one slot per element.
      for (std::uint32_t i = 0; i < elem_count; ++i) {
        std::size_t slot_offset = field.offset + std::size_t(i) * ptr_size;
        const char* str = load_raw<const char*>(bytes + slot_offset);
        if (str == nullptr) {
          patch_slot(slot_offset, 0);
          continue;
        }
        std::size_t len = std::strlen(str);
        patch_slot(slot_offset, var_size + 1);
        out.append(str, len + 1);  // keep the NUL: receiver re-points at it
        var_size += len + 1;
      }
      continue;
    }

    // Dynamic primitive array.
    XMIT_ASSIGN_OR_RETURN(auto count, read_count(bytes, field));
    const std::uint8_t* data = load_raw<const std::uint8_t*>(bytes + field.offset);
    if (data == nullptr) {
      if (count != 0)
        return make_error(ErrorCode::kInvalidArgument,
                          "field '" + field.path + "' is null but its count is " +
                              std::to_string(count));
      patch_slot(field.offset, 0);
      continue;
    }
    // Pad so the payload lands naturally aligned in the record.
    std::size_t align = var_alignment(field);
    std::size_t aligned = align_up(WireHeader::kSize + fixed_size + var_size,
                                   align) -
                          (WireHeader::kSize + fixed_size);
    out.append_zeros(aligned - var_size);
    var_size = aligned;
    std::size_t payload = std::size_t(count) * field.size;
    patch_slot(field.offset, var_size + 1);
    out.append(data, payload);
    var_size += payload;
  }
  (void)var_start;

  WireHeader header;
  header.format_id = format_->id();
  header.byte_order = host_byte_order();
  header.pointer_size = static_cast<std::uint8_t>(ptr_size);
  header.fixed_length = static_cast<std::uint32_t>(fixed_size);
  header.var_length = static_cast<std::uint32_t>(var_size);
  patch_header(out, record_start, header);
  return Status::ok();
}

Result<std::vector<std::uint8_t>> Encoder::encode_to_vector(
    const void* record) const {
  ByteBuffer out;
  XMIT_RETURN_IF_ERROR(encode(record, out));
  return out.take();
}

Result<std::size_t> Encoder::encoded_size(const void* record) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  std::size_t var_size = 0;
  const std::size_t fixed_size = format_->struct_size();
  for (const auto& field : var_fields_) {
    if (field.kind == FieldKind::kString) {
      const std::uint32_t elems =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      for (std::uint32_t i = 0; i < elems; ++i) {
        const char* str = load_raw<const char*>(
            bytes + field.offset + std::size_t(i) * sizeof(void*));
        if (str != nullptr) var_size += std::strlen(str) + 1;
      }
      continue;
    }
    XMIT_ASSIGN_OR_RETURN(auto count, read_count(bytes, field));
    if (count == 0) continue;
    std::size_t align = var_alignment(field);
    var_size = align_up(WireHeader::kSize + fixed_size + var_size, align) -
               (WireHeader::kSize + fixed_size);
    var_size += std::size_t(count) * field.size;
  }
  return WireHeader::kSize + fixed_size + var_size;
}

}  // namespace xmit::pbio
