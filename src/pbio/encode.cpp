#include "pbio/encode.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace xmit::pbio {
namespace {

// Variable-section payloads are aligned so that in-place decode hands out
// naturally-aligned array pointers (record buffers are allocated with
// at-least-8 alignment by vector/new).
std::uint32_t var_alignment(const FlatField& field) {
  std::uint32_t align = field.size;
  if (align > 8) align = 8;
  if (align == 0) align = 1;
  return align;
}

// Padding slices in a gather list point here instead of growing the
// scratch buffer (which would invalidate slices already taken).
constexpr std::uint8_t kZeroPadding[8] = {};

WireHeader host_header(const Format& format, std::size_t fixed_size,
                       std::size_t var_size) {
  WireHeader header;
  header.format_id = format.id();
  header.byte_order = host_byte_order();
  header.pointer_size = static_cast<std::uint8_t>(sizeof(void*));
  header.fixed_length = static_cast<std::uint32_t>(fixed_size);
  header.var_length = static_cast<std::uint32_t>(var_size);
  return header;
}

void store_slot(std::uint8_t* slot, std::uint64_t value) {
  // Wire slots are sender-native, and we are the sender: plain stores.
  if (sizeof(void*) == 8)
    store_raw<std::uint64_t>(slot, value);
  else
    store_raw<std::uint32_t>(slot, static_cast<std::uint32_t>(value));
}

}  // namespace

Encoder::Encoder(FormatPtr format) : format_(std::move(format)) {
  for (const auto& flat : format_->flat_fields()) {
    if (flat.kind != FieldKind::kString &&
        flat.array_mode != ArrayMode::kDynamic)
      continue;
    VarOp op;
    op.is_string = flat.kind == FieldKind::kString;
    op.offset = flat.offset;
    op.slot_count =
        (op.is_string && flat.array_mode == ArrayMode::kFixed)
            ? flat.fixed_count
            : 1;
    op.elem_size = flat.size;
    op.align = var_alignment(flat);
    op.count_offset = flat.count_offset;
    op.count_size = flat.count_size;
    op.count_kind = flat.count_kind;
    op.path = flat.path;
    program_.push_back(std::move(op));
  }
  compile_fixed_program();
}

// Lowers the fixed section to a flat program: the pointer-slot areas
// (sorted by struct offset) become slot ops with positions in a compact
// scratch slot block, and everything between them coalesces into copy
// spans taken straight from the caller's struct. The spans tile
// [0, struct_size) exactly; a format whose slot areas overlap or run past
// the struct (impossible through Format::make, but encoders can be built
// against hand-rolled metadata) drops to the reference walk instead.
void Encoder::compile_fixed_program() {
  struct Interval {
    std::uint32_t offset = 0;
    std::uint32_t bytes = 0;
    std::size_t var_index = 0;
  };
  std::vector<Interval> slots;
  slots.reserve(program_.size());
  for (std::size_t i = 0; i < program_.size(); ++i)
    slots.push_back({program_[i].offset,
                     static_cast<std::uint32_t>(program_[i].slot_count *
                                                sizeof(void*)),
                     i});
  std::sort(slots.begin(), slots.end(),
            [](const Interval& a, const Interval& b) {
              return a.offset < b.offset;
            });

  const std::uint32_t struct_size = format_->struct_size();
  std::uint32_t cursor = 0;
  std::uint32_t scratch = 0;
  fixed_ops_.clear();
  for (const Interval& slot : slots) {
    if (slot.offset < cursor ||
        std::uint64_t(slot.offset) + slot.bytes > struct_size) {
      fixed_ops_.clear();
      slot_bytes_ = 0;
      spans_ok_ = false;
      return;
    }
    if (slot.offset > cursor)
      fixed_ops_.push_back({false, cursor, slot.offset - cursor, 0});
    fixed_ops_.push_back({true, slot.offset, slot.bytes, scratch});
    program_[slot.var_index].scratch_offset = scratch;
    scratch += slot.bytes;
    cursor = slot.offset + slot.bytes;
  }
  if (cursor < struct_size)
    fixed_ops_.push_back({false, cursor, struct_size - cursor, 0});
  slot_bytes_ = scratch;
  spans_ok_ = true;
}

Result<Encoder> Encoder::make(FormatPtr format) {
  if (!format) return Status(ErrorCode::kInvalidArgument, "null format");
  if (!(format->arch() == ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "encoder requires a host-architecture format, got " +
                      format->arch().to_string());
  return Encoder(std::move(format));
}

Result<std::uint64_t> Encoder::read_var_count(const std::uint8_t* record,
                                              const VarOp& op) const {
  // The struct is live host memory, so the count is read at host order;
  // a negative signed count is a caller bug, not hostile input.
  return read_count_field(record, op.count_offset, op.count_size,
                          op.count_kind, host_byte_order(), op.path,
                          ErrorCode::kInvalidArgument);
}

// The var-field program, parameterized over where slot values land and
// how payload/padding bytes are emitted — encode() appends them to the
// output buffer, encode_iov() pushes gather slices. Both callers see the
// exact same slot values and payload order, which is what keeps their
// records byte-identical.
template <typename PatchSlot, typename EmitPayload, typename EmitPadding>
Status Encoder::run_var_program(const std::uint8_t* bytes,
                                std::size_t fixed_size, std::size_t& var_size,
                                PatchSlot&& patch_slot,
                                EmitPayload&& emit_payload,
                                EmitPadding&& emit_padding) const {
  const std::size_t ptr_size = sizeof(void*);
  for (const auto& op : program_) {
    if (op.is_string) {
      // Scalar string or fixed array of strings: one slot per element.
      // Slots hold var-relative offset + 1; 0 means null.
      for (std::uint32_t i = 0; i < op.slot_count; ++i) {
        std::size_t slot_offset = op.offset + std::size_t(i) * ptr_size;
        const char* str = load_raw<const char*>(bytes + slot_offset);
        if (str == nullptr) {
          patch_slot(op, i, 0);
          continue;
        }
        std::size_t len = std::strlen(str);
        patch_slot(op, i, var_size + 1);
        emit_payload(reinterpret_cast<const std::uint8_t*>(str),
                     len + 1);  // keep the NUL: receiver re-points at it
        var_size += len + 1;
      }
      continue;
    }

    // Dynamic primitive array.
    XMIT_ASSIGN_OR_RETURN(auto count, read_var_count(bytes, op));
    const std::uint8_t* data = load_raw<const std::uint8_t*>(bytes + op.offset);
    if (data == nullptr) {
      if (count != 0)
        return make_error(ErrorCode::kInvalidArgument,
                          "field '" + op.path + "' is null but its count is " +
                              std::to_string(count));
      patch_slot(op, 0, 0);
      continue;
    }
    // Pad so the payload lands naturally aligned in the record.
    std::size_t aligned =
        align_up(WireHeader::kSize + fixed_size + var_size, op.align) -
        (WireHeader::kSize + fixed_size);
    if (aligned != var_size) {
      emit_padding(aligned - var_size);
      var_size = aligned;
    }
    std::size_t payload = std::size_t(count) * op.elem_size;
    patch_slot(op, 0, var_size + 1);
    emit_payload(data, payload);
    var_size += payload;
  }
  return Status::ok();
}

Status Encoder::encode(const void* record, ByteBuffer& out) const {
  if (!spans_ok_) return encode_reference(record, out);
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  const std::size_t record_start = out.size();
  const std::size_t fixed_size = format_->struct_size();

  out.reserve_slot(WireHeader::kSize);
  const std::size_t fixed_start = out.size();
  // Fixed-section program: copy spans from the caller's struct, zeros for
  // slot areas (every slot byte is overwritten by a patch below).
  for (const FixedOp& fop : fixed_ops_) {
    if (fop.is_slot)
      out.append_zeros(fop.bytes);
    else
      out.append(bytes + fop.offset, fop.bytes);
  }

  std::size_t var_size = 0;
  auto patch = [&](const VarOp& op, std::uint32_t slot, std::uint64_t value) {
    store_slot(out.data() + fixed_start + op.offset +
                   std::size_t(slot) * sizeof(void*),
               value);
  };
  auto payload = [&](const std::uint8_t* data, std::size_t n) {
    out.append(data, n);
  };
  auto padding = [&](std::size_t n) { out.append_zeros(n); };
  XMIT_RETURN_IF_ERROR(
      run_var_program(bytes, fixed_size, var_size, patch, payload, padding));

  patch_header(out, record_start, host_header(*format_, fixed_size, var_size));
  return Status::ok();
}

Status Encoder::encode_reference(const void* record, ByteBuffer& out) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  const std::size_t record_start = out.size();
  const std::size_t fixed_size = format_->struct_size();

  out.reserve_slot(WireHeader::kSize);
  const std::size_t fixed_start = out.size();
  out.append(bytes, fixed_size);

  std::size_t var_size = 0;
  auto patch = [&](const VarOp& op, std::uint32_t slot, std::uint64_t value) {
    store_slot(out.data() + fixed_start + op.offset +
                   std::size_t(slot) * sizeof(void*),
               value);
  };
  auto payload = [&](const std::uint8_t* data, std::size_t n) {
    out.append(data, n);
  };
  auto padding = [&](std::size_t n) { out.append_zeros(n); };
  XMIT_RETURN_IF_ERROR(
      run_var_program(bytes, fixed_size, var_size, patch, payload, padding));

  patch_header(out, record_start, host_header(*format_, fixed_size, var_size));
  return Status::ok();
}

Status Encoder::encode_iov(const void* record, ByteBuffer& scratch,
                           std::vector<IoSlice>& slices) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  const std::size_t fixed_size = format_->struct_size();
  scratch.clear();
  slices.clear();

  if (program_.empty()) {
    // Contiguous struct: no slots to patch, so the fixed section ships
    // straight from the caller's memory. Scratch holds only the header.
    append_header(scratch, host_header(*format_, fixed_size, 0));
    slices.push_back({scratch.data(), WireHeader::kSize});
    slices.push_back({bytes, fixed_size});
    return Status::ok();
  }

  if (!spans_ok_) {
    // Reference gather: the whole fixed section is copied into scratch
    // and patched there. Scratch reaches its final size before any slice
    // takes a pointer into it — later writes only patch in place.
    scratch.reserve(WireHeader::kSize + fixed_size);
    scratch.reserve_slot(WireHeader::kSize);
    scratch.append(bytes, fixed_size);
    slices.push_back({scratch.data(), WireHeader::kSize + fixed_size});

    std::size_t var_size = 0;
    auto patch = [&](const VarOp& op, std::uint32_t slot,
                     std::uint64_t value) {
      store_slot(scratch.data() + WireHeader::kSize + op.offset +
                     std::size_t(slot) * sizeof(void*),
                 value);
    };
    auto payload = [&](const std::uint8_t* data, std::size_t n) {
      slices.push_back({data, n});
    };
    auto padding = [&](std::size_t n) {
      slices.push_back({kZeroPadding, n});
    };
    XMIT_RETURN_IF_ERROR(
        run_var_program(bytes, fixed_size, var_size, patch, payload, padding));
    patch_header(scratch, 0, host_header(*format_, fixed_size, var_size));
    return Status::ok();
  }

  // Compiled gather: scratch holds only the header and the compact slot
  // block; every copy span references the caller's struct directly.
  // Scratch reaches its final size here, before any slice takes a pointer
  // into it — the var walk below only patches slot values in place.
  scratch.reserve(WireHeader::kSize + slot_bytes_);
  scratch.reserve_slot(WireHeader::kSize);
  scratch.append_zeros(slot_bytes_);

  auto push_slice = [&](const std::uint8_t* data, std::size_t n) {
    if (n == 0) return;
    if (!slices.empty()) {
      IoSlice& prev = slices.back();
      if (static_cast<const std::uint8_t*>(prev.data) + prev.size == data) {
        prev.size += n;  // adjacent in memory: one iovec entry
        return;
      }
    }
    slices.push_back({data, n});
  };

  push_slice(scratch.data(), WireHeader::kSize);
  for (const FixedOp& fop : fixed_ops_) {
    if (fop.is_slot)
      push_slice(scratch.data() + WireHeader::kSize + fop.scratch_offset,
                 fop.bytes);
    else
      push_slice(bytes + fop.offset, fop.bytes);
  }

  std::size_t var_size = 0;
  auto patch = [&](const VarOp& op, std::uint32_t slot, std::uint64_t value) {
    store_slot(scratch.data() + WireHeader::kSize + op.scratch_offset +
                   std::size_t(slot) * sizeof(void*),
               value);
  };
  auto payload = [&](const std::uint8_t* data, std::size_t n) {
    push_slice(data, n);
  };
  auto padding = [&](std::size_t n) { push_slice(kZeroPadding, n); };
  XMIT_RETURN_IF_ERROR(
      run_var_program(bytes, fixed_size, var_size, patch, payload, padding));

  patch_header(scratch, 0, host_header(*format_, fixed_size, var_size));
  return Status::ok();
}

Result<std::vector<std::uint8_t>> Encoder::encode_to_vector(
    const void* record) const {
  ByteBuffer out;
  XMIT_RETURN_IF_ERROR(encode(record, out));
  return out.take();
}

Result<std::size_t> Encoder::encoded_size(const void* record) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  std::size_t var_size = 0;
  const std::size_t fixed_size = format_->struct_size();
  for (const auto& op : program_) {
    if (op.is_string) {
      for (std::uint32_t i = 0; i < op.slot_count; ++i) {
        const char* str = load_raw<const char*>(
            bytes + op.offset + std::size_t(i) * sizeof(void*));
        if (str != nullptr) var_size += std::strlen(str) + 1;
      }
      continue;
    }
    XMIT_ASSIGN_OR_RETURN(auto count, read_var_count(bytes, op));
    if (count == 0) continue;
    var_size = align_up(WireHeader::kSize + fixed_size + var_size, op.align) -
               (WireHeader::kSize + fixed_size);
    var_size += std::size_t(count) * op.elem_size;
  }
  return WireHeader::kSize + fixed_size + var_size;
}

Encoder::PlanStats Encoder::plan_stats() const {
  PlanStats stats;
  stats.contiguous = program_.empty();
  for (const FixedOp& fop : fixed_ops_)
    fop.is_slot ? ++stats.slot_ops : ++stats.copy_ops;
  for (const VarOp& op : program_)
    op.is_string ? ++stats.string_ops : ++stats.dynamic_ops;
  return stats;
}

std::string Encoder::plan_disassembly() const {
  std::string out;
  if (!spans_ok_) out += "reference-walk\n";
  for (const FixedOp& fop : fixed_ops_) {
    char line[96];
    if (fop.is_slot)
      std::snprintf(line, sizeof(line), "slots struct@%u len=%u scratch@%u\n",
                    fop.offset, fop.bytes, fop.scratch_offset);
    else
      std::snprintf(line, sizeof(line), "copy struct@%u len=%u\n", fop.offset,
                    fop.bytes);
    out += line;
  }
  for (const VarOp& op : program_) {
    char line[96];
    if (op.is_string)
      std::snprintf(line, sizeof(line), "str slot@%u slots=%u\n", op.offset,
                    op.slot_count);
    else
      std::snprintf(line, sizeof(line), "dyn slot@%u elem=%u count@%u\n",
                    op.offset, op.elem_size, op.count_offset);
    out += line;
  }
  return out;
}

}  // namespace xmit::pbio
