#include "pbio/encode.hpp"

#include <cstring>

namespace xmit::pbio {
namespace {

// Variable-section payloads are aligned so that in-place decode hands out
// naturally-aligned array pointers (record buffers are allocated with
// at-least-8 alignment by vector/new).
std::uint32_t var_alignment(const FlatField& field) {
  std::uint32_t align = field.size;
  if (align > 8) align = 8;
  if (align == 0) align = 1;
  return align;
}

// Padding slices in a gather list point here instead of growing the
// scratch buffer (which would invalidate slices already taken).
constexpr std::uint8_t kZeroPadding[8] = {};

WireHeader host_header(const Format& format, std::size_t fixed_size,
                       std::size_t var_size) {
  WireHeader header;
  header.format_id = format.id();
  header.byte_order = host_byte_order();
  header.pointer_size = static_cast<std::uint8_t>(sizeof(void*));
  header.fixed_length = static_cast<std::uint32_t>(fixed_size);
  header.var_length = static_cast<std::uint32_t>(var_size);
  return header;
}

}  // namespace

Encoder::Encoder(FormatPtr format) : format_(std::move(format)) {
  for (const auto& flat : format_->flat_fields()) {
    if (flat.kind != FieldKind::kString &&
        flat.array_mode != ArrayMode::kDynamic)
      continue;
    VarOp op;
    op.is_string = flat.kind == FieldKind::kString;
    op.offset = flat.offset;
    op.slot_count =
        (op.is_string && flat.array_mode == ArrayMode::kFixed)
            ? flat.fixed_count
            : 1;
    op.elem_size = flat.size;
    op.align = var_alignment(flat);
    op.count_offset = flat.count_offset;
    op.count_size = flat.count_size;
    op.count_kind = flat.count_kind;
    op.path = flat.path;
    program_.push_back(std::move(op));
  }
}

Result<Encoder> Encoder::make(FormatPtr format) {
  if (!format) return Status(ErrorCode::kInvalidArgument, "null format");
  if (!(format->arch() == ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "encoder requires a host-architecture format, got " +
                      format->arch().to_string());
  return Encoder(std::move(format));
}

Result<std::uint64_t> Encoder::read_var_count(const std::uint8_t* record,
                                              const VarOp& op) const {
  // The struct is live host memory, so the count is read at host order;
  // a negative signed count is a caller bug, not hostile input.
  return read_count_field(record, op.count_offset, op.count_size,
                          op.count_kind, host_byte_order(), op.path,
                          ErrorCode::kInvalidArgument);
}

Status Encoder::encode(const void* record, ByteBuffer& out) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  const std::size_t record_start = out.size();
  const std::size_t fixed_size = format_->struct_size();

  out.reserve_slot(WireHeader::kSize);
  const std::size_t fixed_start = out.size();
  out.append(bytes, fixed_size);

  // Variable section. Slots hold var-relative offset + 1; 0 means null.
  std::size_t var_size = 0;
  const std::size_t ptr_size = sizeof(void*);

  auto patch_slot = [&](std::size_t slot_offset, std::uint64_t value) {
    // Wire slots are sender-native, and we are the sender: plain stores.
    if (ptr_size == 8)
      store_raw<std::uint64_t>(out.data() + fixed_start + slot_offset, value);
    else
      store_raw<std::uint32_t>(out.data() + fixed_start + slot_offset,
                               static_cast<std::uint32_t>(value));
  };

  for (const auto& op : program_) {
    if (op.is_string) {
      // Scalar string or fixed array of strings: one slot per element.
      for (std::uint32_t i = 0; i < op.slot_count; ++i) {
        std::size_t slot_offset = op.offset + std::size_t(i) * ptr_size;
        const char* str = load_raw<const char*>(bytes + slot_offset);
        if (str == nullptr) {
          patch_slot(slot_offset, 0);
          continue;
        }
        std::size_t len = std::strlen(str);
        patch_slot(slot_offset, var_size + 1);
        out.append(str, len + 1);  // keep the NUL: receiver re-points at it
        var_size += len + 1;
      }
      continue;
    }

    // Dynamic primitive array.
    XMIT_ASSIGN_OR_RETURN(auto count, read_var_count(bytes, op));
    const std::uint8_t* data = load_raw<const std::uint8_t*>(bytes + op.offset);
    if (data == nullptr) {
      if (count != 0)
        return make_error(ErrorCode::kInvalidArgument,
                          "field '" + op.path + "' is null but its count is " +
                              std::to_string(count));
      patch_slot(op.offset, 0);
      continue;
    }
    // Pad so the payload lands naturally aligned in the record.
    std::size_t aligned =
        align_up(WireHeader::kSize + fixed_size + var_size, op.align) -
        (WireHeader::kSize + fixed_size);
    out.append_zeros(aligned - var_size);
    var_size = aligned;
    std::size_t payload = std::size_t(count) * op.elem_size;
    patch_slot(op.offset, var_size + 1);
    out.append(data, payload);
    var_size += payload;
  }

  patch_header(out, record_start, host_header(*format_, fixed_size, var_size));
  return Status::ok();
}

Status Encoder::encode_iov(const void* record, ByteBuffer& scratch,
                           std::vector<IoSlice>& slices) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  const std::size_t fixed_size = format_->struct_size();
  scratch.clear();
  slices.clear();

  if (program_.empty()) {
    // Contiguous struct: no slots to patch, so the fixed section ships
    // straight from the caller's memory. Scratch holds only the header.
    append_header(scratch, host_header(*format_, fixed_size, 0));
    slices.push_back({scratch.data(), WireHeader::kSize});
    slices.push_back({bytes, fixed_size});
    return Status::ok();
  }

  // Var-bearing format: the fixed section needs its pointer slots patched,
  // so it is copied into scratch once. Var payloads are still referenced
  // from the caller's memory. Scratch reaches its final size here, before
  // any slice takes a pointer into it — later writes only patch in place.
  scratch.reserve(WireHeader::kSize + fixed_size);
  scratch.reserve_slot(WireHeader::kSize);
  scratch.append(bytes, fixed_size);
  slices.push_back({scratch.data(), WireHeader::kSize + fixed_size});

  std::size_t var_size = 0;
  const std::size_t ptr_size = sizeof(void*);
  auto patch_slot = [&](std::size_t slot_offset, std::uint64_t value) {
    std::uint8_t* slot = scratch.data() + WireHeader::kSize + slot_offset;
    if (ptr_size == 8)
      store_raw<std::uint64_t>(slot, value);
    else
      store_raw<std::uint32_t>(slot, static_cast<std::uint32_t>(value));
  };

  for (const auto& op : program_) {
    if (op.is_string) {
      for (std::uint32_t i = 0; i < op.slot_count; ++i) {
        std::size_t slot_offset = op.offset + std::size_t(i) * ptr_size;
        const char* str = load_raw<const char*>(bytes + slot_offset);
        if (str == nullptr) {
          patch_slot(slot_offset, 0);
          continue;
        }
        std::size_t len = std::strlen(str);
        patch_slot(slot_offset, var_size + 1);
        slices.push_back({str, len + 1});  // includes the NUL
        var_size += len + 1;
      }
      continue;
    }

    XMIT_ASSIGN_OR_RETURN(auto count, read_var_count(bytes, op));
    const std::uint8_t* data = load_raw<const std::uint8_t*>(bytes + op.offset);
    if (data == nullptr) {
      if (count != 0)
        return make_error(ErrorCode::kInvalidArgument,
                          "field '" + op.path + "' is null but its count is " +
                              std::to_string(count));
      patch_slot(op.offset, 0);
      continue;
    }
    std::size_t aligned =
        align_up(WireHeader::kSize + fixed_size + var_size, op.align) -
        (WireHeader::kSize + fixed_size);
    if (aligned != var_size) {
      slices.push_back({kZeroPadding, aligned - var_size});
      var_size = aligned;
    }
    std::size_t payload = std::size_t(count) * op.elem_size;
    patch_slot(op.offset, var_size + 1);
    slices.push_back({data, payload});
    var_size += payload;
  }

  patch_header(scratch, 0, host_header(*format_, fixed_size, var_size));
  return Status::ok();
}

Result<std::vector<std::uint8_t>> Encoder::encode_to_vector(
    const void* record) const {
  ByteBuffer out;
  XMIT_RETURN_IF_ERROR(encode(record, out));
  return out.take();
}

Result<std::size_t> Encoder::encoded_size(const void* record) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  std::size_t var_size = 0;
  const std::size_t fixed_size = format_->struct_size();
  for (const auto& op : program_) {
    if (op.is_string) {
      for (std::uint32_t i = 0; i < op.slot_count; ++i) {
        const char* str = load_raw<const char*>(
            bytes + op.offset + std::size_t(i) * sizeof(void*));
        if (str != nullptr) var_size += std::strlen(str) + 1;
      }
      continue;
    }
    XMIT_ASSIGN_OR_RETURN(auto count, read_var_count(bytes, op));
    if (count == 0) continue;
    var_size = align_up(WireHeader::kSize + fixed_size + var_size, op.align) -
               (WireHeader::kSize + fixed_size);
    var_size += std::size_t(count) * op.elem_size;
  }
  return WireHeader::kSize + fixed_size + var_size;
}

}  // namespace xmit::pbio
