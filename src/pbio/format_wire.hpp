// Serialization of format *metadata* itself.
//
// Formats travel out-of-band: embedded in PBIO data files so a reader can
// reconstruct the registry, or served by a format server keyed by format
// id (the paper: "format identifiers are generated which allow component
// programs to retrieve the metadata on demand"). The encoding is
// canonical little-endian regardless of the described architecture — the
// ArchInfo being *described* is payload, not container.
#pragma once

#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/limits.hpp"
#include "pbio/format.hpp"

namespace xmit::pbio {

// Appends the serialized form of `format` (nested formats included, so the
// blob is self-contained) to `out`.
void serialize_format(const Format& format, ByteBuffer& out);

std::vector<std::uint8_t> serialize_format(const Format& format);

// Reconstructs a Format (validated and flattened) from `reader`.
// Round-trips exactly: the deserialized format has the same FormatId.
// Metadata blobs arrive from peers, so declared counts are cross-checked
// against the bytes actually present and against `limits` before any
// allocation sized from them.
Result<FormatPtr> deserialize_format(ByteReader& reader,
                                     const DecodeLimits& limits =
                                         DecodeLimits::defaults());

Result<FormatPtr> deserialize_format(std::span<const std::uint8_t> bytes,
                                     const DecodeLimits& limits =
                                         DecodeLimits::defaults());

}  // namespace xmit::pbio
