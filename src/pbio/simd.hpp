// Portable SIMD layer for the marshal kernels (DESIGN.md §5i).
//
// One backend is selected at compile time — SSE2 on x86-64, NEON on
// AArch64, scalar everywhere else (and everywhere when the build forces
// XMIT_SIMD_FORCE_SCALAR via -DXMIT_SIMD=OFF). The vector backends are
// additionally gated on a little-endian host: the fused widen/narrow
// block kernels lay 64-bit lanes out with unpack instructions whose
// low/high halves only line up with memory order on LE machines.
//
// On top of the compile-time gate sits a runtime toggle: simd::enabled()
// consults an atomic flag seeded from the XMIT_SIMD environment variable
// ("off"/"0"/"false"/"no" disable) and overridable per process with
// simd::set_enabled(). Every kernel in kernels.cpp keeps its scalar loop
// as the tail handler, so flipping the toggle mid-run is always safe —
// the differential tests run both settings and require bit-identical
// output.
//
// The primitives here each transform exactly one 128-bit block (16
// source bytes for the swaps and widens, 32 for the narrows); callers
// own the loop structure and the scalar tails.
#pragma once

#include <cstdint>

#if !defined(XMIT_SIMD_FORCE_SCALAR) && \
    defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#if defined(__SSE2__) || (defined(_M_X64) && !defined(__clang__))
#define XMIT_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define XMIT_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

#if defined(XMIT_SIMD_SSE2) || defined(XMIT_SIMD_NEON)
#define XMIT_SIMD_HAVE 1
#else
#define XMIT_SIMD_HAVE 0
#endif

namespace xmit::pbio::simd {

// Compile-time: was a vector backend built in at all?
constexpr bool compiled_in() { return XMIT_SIMD_HAVE != 0; }

// The backend this binary was compiled with: "sse2", "neon" or "scalar".
const char* backend();

// compiled_in() && the runtime toggle. Kernels consult this once per call.
bool enabled();

// Runtime toggle (test seam and XMIT_SIMD env override). Thread-safe.
void set_enabled(bool on);

#if XMIT_SIMD_SSE2

inline __m128i load128(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void store128(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

// Byte-reverse every 16-bit lane. SSE2 has no pshufb, so the swaps are
// built from 16-bit shifts and word shuffles.
inline __m128i bswap16_lanes(__m128i v) {
  return _mm_or_si128(_mm_slli_epi16(v, 8), _mm_srli_epi16(v, 8));
}
inline __m128i bswap32_lanes(__m128i v) {
  v = bswap16_lanes(v);
  // Swap the 16-bit halves of each 32-bit lane with word shuffles —
  // one op fewer than the shift/shift/or rotate, and on the shuffle
  // port instead of the (already busy) shift port.
  v = _mm_shufflelo_epi16(v, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_shufflehi_epi16(v, _MM_SHUFFLE(2, 3, 0, 1));
}
inline __m128i bswap64_lanes(__m128i v) {
  v = bswap16_lanes(v);
  v = _mm_shufflelo_epi16(v, _MM_SHUFFLE(0, 1, 2, 3));
  return _mm_shufflehi_epi16(v, _MM_SHUFFLE(0, 1, 2, 3));
}

// 8 x u16 byte-swap: 16 bytes in, 16 bytes out.
inline void swap16_block(std::uint8_t* dst, const std::uint8_t* src) {
  store128(dst, bswap16_lanes(load128(src)));
}
// 4 x u32 byte-swap.
inline void swap32_block(std::uint8_t* dst, const std::uint8_t* src) {
  store128(dst, bswap32_lanes(load128(src)));
}
// 2 x u64 byte-swap.
inline void swap64_block(std::uint8_t* dst, const std::uint8_t* src) {
  store128(dst, bswap64_lanes(load128(src)));
}

// 4 x int32 -> 4 x int64 sign-extend: 16 bytes in, 32 bytes out.
inline void widen_i32_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  __m128i v = load128(src);
  if (swap_src) v = bswap32_lanes(v);
  const __m128i sign = _mm_srai_epi32(v, 31);
  store128(dst, _mm_unpacklo_epi32(v, sign));
  store128(dst + 16, _mm_unpackhi_epi32(v, sign));
}

// 4 x uint32 -> 4 x uint64 zero-extend.
inline void widen_u32_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  __m128i v = load128(src);
  if (swap_src) v = bswap32_lanes(v);
  const __m128i zero = _mm_setzero_si128();
  store128(dst, _mm_unpacklo_epi32(v, zero));
  store128(dst + 16, _mm_unpackhi_epi32(v, zero));
}

// 4 x u64 -> 4 x u32 truncate: 32 bytes in, 16 bytes out.
inline void narrow_64_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  __m128i a = load128(src);
  __m128i b = load128(src + 16);
  if (swap_src) {
    a = bswap64_lanes(a);
    b = bswap64_lanes(b);
  }
  a = _mm_shuffle_epi32(a, _MM_SHUFFLE(3, 1, 2, 0));
  b = _mm_shuffle_epi32(b, _MM_SHUFFLE(3, 1, 2, 0));
  store128(dst, _mm_unpacklo_epi64(a, b));
}

// 4 x float -> 4 x double: 16 bytes in, 32 bytes out.
inline void widen_f32_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  __m128i vi = load128(src);
  if (swap_src) vi = bswap32_lanes(vi);
  const __m128 v = _mm_castsi128_ps(vi);
  _mm_storeu_pd(reinterpret_cast<double*>(dst), _mm_cvtps_pd(v));
  _mm_storeu_pd(reinterpret_cast<double*>(dst + 16),
                _mm_cvtps_pd(_mm_movehl_ps(v, v)));
}

// 4 x double -> 4 x float: 32 bytes in, 16 bytes out. cvtpd2ps rounds to
// nearest-even, exactly like the reference interpreter's static_cast.
inline void narrow_f64_block(std::uint8_t* dst, const std::uint8_t* src,
                             bool swap_src) {
  __m128i ai = load128(src);
  __m128i bi = load128(src + 16);
  if (swap_src) {
    ai = bswap64_lanes(ai);
    bi = bswap64_lanes(bi);
  }
  const __m128 lo = _mm_cvtpd_ps(_mm_castsi128_pd(ai));
  const __m128 hi = _mm_cvtpd_ps(_mm_castsi128_pd(bi));
  store128(dst, _mm_castps_si128(_mm_movelh_ps(lo, hi)));
}

#elif XMIT_SIMD_NEON

inline uint8x16_t load128(const std::uint8_t* p) { return vld1q_u8(p); }
inline void store128(std::uint8_t* p, uint8x16_t v) { vst1q_u8(p, v); }

inline void swap16_block(std::uint8_t* dst, const std::uint8_t* src) {
  store128(dst, vrev16q_u8(load128(src)));
}
inline void swap32_block(std::uint8_t* dst, const std::uint8_t* src) {
  store128(dst, vrev32q_u8(load128(src)));
}
inline void swap64_block(std::uint8_t* dst, const std::uint8_t* src) {
  store128(dst, vrev64q_u8(load128(src)));
}

inline void widen_i32_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  uint8x16_t raw = load128(src);
  if (swap_src) raw = vrev32q_u8(raw);
  const int32x4_t v = vreinterpretq_s32_u8(raw);
  vst1q_s64(reinterpret_cast<std::int64_t*>(dst), vmovl_s32(vget_low_s32(v)));
  vst1q_s64(reinterpret_cast<std::int64_t*>(dst + 16),
            vmovl_s32(vget_high_s32(v)));
}

inline void widen_u32_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  uint8x16_t raw = load128(src);
  if (swap_src) raw = vrev32q_u8(raw);
  const uint32x4_t v = vreinterpretq_u32_u8(raw);
  vst1q_u64(reinterpret_cast<std::uint64_t*>(dst),
            vmovl_u32(vget_low_u32(v)));
  vst1q_u64(reinterpret_cast<std::uint64_t*>(dst + 16),
            vmovl_u32(vget_high_u32(v)));
}

inline void narrow_64_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  uint8x16_t ra = load128(src);
  uint8x16_t rb = load128(src + 16);
  if (swap_src) {
    ra = vrev64q_u8(ra);
    rb = vrev64q_u8(rb);
  }
  const uint32x2_t lo = vmovn_u64(vreinterpretq_u64_u8(ra));
  const uint32x2_t hi = vmovn_u64(vreinterpretq_u64_u8(rb));
  vst1q_u32(reinterpret_cast<std::uint32_t*>(dst), vcombine_u32(lo, hi));
}

inline void widen_f32_block(std::uint8_t* dst, const std::uint8_t* src,
                            bool swap_src) {
  uint8x16_t raw = load128(src);
  if (swap_src) raw = vrev32q_u8(raw);
  const float32x4_t v = vreinterpretq_f32_u8(raw);
  vst1q_f64(reinterpret_cast<double*>(dst), vcvt_f64_f32(vget_low_f32(v)));
  vst1q_f64(reinterpret_cast<double*>(dst + 16),
            vcvt_f64_f32(vget_high_f32(v)));
}

inline void narrow_f64_block(std::uint8_t* dst, const std::uint8_t* src,
                             bool swap_src) {
  uint8x16_t ra = load128(src);
  uint8x16_t rb = load128(src + 16);
  if (swap_src) {
    ra = vrev64q_u8(ra);
    rb = vrev64q_u8(rb);
  }
  const float32x2_t lo = vcvt_f32_f64(vreinterpretq_f64_u8(ra));
  const float32x2_t hi = vcvt_f32_f64(vreinterpretq_f64_u8(rb));
  vst1q_f32(reinterpret_cast<float*>(dst), vcombine_f32(lo, hi));
}

#endif  // backend

}  // namespace xmit::pbio::simd
