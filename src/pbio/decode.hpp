// Decoder: PBIO wire record -> receiver-native struct.
//
// Three paths, selected per (sender format, receiver format) pair and
// cached:
//   1. in-place   — identical layout & architecture: pointer slots are
//                   patched to point into the record buffer; zero copies.
//   2. identity   — identical layout & architecture but the caller wants
//                   an owned struct: one memcpy + variable-data copies.
//   3. conversion — anything else (foreign byte order, foreign pointer
//                   size, evolved field list): byte-swapping, width
//                   changes, and name matching; receiver fields missing
//                   from the wire are zero-filled (PBIO's "restricted
//                   evolution"), sender fields unknown to the receiver are
//                   skipped.
//
// Every cached Plan is *compiled* at build time into a flat program of
// fused ops (DESIGN.md §5d): source extents are validated once against
// the sender's fixed length (which inspect() pins to struct_size()), runs
// of adjacent bitwise-compatible fields coalesce into single memcpy
// spans, and the remaining moves lower to typed kernels (bulk byte-swap,
// widen/narrow loops) with no per-element Result dispatch. The original
// per-field scalar interpreter survives as decode_reference(), the oracle
// the differential tests compare the compiled program against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/cache.hpp"
#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/limits.hpp"
#include "pbio/format.hpp"
#include "pbio/registry.hpp"
#include "pbio/wire.hpp"

namespace xmit::pbio {

// What a record claims to be, before any decoding.
struct RecordInfo {
  WireHeader header;
  FormatPtr sender_format;  // looked up in the registry by id
};

// Public mirror of one compiled-plan instruction, for introspection and
// static verification (src/analysis). Field meanings match the internal
// Op exactly; `path` is the receiver field the op serves (diagnostics).
struct PlanOp {
  enum class Kind : std::uint8_t {
    kCopy,             // memcpy `count` bytes
    kSwap,             // byte-reverse `count` elements of width src_size
    kConvert,          // widen/narrow/normalize `count` elements
    kString,           // `count` pointer slots -> arena strings
    kDynCopy,          // dynamic array, payload memcpy
    kDynSwap,          // dynamic array, bulk byte-reverse
    kDynConvert,       // dynamic array, element conversion
    kFusedConvert,     // fused swap+widen/narrow vector kernel
    kDynFusedConvert,  // dynamic array through the fused kernel
  };
  Kind kind = Kind::kCopy;
  FieldKind src_kind = FieldKind::kInteger;
  FieldKind dst_kind = FieldKind::kInteger;
  FieldKind count_kind = FieldKind::kInteger;  // kDyn*
  std::uint32_t src_size = 0;
  std::uint32_t dst_size = 0;
  std::uint32_t count_size = 0;    // kDyn*
  std::uint32_t src_offset = 0;
  std::uint32_t dst_offset = 0;
  std::uint32_t count = 0;         // kCopy: bytes; others: elements/slots
  std::uint32_t count_offset = 0;  // kDyn*
  std::string path;                // receiver field path (diagnostics)
};

// The whole compiled program for one (sender, receiver) pair, as plain
// data. What the plan verifier abstract-interprets: executing the ops
// must stay inside [0, sender_struct_size) on the source fixed section
// and [0, receiver_struct_size) on the destination struct.
struct PlanView {
  bool identity = false;
  bool zero_fill = false;
  ByteOrder src_order = ByteOrder::kLittle;
  std::uint8_t src_pointer_size = sizeof(void*);
  std::uint32_t sender_struct_size = 0;
  std::uint32_t receiver_struct_size = 0;
  std::vector<PlanOp> ops;
};

// Static check over a compiled program before it is admitted to the plan
// cache. Registered by analysis::register_plan_verifier(); pbio itself
// stays free of the analysis dependency.
using PlanVerifier =
    std::function<Status(const PlanView&, const Format& sender,
                         const Format& receiver)>;

// Process-wide verifier hook. A null function clears it. Thread-safe.
void set_global_plan_verifier(PlanVerifier verifier);
bool has_global_plan_verifier();

class Decoder {
 public:
  explicit Decoder(const FormatRegistry& registry) : registry_(registry) {}

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  // Resource budgets applied to every decode of untrusted bytes (out-of-
  // line allocation total, length-field sanity). Defaults are generous;
  // sessions tighten them per peer.
  void set_limits(const DecodeLimits& limits) { limits_ = limits; }
  const DecodeLimits& limits() const { return limits_; }

  // Parse the header and resolve the sender's format metadata.
  Result<RecordInfo> inspect(std::span<const std::uint8_t> bytes) const;

  // Decode into the caller's struct described by `receiver` (a host-arch
  // format). Out-of-line data (strings, dynamic arrays) is allocated from
  // `arena`; the decoded struct is valid for the arena's lifetime.
  // Executes the compiled op program for the cached plan.
  Status decode(std::span<const std::uint8_t> bytes, const Format& receiver,
                void* out, Arena& arena) const;

  // Reference decode: runs the per-field scalar interpreter (load_scalar /
  // store_scalar) instead of the compiled program. Semantically identical
  // to decode() — kept as the oracle for the differential tests and as
  // the readable specification of conversion semantics. Not a hot path.
  Status decode_reference(std::span<const std::uint8_t> bytes,
                          const Format& receiver, void* out,
                          Arena& arena) const;

  // Zero-copy decode: patches pointer slots inside `bytes` and returns a
  // pointer to the fixed section, valid for the buffer's lifetime. Fails
  // with kUnsupported when sender and receiver layouts differ (callers
  // fall back to decode()).
  Result<const void*> decode_in_place(std::span<std::uint8_t> bytes,
                                      const Format& receiver) const;

  // True if records from `sender` decode to `receiver` without
  // conversion; what decode_in_place requires.
  Result<bool> layouts_identical(const Format& sender,
                                 const Format& receiver) const;

  // Compiled-program shape for a (sender, receiver) pair — what the
  // coalescer produced. Benches assert copy-span counts with this, and
  // the XMIT-equivalence tests compare schema-derived formats against
  // compiled-in ones op for op.
  struct PlanStats {
    bool identity = false;
    std::size_t copy_ops = 0;     // coalesced memcpy spans
    std::size_t swap_ops = 0;     // bulk byte-reverse kernels
    std::size_t convert_ops = 0;  // widen/narrow/normalize kernels
    std::size_t fused_ops = 0;    // fused swap+widen/narrow vector kernels
    std::size_t string_ops = 0;
    std::size_t dynamic_ops = 0;  // dynamic arrays (any element mode)
    std::size_t total() const {
      return copy_ops + swap_ops + convert_ops + fused_ops + string_ops +
             dynamic_ops;
    }
  };
  Result<PlanStats> plan_stats(const FormatPtr& sender,
                               const Format& receiver) const;

  // One line per op ("copy src@0 dst@0 len=16"), in execution order.
  // Stable across runs for identical layouts — the marshaling-equivalence
  // tests compare these listings textually.
  Result<std::string> plan_disassembly(const FormatPtr& sender,
                                       const Format& receiver) const;

  // The full compiled program as plain data — the input of the static
  // plan verifier and of tools that render plans.
  Result<PlanView> plan_view(const FormatPtr& sender,
                             const Format& receiver) const;

  // When true, every freshly compiled plan is handed to the global
  // PlanVerifier (if one is registered) before it is cached; a rejected
  // plan fails the decode with the verifier's status instead of running.
  // Default: the XMIT_VERIFY_PLANS environment variable (any non-empty
  // value except "0"). MessageSession turns it on unconditionally —
  // plans built from peer-announced metadata are the hostile case.
  void set_verify_plans(bool verify) { verify_plans_ = verify; }
  bool verify_plans() const { return verify_plans_; }

  // Diagnostics: conversion plans currently resident (cache size).
  std::size_t plan_cache_size() const;

  // Bounded plan cache (DESIGN.md §5k). Default: unbounded, matching the
  // historical behaviour. With a budget set, least-recently-used unpinned
  // plans are evicted and rebuilt transparently on their next lookup; a
  // plan held by an in-flight decode is a shared_ptr copy and completes
  // safely even if its cache entry is evicted mid-run.
  void set_plan_cache_budget(CacheBudget budget) {
    plans_.set_budget(budget);
  }
  CacheStats plan_cache_stats() const { return plans_.stats(); }

  // RAII pin on one (sender, receiver) plan: while held, the plan cannot
  // be evicted whatever the budget pressure. Sessions pin the plans of
  // their negotiated format pairs so a registration storm elsewhere never
  // churns a live session's decode path. Fails with kResourceExhausted
  // when the pinned set alone would exceed the budget — the typed answer
  // the cache gives instead of growing without bound.
  class PlanPin {
   public:
    PlanPin() = default;
    PlanPin(PlanPin&& other) noexcept
        : decoder_(std::exchange(other.decoder_, nullptr)), key_(other.key_) {}
    PlanPin& operator=(PlanPin&& other) noexcept {
      if (this != &other) {
        release();
        decoder_ = std::exchange(other.decoder_, nullptr);
        key_ = other.key_;
      }
      return *this;
    }
    PlanPin(const PlanPin&) = delete;
    PlanPin& operator=(const PlanPin&) = delete;
    ~PlanPin() { release(); }

    bool holds() const { return decoder_ != nullptr; }
    void release();

   private:
    friend class Decoder;
    PlanPin(const Decoder* decoder, std::pair<FormatId, FormatId> key)
        : decoder_(decoder), key_(key) {}
    const Decoder* decoder_ = nullptr;
    std::pair<FormatId, FormatId> key_{};
  };

  // Builds (or fetches) the plan for the pair and pins it. The pin holds
  // a reference to this Decoder, which must outlive it.
  Result<PlanPin> pin_plan(const FormatPtr& sender,
                           const Format& receiver) const;

 private:
  struct Move;
  struct Op;
  struct Plan;

  struct PlanKeyHash {
    std::size_t operator()(const std::pair<FormatId, FormatId>& key) const {
      // FormatIds are FNV-1a hashes already; one multiply mixes the pair.
      return static_cast<std::size_t>(key.first * 0x9e3779b97f4a7c15ull ^
                                      key.second);
    }
  };

  Result<std::shared_ptr<const Plan>> plan_for(const FormatPtr& sender,
                                               const Format& receiver) const;
  static Result<std::shared_ptr<const Plan>> build_plan(
      const Format& sender, const Format& receiver);
  static PlanView view_of(const Plan& plan);
  static void compile_identity(const Format& receiver, Plan& plan);
  static Status compile_conversion(const Format& sender,
                                   const Format& receiver, Plan& plan);

  Status run_program(const Plan& plan, const WireHeader& header,
                     std::span<const std::uint8_t> bytes, void* out,
                     Arena& arena, AllocBudget& budget) const;
  Status run_identity_reference(const WireHeader& header,
                                std::span<const std::uint8_t> bytes,
                                const Format& receiver, void* out,
                                Arena& arena, AllocBudget& budget) const;
  Status run_conversion_reference(const Plan& plan, const WireHeader& header,
                                  std::span<const std::uint8_t> bytes,
                                  void* out, Arena& arena,
                                  AllocBudget& budget) const;

  static std::size_t plan_bytes(const Plan& plan);

  const FormatRegistry& registry_;
  DecodeLimits limits_ = DecodeLimits::defaults();
  bool verify_plans_ = verify_plans_env_default();
  static bool verify_plans_env_default();
  // LRU plan cache (internally synchronized; see common/cache.hpp).
  mutable LruCache<std::pair<FormatId, FormatId>, std::shared_ptr<const Plan>,
                   PlanKeyHash>
      plans_;
};

}  // namespace xmit::pbio
