// Decoder: PBIO wire record -> receiver-native struct.
//
// Three paths, selected per (sender format, receiver format) pair and
// cached:
//   1. in-place   — identical layout & architecture: pointer slots are
//                   patched to point into the record buffer; zero copies.
//   2. identity   — identical layout & architecture but the caller wants
//                   an owned struct: one memcpy + variable-data copies.
//   3. conversion — anything else (foreign byte order, foreign pointer
//                   size, evolved field list): per-field moves with
//                   byte-swapping, width changes, and name matching;
//                   receiver fields missing from the wire are zero-filled
//                   (PBIO's "restricted evolution"), sender fields unknown
//                   to the receiver are skipped.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/limits.hpp"
#include "pbio/format.hpp"
#include "pbio/registry.hpp"
#include "pbio/wire.hpp"

namespace xmit::pbio {

// What a record claims to be, before any decoding.
struct RecordInfo {
  WireHeader header;
  FormatPtr sender_format;  // looked up in the registry by id
};

class Decoder {
 public:
  explicit Decoder(const FormatRegistry& registry) : registry_(registry) {}

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  // Resource budgets applied to every decode of untrusted bytes (out-of-
  // line allocation total, length-field sanity). Defaults are generous;
  // sessions tighten them per peer.
  void set_limits(const DecodeLimits& limits) { limits_ = limits; }
  const DecodeLimits& limits() const { return limits_; }

  // Parse the header and resolve the sender's format metadata.
  Result<RecordInfo> inspect(std::span<const std::uint8_t> bytes) const;

  // Decode into the caller's struct described by `receiver` (a host-arch
  // format). Out-of-line data (strings, dynamic arrays) is allocated from
  // `arena`; the decoded struct is valid for the arena's lifetime.
  Status decode(std::span<const std::uint8_t> bytes, const Format& receiver,
                void* out, Arena& arena) const;

  // Zero-copy decode: patches pointer slots inside `bytes` and returns a
  // pointer to the fixed section, valid for the buffer's lifetime. Fails
  // with kUnsupported when sender and receiver layouts differ (callers
  // fall back to decode()).
  Result<const void*> decode_in_place(std::span<std::uint8_t> bytes,
                                      const Format& receiver) const;

  // True if records from `sender` decode to `receiver` without
  // conversion; what decode_in_place requires.
  Result<bool> layouts_identical(const Format& sender,
                                 const Format& receiver) const;

  // Diagnostics: conversion plans built so far (cache size).
  std::size_t plan_cache_size() const;

 private:
  struct Move;
  struct Plan;

  Result<std::shared_ptr<const Plan>> plan_for(const FormatPtr& sender,
                                               const Format& receiver) const;
  static Result<std::shared_ptr<const Plan>> build_plan(
      const Format& sender, const Format& receiver);

  Status run_identity(const WireHeader& header,
                      std::span<const std::uint8_t> bytes,
                      const Format& receiver, void* out, Arena& arena,
                      AllocBudget& budget) const;
  Status run_conversion(const Plan& plan, const WireHeader& header,
                        std::span<const std::uint8_t> bytes, void* out,
                        Arena& arena, AllocBudget& budget) const;

  const FormatRegistry& registry_;
  DecodeLimits limits_ = DecodeLimits::defaults();
  mutable std::mutex mutex_;
  mutable std::map<std::pair<FormatId, FormatId>, std::shared_ptr<const Plan>>
      plans_;
};

}  // namespace xmit::pbio
