#include "pbio/arch.hpp"

namespace xmit::pbio {

const ArchInfo& ArchInfo::host() {
  static const ArchInfo info = {};
  return info;
}

std::string ArchInfo::to_string() const {
  std::string out = byte_order == ByteOrder::kLittle ? "le" : "be";
  out += "/p";
  out += std::to_string(pointer_size);
  out += "/l";
  out += std::to_string(long_size);
  out += "/a";
  out += std::to_string(max_align);
  return out;
}

ArchInfo ArchInfo::big_endian_64() {
  return {ByteOrder::kBig, 8, 8, 8};
}

ArchInfo ArchInfo::big_endian_32() {
  return {ByteOrder::kBig, 4, 4, 8};
}

ArchInfo ArchInfo::little_endian_32() {
  return {ByteOrder::kLittle, 4, 4, 4};
}

}  // namespace xmit::pbio
