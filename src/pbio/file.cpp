#include "pbio/file.hpp"

#include <cstring>

#include "common/bytes.hpp"
#include "pbio/format_wire.hpp"

namespace xmit::pbio {
namespace {

constexpr char kFileMagic[8] = {'P', 'B', 'I', 'O', 'F', 'I', 'L', 'E'};
constexpr std::uint32_t kFileVersion = 1;
constexpr std::uint8_t kBlockFormat = 1;
constexpr std::uint8_t kBlockRecord = 2;
// Hard cap on a single block so a corrupt length field cannot trigger a
// multi-gigabyte allocation.
constexpr std::uint32_t kMaxBlockBytes = 1u << 30;

}  // namespace

Result<FileSink> FileSink::create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    return Status(ErrorCode::kIoError, "cannot create '" + path + "'");
  FileSink sink(file);
  std::uint8_t header[12];
  std::memcpy(header, kFileMagic, 8);
  store_with_order<std::uint32_t>(header + 8, kFileVersion, ByteOrder::kLittle);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header))
    return Status(ErrorCode::kIoError, "cannot write file header");
  return sink;
}

Status FileSink::write_block(std::uint8_t type,
                             std::span<const std::uint8_t> payload) {
  std::uint8_t frame[5];
  frame[0] = type;
  store_with_order<std::uint32_t>(frame + 1,
                                  static_cast<std::uint32_t>(payload.size()),
                                  ByteOrder::kLittle);
  if (std::fwrite(frame, 1, sizeof(frame), file_.get()) != sizeof(frame) ||
      std::fwrite(payload.data(), 1, payload.size(), file_.get()) !=
          payload.size())
    return make_error(ErrorCode::kIoError, "short write to PBIO file");
  return Status::ok();
}

Status FileSink::ensure_format_written(const Format& format) {
  if (written_formats_.contains(format.id())) return Status::ok();
  auto blob = serialize_format(format);
  XMIT_RETURN_IF_ERROR(write_block(kBlockFormat, blob));
  written_formats_.insert(format.id());
  return Status::ok();
}

Status FileSink::write(const Encoder& encoder, const void* record) {
  XMIT_RETURN_IF_ERROR(ensure_format_written(encoder.format()));
  XMIT_ASSIGN_OR_RETURN(auto bytes, encoder.encode_to_vector(record));
  return write_block(kBlockRecord, bytes);
}

Status FileSink::write_encoded(const Format& format,
                               std::span<const std::uint8_t> record) {
  XMIT_RETURN_IF_ERROR(ensure_format_written(format));
  return write_block(kBlockRecord, record);
}

Status FileSink::flush() {
  if (std::fflush(file_.get()) != 0)
    return make_error(ErrorCode::kIoError, "flush failed");
  return Status::ok();
}

Result<FileSource> FileSource::open(const std::string& path,
                                    FormatRegistry& registry) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    return Status(ErrorCode::kIoError, "cannot open '" + path + "'");
  FileSource source(file, registry);
  std::uint8_t header[12];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header))
    return Status(ErrorCode::kParseError, "'" + path + "' is not a PBIO file");
  if (std::memcmp(header, kFileMagic, 8) != 0)
    return Status(ErrorCode::kParseError, "bad PBIO file magic in '" + path + "'");
  std::uint32_t version =
      load_with_order<std::uint32_t>(header + 8, ByteOrder::kLittle);
  if (version != kFileVersion)
    return Status(ErrorCode::kUnsupported,
                  "PBIO file version " + std::to_string(version));
  return source;
}

Result<std::optional<std::vector<std::uint8_t>>> FileSource::next_record() {
  for (;;) {
    std::uint8_t frame[5];
    std::size_t got = std::fread(frame, 1, sizeof(frame), file_.get());
    if (got == 0 && std::feof(file_.get()))
      return std::optional<std::vector<std::uint8_t>>{};
    if (got != sizeof(frame))
      return Status(ErrorCode::kParseError, "truncated block frame");
    std::uint32_t length =
        load_with_order<std::uint32_t>(frame + 1, ByteOrder::kLittle);
    if (length > kMaxBlockBytes)
      return Status(ErrorCode::kParseError, "block length is implausible");
    std::vector<std::uint8_t> payload(length);
    if (length > 0 &&
        std::fread(payload.data(), 1, length, file_.get()) != length)
      return Status(ErrorCode::kParseError, "truncated block payload");

    switch (frame[0]) {
      case kBlockFormat: {
        XMIT_ASSIGN_OR_RETURN(auto format, deserialize_format(payload, limits_));
        XMIT_ASSIGN_OR_RETURN(auto adopted, registry_->adopt(std::move(format)));
        (void)adopted;
        ++formats_read_;
        continue;  // keep scanning for the next data record
      }
      case kBlockRecord:
        ++records_read_;
        return std::optional<std::vector<std::uint8_t>>(std::move(payload));
      default:
        return Status(ErrorCode::kParseError,
                      "unknown block type " + std::to_string(frame[0]));
    }
  }
}

}  // namespace xmit::pbio
