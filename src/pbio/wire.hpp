// PBIO wire record layout.
//
// A record is:   [ 32-byte header | fixed section | variable section ]
//
// The fixed section is a byte-for-byte image of the sender's in-memory
// structure with every pointer slot (strings, dynamic arrays) replaced by
// a variable-section offset + 1 (0 encodes a null pointer). The variable
// section holds string bytes (NUL-terminated) and dynamic array elements,
// in sender byte order. Nothing is converted on the sending side — that
// is PBIO's "sender writes native, receiver makes right" discipline, and
// the reason encode cost is dominated by memory copies (Figure 8).
//
// Header bytes (multi-byte header integers use the *sender's* byte order;
// the flags byte says which that is):
//   0..3   magic 'P' 'B' '1' '0'
//   4      wire version (currently 1)
//   5      flags: bit0 = big-endian sender, bit1 = 8-byte pointers
//   6..7   header size (u16) — room for extension
//   8..15  format id (u64)
//   16..19 fixed-section length (u32)
//   20..23 variable-section length (u32)
//   24..31 reserved, zero
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "pbio/format.hpp"

namespace xmit::pbio {

struct WireHeader {
  static constexpr std::size_t kSize = 32;
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::uint8_t kMagic[4] = {'P', 'B', '1', '0'};

  FormatId format_id = 0;
  ByteOrder byte_order = ByteOrder::kLittle;
  std::uint8_t pointer_size = 8;
  std::uint32_t fixed_length = 0;
  std::uint32_t var_length = 0;

  // 64-bit on purpose: fixed_length + var_length are attacker-controlled
  // u32s and their sum must not wrap on 32-bit size_t targets.
  std::uint64_t record_length() const {
    return kSize + std::uint64_t(fixed_length) + std::uint64_t(var_length);
  }
};

// Appends a fully-populated header to `out`.
void append_header(ByteBuffer& out, const WireHeader& header);

// Writes a header into an already-reserved 32-byte region at `offset`.
void patch_header(ByteBuffer& out, std::size_t offset,
                  const WireHeader& header);

// Parses and sanity-checks the header of `bytes`; the record may extend
// beyond the header (callers check record_length() against bytes.size()).
Result<WireHeader> parse_header(std::span<const std::uint8_t> bytes);

// Full consistency check: header parses and the record byte count matches
// the advertised section lengths exactly.
Result<WireHeader> parse_record(std::span<const std::uint8_t> bytes);

}  // namespace xmit::pbio
