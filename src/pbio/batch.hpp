// BatchDecoder: parallel decode of a stream of same-format records
// (DESIGN.md §5i).
//
// The Lemon observation (PAPERS.md): framed record streams parallelize
// trivially because every record is self-describing and independent — the
// only serial work is discovering the frame boundaries, which the session
// and the record log have already done by the time bytes reach us. A
// BatchDecoder owns a fixed pool of worker threads, each with its own
// Arena (out-of-line strings/arrays land there; the arena rewinds at
// every batch, preserving the zero-steady-state-allocation contract), and
// partitions each batch across them with an atomic cursor. Results are
// order-preserving by construction: record i decodes into the caller's
// i-th output slot no matter which worker picks it up, and
// decode_stream() delivers slots strictly in sequence.
//
// Error semantics: every record is attempted; the returned Status is the
// failure with the lowest record index (Status::ok() when all decode).
// Output slots of failed records hold unspecified bytes.
//
// A BatchDecoder is NOT itself thread-safe: one batch at a time. The
// underlying Decoder is shared and const — its plan cache carries its own
// lock — so several BatchDecoders may share one Decoder.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"

namespace xmit::pbio {

class BatchDecoder {
 public:
  // `workers` threads are spawned eagerly and live until destruction;
  // clamped to [1, kMaxWorkers]. `decoder` must outlive the BatchDecoder.
  explicit BatchDecoder(const Decoder& decoder, std::size_t workers);
  ~BatchDecoder();

  BatchDecoder(const BatchDecoder&) = delete;
  BatchDecoder& operator=(const BatchDecoder&) = delete;

  static constexpr std::size_t kMaxWorkers = 64;

  // One record to decode: its complete wire bytes and the caller-owned
  // output slot (at least receiver.struct_size() bytes, suitably aligned).
  struct Request {
    std::span<const std::uint8_t> bytes;
    void* out = nullptr;
  };

  // Decodes every request against `receiver` (a host-arch format).
  // Out-of-line data lives in the per-worker arenas and is valid until
  // the next batch on this BatchDecoder (or destruction).
  Status decode_batch(std::span<const Request> requests,
                      const Format& receiver);

  // Convenience: record i decodes into `out + i * stride`. `stride` must
  // be at least receiver.struct_size().
  Status decode_batch(std::span<const std::span<const std::uint8_t>> records,
                      const Format& receiver, void* out, std::size_t stride);

  // Pull-based pipeline for replay paths (RecordLog cursors, session
  // drains): `next` fills one complete wire record and returns false at
  // end of stream; records are decoded in windows of `window` (0 = 4 *
  // workers) across the pool, and `deliver` observes every decoded struct
  // strictly in stream order. The struct pointer handed to `deliver` is
  // valid only during the call. Returns the number of records delivered.
  using NextRecord = std::function<Result<bool>(std::vector<std::uint8_t>*)>;
  using Deliver = std::function<Status(std::uint64_t index, const void*)>;
  Result<std::uint64_t> decode_stream(const NextRecord& next,
                                      const Format& receiver,
                                      const Deliver& deliver,
                                      std::size_t window = 0);

  std::size_t workers() const { return workers_; }
  std::uint64_t records_decoded() const { return records_decoded_; }
  std::uint64_t batches() const { return batches_; }

 private:
  void worker_main(std::size_t worker_index);
  void run_worker(std::size_t worker_index);
  void record_error(std::size_t index, Status status);

  const Decoder* decoder_;
  std::size_t workers_;
  std::vector<std::unique_ptr<Arena>> arenas_;  // one per worker
  std::vector<std::thread> threads_;

  // Batch hand-off. The pointers below are written under `mu_` before the
  // generation bump and read by workers after they observe it, so the
  // mutex carries the happens-before edge; only the index cursor is
  // contended and it is a plain atomic.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  bool stop_ = false;                       // guarded by mu_
  std::uint64_t generation_ = 0;            // guarded by mu_
  std::size_t workers_done_ = 0;            // guarded by mu_
  const Request* batch_reqs_ = nullptr;     // guarded by mu_ (hand-off)
  std::size_t batch_count_ = 0;             // guarded by mu_ (hand-off)
  const Format* batch_receiver_ = nullptr;  // guarded by mu_ (hand-off)
  Status first_error_;                      // guarded by mu_
  std::size_t first_error_index_ = 0;       // guarded by mu_
  std::atomic<std::size_t> cursor_{0};

  // Stream state, reused across windows so steady-state windows allocate
  // nothing once buffer capacities have grown.
  std::vector<std::vector<std::uint8_t>> stream_buffers_;
  std::vector<std::max_align_t> stream_outs_;
  std::vector<Request> stream_requests_;

  std::uint64_t records_decoded_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace xmit::pbio
