// XML-as-wire-format baseline (what the paper argues *against* in §4.1).
//
// Encodes a structure as ASCII XML in the Figure 1 shape — one element per
// field, one element per array item — and decodes by parsing the document
// back. Costs are intentionally those of any text wire format: number
// formatting/parsing per value and a 3-8x size expansion. The encode and
// decode paths are honest, tuned implementations (streaming writer, single
// DOM pass) so the measured gap versus PBIO is the *format's* cost, not an
// artificial slowdown.
#pragma once

#include <string>
#include <string_view>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "pbio/format.hpp"

namespace xmit::baseline {

class XmlWireCodec {
 public:
  // `format` must describe host-architecture structures.
  static Result<XmlWireCodec> make(pbio::FormatPtr format);

  const pbio::Format& format() const { return *format_; }

  // Struct -> XML text. Appends to `out` (cleared first).
  Status encode(const void* record, std::string& out) const;
  Result<std::string> encode(const void* record) const;

  // XML text -> struct. Out-of-line data goes to `arena`. Dynamic array
  // count fields are set from the observed element repetition count.
  Status decode(std::string_view text, void* out, Arena& arena) const;

  // Size of the XML encoding without materializing it (expansion-factor
  // reporting).
  Result<std::size_t> encoded_size(const void* record) const;

 private:
  explicit XmlWireCodec(pbio::FormatPtr format) : format_(std::move(format)) {}

  Status encode_fields(const pbio::Format& format, const void* record,
                       std::string& out) const;

  pbio::FormatPtr format_;
};

}  // namespace xmit::baseline
