#include "baseline/cdr.hpp"

#include <cstring>

#include "common/bytes.hpp"
#include "pbio/scalar.hpp"

namespace xmit::baseline {
namespace {

using pbio::ArrayMode;
using pbio::FieldKind;
using pbio::FlatField;
using pbio::FormatPtr;

// CDR alignment restarts at the message body origin; kSize covers the
// endian flag + padding.
constexpr std::size_t kBodyOrigin = 4;

std::size_t cdr_alignment(const FlatField& field) {
  std::size_t align = field.size;
  return align > 8 ? 8 : align;
}

Result<std::int64_t> host_count(const std::uint8_t* record,
                                const FlatField& field) {
  XMIT_ASSIGN_OR_RETURN(
      auto scalar, pbio::load_scalar(record + field.count_offset,
                                     field.count_kind, field.count_size,
                                     host_byte_order()));
  std::int64_t count = scalar.as_signed();
  if (count < 0)
    return Status(ErrorCode::kInvalidArgument,
                  "negative count for '" + field.path + "'");
  return count;
}

}  // namespace

Result<CdrCodec> CdrCodec::make(FormatPtr format) {
  if (!format) return Status(ErrorCode::kInvalidArgument, "null format");
  if (!(format->arch() == pbio::ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "CDR codec requires host-architecture formats");
  return CdrCodec(std::move(format));
}

Result<std::vector<std::uint8_t>> CdrCodec::encode(const void* record) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  ByteBuffer out;
  out.append_byte(host_byte_order() == ByteOrder::kLittle ? 1 : 0);
  out.append_zeros(kBodyOrigin - 1);
  const ByteOrder order = host_byte_order();

  auto align_stream = [&](std::size_t alignment) {
    // Alignment is computed relative to the body origin.
    std::size_t body = out.size() - kBodyOrigin;
    out.append_zeros(align_up(body, alignment) - body);
  };

  for (const auto& field : format_->flat_fields()) {
    if (field.kind == FieldKind::kString) {
      const std::uint32_t elems =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      for (std::uint32_t i = 0; i < elems; ++i) {
        const char* str = load_raw<const char*>(
            bytes + field.offset + std::size_t(i) * sizeof(void*));
        std::size_t len = str == nullptr ? 0 : std::strlen(str);
        align_stream(4);
        out.append_u32(static_cast<std::uint32_t>(len + 1), order);
        if (str != nullptr) out.append(str, len);
        out.append_byte(0);
      }
      continue;
    }

    if (field.array_mode == ArrayMode::kDynamic) {
      XMIT_ASSIGN_OR_RETURN(auto count, host_count(bytes, field));
      const auto* data = load_raw<const std::uint8_t*>(bytes + field.offset);
      if (data == nullptr && count > 0)
        return Status(ErrorCode::kInvalidArgument,
                      "null array '" + field.path + "'");
      align_stream(4);
      out.append_u32(static_cast<std::uint32_t>(count), order);
      align_stream(cdr_alignment(field));
      // CDR sequences of primitives are contiguous in both stream and
      // memory, but an ORB still copies through its marshal buffer.
      if (count > 0) out.append(data, std::size_t(count) * field.size);
      continue;
    }

    const std::uint32_t elems =
        field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
    align_stream(cdr_alignment(field));
    // Within a fixed array all elements share alignment; copy per element
    // (alignment in the struct and the stream agree element-to-element).
    out.append(bytes + field.offset, std::size_t(elems) * field.size);
  }
  return out.take();
}

Result<std::size_t> CdrCodec::encoded_size(const void* record) const {
  XMIT_ASSIGN_OR_RETURN(auto encoded, encode(record));
  return encoded.size();
}

Status CdrCodec::decode(std::span<const std::uint8_t> bytes, void* out,
                        Arena& arena) const {
  if (bytes.size() < kBodyOrigin)
    return make_error(ErrorCode::kOutOfRange, "CDR stream too short");
  const ByteOrder order =
      bytes[0] == 1 ? ByteOrder::kLittle : ByteOrder::kBig;
  ByteReader reader(bytes.data(), bytes.size());
  XMIT_RETURN_IF_ERROR(reader.skip(kBodyOrigin));
  auto* dst = static_cast<std::uint8_t*>(out);
  std::memset(dst, 0, format_->struct_size());

  auto align_stream = [&](std::size_t alignment) -> Status {
    std::size_t body = reader.position() - kBodyOrigin;
    return reader.seek(kBodyOrigin + align_up(body, alignment));
  };

  for (const auto& field : format_->flat_fields()) {
    if (field.kind == FieldKind::kString) {
      const std::uint32_t elems =
          field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
      for (std::uint32_t i = 0; i < elems; ++i) {
        XMIT_RETURN_IF_ERROR(align_stream(4));
        XMIT_ASSIGN_OR_RETURN(auto len, reader.read_u32(order));
        if (len == 0)
          return make_error(ErrorCode::kParseError,
                            "CDR string with zero length");
        XMIT_ASSIGN_OR_RETURN(auto text, reader.read_string(len));
        if (text.back() != '\0')
          return make_error(ErrorCode::kParseError,
                            "CDR string missing terminator");
        char* copy = arena.duplicate_string(text.data(), text.size() - 1);
        store_raw(dst + field.offset + std::size_t(i) * sizeof(void*), copy);
      }
      continue;
    }

    if (field.array_mode == ArrayMode::kDynamic) {
      XMIT_RETURN_IF_ERROR(align_stream(4));
      XMIT_ASSIGN_OR_RETURN(auto count, reader.read_u32(order));
      XMIT_RETURN_IF_ERROR(align_stream(cdr_alignment(field)));
      std::size_t payload = std::size_t(count) * field.size;
      if (payload > reader.remaining())
        return make_error(ErrorCode::kOutOfRange,
                          "CDR sequence extends past stream end");
      auto* data = static_cast<std::uint8_t*>(
          arena.allocate(payload == 0 ? 1 : payload, cdr_alignment(field)));
      XMIT_RETURN_IF_ERROR(reader.read_bytes(data, payload));
      if (order != host_byte_order() && field.size > 1)
        for (std::uint32_t i = 0; i < count; ++i)
          bswap_inplace(data + std::size_t(i) * field.size, field.size);
      store_raw(dst + field.offset, count == 0 ? nullptr : data);
      pbio::store_scalar(dst + field.count_offset, field.count_kind,
                         field.count_size,
                         pbio::ScalarValue::from_unsigned(count),
                         host_byte_order());
      continue;
    }

    const std::uint32_t elems =
        field.array_mode == ArrayMode::kFixed ? field.fixed_count : 1;
    XMIT_RETURN_IF_ERROR(align_stream(cdr_alignment(field)));
    XMIT_RETURN_IF_ERROR(reader.read_bytes(
        dst + field.offset, std::size_t(elems) * field.size));
    if (order != host_byte_order() && field.size > 1)
      for (std::uint32_t i = 0; i < elems; ++i)
        bswap_inplace(dst + field.offset + std::size_t(i) * field.size,
                      field.size);
  }
  return Status::ok();
}

}  // namespace xmit::baseline
