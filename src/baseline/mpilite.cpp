#include "baseline/mpilite.hpp"

#include <algorithm>
#include <cstring>

namespace xmit::baseline::mpi {

std::size_t basic_size(BasicType type) {
  switch (type) {
    case BasicType::kChar:
    case BasicType::kByte:
      return 1;
    case BasicType::kShort:
      return 2;
    case BasicType::kInt:
    case BasicType::kUnsigned:
    case BasicType::kFloat:
      return 4;
    case BasicType::kLong:
    case BasicType::kUnsignedLong:
    case BasicType::kDouble:
      return 8;
  }
  return 0;
}

Datatype Datatype::basic(BasicType type) {
  Datatype out;
  out.typemap_.push_back({type, 0});
  out.packed_size_ = basic_size(type);
  out.extent_ = basic_size(type);
  return out;
}

Datatype Datatype::contiguous(std::size_t count, const Datatype& element) {
  Datatype out;
  out.typemap_.reserve(count * element.typemap_.size());
  for (std::size_t i = 0; i < count; ++i)
    for (const auto& entry : element.typemap_)
      out.typemap_.push_back(
          {entry.basic, i * element.extent_ + entry.displacement});
  out.packed_size_ = count * element.packed_size_;
  out.extent_ = count * element.extent_;
  return out;
}

Datatype Datatype::vector(std::size_t count, std::size_t block_length,
                          std::size_t stride, const Datatype& element) {
  Datatype out;
  for (std::size_t block = 0; block < count; ++block) {
    std::size_t block_base = block * stride * element.extent_;
    for (std::size_t i = 0; i < block_length; ++i)
      for (const auto& entry : element.typemap_)
        out.typemap_.push_back(
            {entry.basic,
             block_base + i * element.extent_ + entry.displacement});
  }
  out.packed_size_ = count * block_length * element.packed_size_;
  std::size_t max_extent = 0;
  for (const auto& entry : out.typemap_)
    max_extent = std::max(max_extent,
                          entry.displacement + basic_size(entry.basic));
  out.extent_ = max_extent;
  return out;
}

Result<Datatype> Datatype::create_struct(
    const std::vector<StructBlock>& blocks) {
  if (blocks.empty())
    return Status(ErrorCode::kInvalidArgument, "empty struct datatype");
  Datatype out;
  for (const auto& block : blocks) {
    for (std::size_t i = 0; i < block.count; ++i) {
      std::size_t element_base =
          block.displacement + i * block.type.extent_;
      for (const auto& entry : block.type.typemap_)
        out.typemap_.push_back(
            {entry.basic, element_base + entry.displacement});
    }
    out.packed_size_ += block.count * block.type.packed_size_;
  }
  std::size_t max_extent = 0;
  for (const auto& entry : out.typemap_)
    max_extent = std::max(max_extent,
                          entry.displacement + basic_size(entry.basic));
  out.extent_ = max_extent;
  return out;
}

void Datatype::commit() {
  if (committed_) return;
  // Dataloop optimization: merge typemap entries that are byte-adjacent in
  // the origin buffer into single segments (typemaps are emitted in
  // monotonically non-decreasing displacement order by the constructors;
  // guard anyway so hand-ordered struct blocks stay correct).
  segments_.clear();
  for (const auto& entry : typemap_) {
    std::size_t length = basic_size(entry.basic);
    if (!segments_.empty() &&
        segments_.back().displacement + segments_.back().length ==
            entry.displacement) {
      segments_.back().length += length;
    } else {
      segments_.push_back({entry.displacement, length});
    }
  }
  committed_ = true;
}

namespace {

// The segment walk MPICH's dataloop interpreter runs per instance: one
// dispatch + memcpy per contiguous segment.
template <bool kPacking>
void walk_segments(const Datatype& type, const std::uint8_t* in,
                   std::uint8_t* out, std::size_t& packed_cursor) {
  for (const auto& segment : type.segments()) {
    if constexpr (kPacking)
      std::memcpy(out + packed_cursor, in + segment.displacement,
                  segment.length);
    else
      std::memcpy(out + segment.displacement, in + packed_cursor,
                  segment.length);
    packed_cursor += segment.length;
  }
}

}  // namespace

Status pack(const void* inbuf, std::size_t count, const Datatype& type,
            void* outbuf, std::size_t outbuf_size, std::size_t& position) {
  if (!type.committed())
    return make_error(ErrorCode::kInvalidArgument, "datatype not committed");
  if (position + count * type.size() > outbuf_size)
    return make_error(ErrorCode::kOutOfRange, "pack buffer too small");
  const auto* in = static_cast<const std::uint8_t*>(inbuf);
  auto* out = static_cast<std::uint8_t*>(outbuf);
  for (std::size_t i = 0; i < count; ++i)
    walk_segments<true>(type, in + i * type.extent(), out, position);
  return Status::ok();
}

Status unpack(const void* inbuf, std::size_t inbuf_size, std::size_t& position,
              void* outbuf, std::size_t count, const Datatype& type) {
  if (!type.committed())
    return make_error(ErrorCode::kInvalidArgument, "datatype not committed");
  if (position + count * type.size() > inbuf_size)
    return make_error(ErrorCode::kOutOfRange, "unpack past end of buffer");
  const auto* in = static_cast<const std::uint8_t*>(inbuf);
  auto* out = static_cast<std::uint8_t*>(outbuf);
  for (std::size_t i = 0; i < count; ++i)
    walk_segments<false>(type, in, out + i * type.extent(), position);
  return Status::ok();
}

}  // namespace xmit::baseline::mpi
