// CORBA CDR / IIOP-flavoured codec — the CORBA baseline of Figure 8.
//
// GIOP message bodies use Common Data Representation: primitives aligned
// to their natural boundary within the stream, strings as u32 length +
// bytes + NUL, sequences as u32 count + elements, and a leading byte-order
// flag so the *reader* makes right. Unlike PBIO, the layout of the stream
// never matches the in-memory struct (alignment restarts at the stream
// origin), so encode and decode both walk field-by-field and always copy —
// the property the paper's §5 calls out for IIOP.
#pragma once

#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "pbio/format.hpp"

namespace xmit::baseline {

class CdrCodec {
 public:
  // `format` must describe host-architecture structures.
  static Result<CdrCodec> make(pbio::FormatPtr format);

  const pbio::Format& format() const { return *format_; }

  // Struct -> CDR stream (1-byte endian flag + 3 pad bytes + body).
  Result<std::vector<std::uint8_t>> encode(const void* record) const;

  // CDR stream -> struct; honours the sender's byte-order flag.
  Status decode(std::span<const std::uint8_t> bytes, void* out,
                Arena& arena) const;

  Result<std::size_t> encoded_size(const void* record) const;

 private:
  explicit CdrCodec(pbio::FormatPtr format) : format_(std::move(format)) {}

  pbio::FormatPtr format_;
};

}  // namespace xmit::baseline
