#include "baseline/xmlwire.hpp"

#include <cstring>

#include "common/strings.hpp"
#include "pbio/scalar.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace xmit::baseline {
namespace {

using pbio::ArrayMode;
using pbio::FieldKind;
using pbio::FieldType;
using pbio::Format;
using pbio::FormatPtr;
using pbio::IOField;

std::string scalar_to_text(const std::uint8_t* at, FieldKind kind,
                           std::uint32_t size) {
  auto value = pbio::load_scalar(at, kind, size, host_byte_order());
  // load_scalar only fails on malformed metadata, which make() prevents.
  const pbio::ScalarValue& v = value.value();
  switch (kind) {
    case FieldKind::kFloat:
      return size == 4 ? format_float(static_cast<float>(v.as_real()))
                       : format_double(v.as_real());
    case FieldKind::kInteger:
      return format_int(v.as_signed());
    case FieldKind::kUnsigned:
      return format_uint(v.as_unsigned());
    case FieldKind::kBoolean:
      return v.as_unsigned() ? "true" : "false";
    case FieldKind::kChar:
      return std::string(1, static_cast<char>(v.as_unsigned()));
    default:
      return "";
  }
}

Status text_to_scalar(std::string_view text, FieldKind kind,
                      std::uint32_t size, std::uint8_t* at) {
  pbio::ScalarValue value;
  switch (kind) {
    case FieldKind::kFloat: {
      XMIT_ASSIGN_OR_RETURN(auto real, parse_double(text));
      value = pbio::ScalarValue::from_real(real);
      break;
    }
    case FieldKind::kInteger: {
      XMIT_ASSIGN_OR_RETURN(auto integer, parse_int(text));
      value = pbio::ScalarValue::from_signed(integer);
      break;
    }
    case FieldKind::kUnsigned: {
      XMIT_ASSIGN_OR_RETURN(auto unsigned_value, parse_uint(text));
      value = pbio::ScalarValue::from_unsigned(unsigned_value);
      break;
    }
    case FieldKind::kBoolean:
      if (text == "true" || text == "1")
        value = pbio::ScalarValue::from_unsigned(1);
      else if (text == "false" || text == "0")
        value = pbio::ScalarValue::from_unsigned(0);
      else
        return make_error(ErrorCode::kParseError,
                          "bad boolean '" + std::string(text) + "'");
      break;
    case FieldKind::kChar:
      if (text.size() != 1)
        return make_error(ErrorCode::kParseError,
                          "bad char '" + std::string(text) + "'");
      value = pbio::ScalarValue::from_unsigned(
          static_cast<unsigned char>(text[0]));
      break;
    default:
      return make_error(ErrorCode::kInternal, "non-scalar kind");
  }
  pbio::store_scalar(at, kind, size, value, host_byte_order());
  return Status::ok();
}

const FormatPtr* nested_named(const Format& format, std::string_view name) {
  for (const auto& nested : format.nested_formats())
    if (nested->name() == name) return &nested;
  return nullptr;
}

// Runtime element count of a dynamic array, read from the host struct.
Result<std::int64_t> dynamic_count(const Format& format, const IOField& field,
                                   const FieldType& type,
                                   const std::uint8_t* record) {
  const IOField* count_field = format.field_named(type.array.size_field);
  if (count_field == nullptr)
    return Status(ErrorCode::kNotFound,
                  "missing size field '" + type.array.size_field + "'");
  XMIT_ASSIGN_OR_RETURN(auto count_type,
                        pbio::parse_field_type(count_field->type_name));
  XMIT_ASSIGN_OR_RETURN(
      auto scalar, pbio::load_scalar(record + count_field->offset,
                                     count_type.kind, count_field->size,
                                     host_byte_order()));
  std::int64_t count = scalar.as_signed();
  if (count < 0)
    return Status(ErrorCode::kInvalidArgument,
                  "negative count for '" + field.name + "'");
  return count;
}

}  // namespace

Result<XmlWireCodec> XmlWireCodec::make(FormatPtr format) {
  if (!format) return Status(ErrorCode::kInvalidArgument, "null format");
  if (!(format->arch() == pbio::ArchInfo::host()))
    return Status(ErrorCode::kInvalidArgument,
                  "XML codec requires host-architecture formats");
  return XmlWireCodec(std::move(format));
}

Status XmlWireCodec::encode_fields(const Format& format, const void* record,
                                   std::string& out) const {
  const auto* bytes = static_cast<const std::uint8_t*>(record);
  xml::StreamWriter writer(out);

  for (const auto& field : format.fields()) {
    XMIT_ASSIGN_OR_RETURN(auto type, pbio::parse_field_type(field.type_name));

    if (type.kind == FieldKind::kNested) {
      const FormatPtr* nested = nested_named(format, type.nested_format);
      if (nested == nullptr)
        return make_error(ErrorCode::kNotFound,
                          "unresolved nested type in '" + field.name + "'");
      const std::uint32_t count =
          type.array.mode == ArrayMode::kFixed ? type.array.fixed_count : 1;
      for (std::uint32_t i = 0; i < count; ++i) {
        writer.open(field.name);
        XMIT_RETURN_IF_ERROR(encode_fields(
            **nested, bytes + field.offset + std::size_t(i) * field.size, out));
        writer.close(field.name);
      }
      continue;
    }

    if (type.kind == FieldKind::kString) {
      const char* str = load_raw<const char*>(bytes + field.offset);
      writer.text_element(field.name, str == nullptr ? "" : str);
      continue;
    }

    switch (type.array.mode) {
      case ArrayMode::kNone:
        writer.text_element(field.name,
                            scalar_to_text(bytes + field.offset, type.kind,
                                           field.size));
        break;
      case ArrayMode::kFixed:
        for (std::uint32_t i = 0; i < type.array.fixed_count; ++i)
          writer.text_element(
              field.name,
              scalar_to_text(bytes + field.offset + std::size_t(i) * field.size,
                             type.kind, field.size));
        break;
      case ArrayMode::kDynamic: {
        XMIT_ASSIGN_OR_RETURN(auto count,
                              dynamic_count(format, field, type, bytes));
        const auto* data =
            load_raw<const std::uint8_t*>(bytes + field.offset);
        if (data == nullptr && count > 0)
          return make_error(ErrorCode::kInvalidArgument,
                            "null array '" + field.name + "' with count " +
                                std::to_string(count));
        for (std::int64_t i = 0; i < count; ++i)
          writer.text_element(
              field.name,
              scalar_to_text(data + std::size_t(i) * field.size, type.kind,
                             field.size));
        break;
      }
    }
  }
  return Status::ok();
}

Status XmlWireCodec::encode(const void* record, std::string& out) const {
  out.clear();
  xml::StreamWriter writer(out);
  writer.open(format_->name());
  XMIT_RETURN_IF_ERROR(encode_fields(*format_, record, out));
  writer.close(format_->name());
  return Status::ok();
}

Result<std::string> XmlWireCodec::encode(const void* record) const {
  std::string out;
  XMIT_RETURN_IF_ERROR(encode(record, out));
  return out;
}

Result<std::size_t> XmlWireCodec::encoded_size(const void* record) const {
  std::string out;
  XMIT_RETURN_IF_ERROR(encode(record, out));
  return out.size();
}

namespace {

// Decodes element children of `node` into the struct at `out` per
// `format`. Declared as a free function so it can recurse over nested
// formats.
Status decode_fields(const Format& format, const xml::Element& node,
                     std::uint8_t* out, Arena& arena) {
  auto children = node.child_elements();
  std::size_t cursor = 0;

  for (const auto& field : format.fields()) {
    XMIT_ASSIGN_OR_RETURN(auto type, pbio::parse_field_type(field.type_name));

    // Gather the consecutive run of children with this field's name.
    std::size_t first = cursor;
    while (cursor < children.size() &&
           children[cursor]->local_name() == field.name)
      ++cursor;
    std::size_t count = cursor - first;

    if (type.kind == FieldKind::kNested) {
      const FormatPtr* nested = nested_named(format, type.nested_format);
      if (nested == nullptr)
        return make_error(ErrorCode::kNotFound,
                          "unresolved nested type in '" + field.name + "'");
      const std::uint32_t expected =
          type.array.mode == ArrayMode::kFixed ? type.array.fixed_count : 1;
      if (count != expected)
        return make_error(ErrorCode::kParseError,
                          "element '" + field.name + "' occurs " +
                              std::to_string(count) + " times, expected " +
                              std::to_string(expected));
      for (std::size_t i = 0; i < count; ++i)
        XMIT_RETURN_IF_ERROR(decode_fields(
            **nested, *children[first + i],
            out + field.offset + i * field.size, arena));
      continue;
    }

    if (type.kind == FieldKind::kString) {
      if (count != 1)
        return make_error(ErrorCode::kParseError,
                          "string element '" + field.name + "' occurs " +
                              std::to_string(count) + " times");
      std::string text = children[first]->text();
      char* copy = arena.duplicate_string(text.data(), text.size());
      store_raw(out + field.offset, copy);
      continue;
    }

    switch (type.array.mode) {
      case ArrayMode::kNone: {
        if (count != 1)
          return make_error(ErrorCode::kParseError,
                            "element '" + field.name + "' occurs " +
                                std::to_string(count) + " times");
        std::string text = children[first]->text();
        XMIT_RETURN_IF_ERROR(text_to_scalar(trim(text), type.kind, field.size,
                                            out + field.offset));
        break;
      }
      case ArrayMode::kFixed: {
        if (count != type.array.fixed_count)
          return make_error(ErrorCode::kParseError,
                            "array '" + field.name + "' has " +
                                std::to_string(count) + " elements, expected " +
                                std::to_string(type.array.fixed_count));
        for (std::size_t i = 0; i < count; ++i) {
          std::string text = children[first + i]->text();
          XMIT_RETURN_IF_ERROR(
              text_to_scalar(trim(text), type.kind, field.size,
                             out + field.offset + i * field.size));
        }
        break;
      }
      case ArrayMode::kDynamic: {
        auto* data = static_cast<std::uint8_t*>(arena.allocate(
            count * field.size == 0 ? 1 : count * field.size,
            field.size > 8 ? 8 : field.size));
        for (std::size_t i = 0; i < count; ++i) {
          std::string text = children[first + i]->text();
          XMIT_RETURN_IF_ERROR(text_to_scalar(trim(text), type.kind, field.size,
                                              data + i * field.size));
        }
        store_raw(out + field.offset, count == 0 ? nullptr : data);
        // The observed repetition count wins over whatever the size-field
        // element said; keep them consistent.
        const IOField* count_field = format.field_named(type.array.size_field);
        if (count_field != nullptr) {
          XMIT_ASSIGN_OR_RETURN(auto count_type,
                                pbio::parse_field_type(count_field->type_name));
          pbio::store_scalar(out + count_field->offset, count_type.kind,
                             count_field->size,
                             pbio::ScalarValue::from_unsigned(count),
                             host_byte_order());
        }
        break;
      }
    }
  }

  if (cursor != children.size())
    return make_error(ErrorCode::kParseError,
                      "unexpected element '" +
                          std::string(children[cursor]->name()) + "' in '" +
                          format.name() + "'");
  return Status::ok();
}

}  // namespace

Status XmlWireCodec::decode(std::string_view text, void* out,
                            Arena& arena) const {
  XMIT_ASSIGN_OR_RETURN(auto document, xml::parse_document_strict(text));
  if (document.root->local_name() != format_->name())
    return make_error(ErrorCode::kParseError,
                      "root element '" + document.root->name() +
                          "' does not match format '" + format_->name() + "'");
  std::memset(out, 0, format_->struct_size());
  return decode_fields(*format_, *document.root,
                       static_cast<std::uint8_t*>(out), arena);
}

}  // namespace xmit::baseline
