// MPI-style derived datatypes with pack/unpack — the MPICH baseline of
// Figure 8.
//
// Faithful to the MPI-1 cost model the paper's reference [12] measured:
// a derived datatype commits to a flattened *typemap* (one entry per basic
// element, absolute displacements), and MPI_Pack walks that map copying
// each basic element individually into the contiguous pack buffer. For a
// 100-byte mixed struct that is a dozen small dispatched copies versus
// PBIO's single memcpy — the ~10x gap the paper cites. Contiguous runs of
// identical basics are *not* coalesced, matching MPICH-1's generic path
// for struct types.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"

namespace xmit::baseline::mpi {

enum class BasicType : std::uint8_t {
  kChar,
  kByte,
  kShort,
  kInt,
  kUnsigned,
  kLong,
  kUnsignedLong,
  kFloat,
  kDouble,
};

std::size_t basic_size(BasicType type);

struct TypeMapEntry {
  BasicType basic;
  std::size_t displacement;  // byte offset from the datatype's origin
};

// A maximal contiguous run in the typemap. MPICH's dataloop machinery
// coalesces adjacent same-stride elements so contiguous payloads move with
// memcpy; what remains per-segment is the interpreter walk — the overhead
// that makes small mixed structs ~an order costlier than PBIO's single
// copy while large contiguous payloads converge to memcpy speed.
struct Segment {
  std::size_t displacement;
  std::size_t length;
};

class Datatype {
 public:
  static Datatype basic(BasicType type);
  // `count` consecutive copies of `element` (MPI_Type_contiguous).
  static Datatype contiguous(std::size_t count, const Datatype& element);
  // `count` blocks of `block_length` elements, stride in elements
  // (MPI_Type_vector).
  static Datatype vector(std::size_t count, std::size_t block_length,
                         std::size_t stride, const Datatype& element);
  // Heterogeneous struct: per-block lengths/displacements/types
  // (MPI_Type_create_struct). StructBlock is defined after the class.
  static Result<Datatype> create_struct(
      const std::vector<struct StructBlock>& blocks);

  // Coalesces the typemap into contiguous segments; pack/unpack require a
  // committed type (as MPI does).
  void commit();
  bool committed() const { return committed_; }

  // Packed (contiguous) size of one instance.
  std::size_t size() const { return packed_size_; }
  // Span in the origin buffer (max displacement + element size).
  std::size_t extent() const { return extent_; }
  const std::vector<TypeMapEntry>& typemap() const { return typemap_; }
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  Datatype() = default;

  std::vector<TypeMapEntry> typemap_;
  std::vector<Segment> segments_;
  std::size_t packed_size_ = 0;
  std::size_t extent_ = 0;
  bool committed_ = false;
};

struct StructBlock {
  std::size_t count;
  std::size_t displacement;
  Datatype type;
};

// MPI_Pack: appends `count` instances of `type` read from `inbuf` to
// `outbuf` at `position` (updated). The output buffer must be large
// enough (pack_size()).
Status pack(const void* inbuf, std::size_t count, const Datatype& type,
            void* outbuf, std::size_t outbuf_size, std::size_t& position);

Status unpack(const void* inbuf, std::size_t inbuf_size, std::size_t& position,
              void* outbuf, std::size_t count, const Datatype& type);

inline std::size_t pack_size(std::size_t count, const Datatype& type) {
  return count * type.size();
}

}  // namespace xmit::baseline::mpi
