// MessageSession: a PBIO connection with in-band metadata.
//
// The paper's cost model (§4.2): "Small 'startup' overheads are incurred
// only during 'connection establishment', that is, each time an
// XMIT-based exchange is initiated and/or the structure of the data
// exchanged is modified", after which "PBIO-based communications can
// continue as if normal PBIO metadata were being used".
//
// MessageSession implements exactly that discipline over a Channel: the
// first time a format is sent on a session, its serialized metadata
// travels in-band ahead of the record (and again if an *evolved* format
// with the same name but a new id appears — the "structure modified"
// case). The receiver adopts announced formats into its registry
// transparently, so the peer needs no schema document, no HTTP fetch and
// no compiled-in tables — the connection is self-describing, like a PBIO
// data file but live.
//
// Frame format: [1-byte tag | payload]
//   tag 0x01  format announcement (pbio/format_wire serialization)
//   tag 0x02  data record (PBIO wire record)
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/limits.hpp"
#include "net/channel.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"

namespace xmit::session {

class MessageSession {
 public:
  // The session shares `registry`: announcements from the peer are
  // adopted into it; outgoing formats are announced from it.
  MessageSession(net::Channel channel, pbio::FormatRegistry& registry);

  MessageSession(MessageSession&&) = default;

  // Marshals `record` and sends it, announcing the encoder's format first
  // if this session has not carried it yet. Gather I/O over pooled scratch:
  // after the first few sends of a format the steady state copies only the
  // header (plus the slot-patched fixed section for var-bearing formats)
  // and performs no heap allocation.
  Status send(const pbio::Encoder& encoder, const void* record);

  // Sends an already-encoded record belonging to `format`.
  Status send_encoded(const pbio::Format& format,
                      std::span<const std::uint8_t> record);

  // Pre-announce a format without sending data (e.g. at startup, so the
  // receiver can bind before the first record arrives).
  Status announce(const pbio::Format& format);

  struct Incoming {
    std::vector<std::uint8_t> bytes;  // a complete PBIO wire record
    pbio::FormatPtr sender_format;
  };

  // Borrowed variant of Incoming: the record stays in the session's pooled
  // frame buffer, valid until the next receive/receive_view call. Pair
  // with an Arena the caller rewind()s between records for allocation-free
  // steady-state decode.
  struct IncomingView {
    std::span<const std::uint8_t> bytes;  // a complete PBIO wire record
    pbio::FormatPtr sender_format;
  };

  // Next data record; format announcements are consumed transparently.
  // kNotFound = peer closed cleanly, kTimeout = deadline elapsed.
  // Truncated or corrupted frames (a peer dying mid-record) surface as
  // clean kParseError/kOutOfRange statuses — the session object stays
  // usable and counts them in malformed_frames().
  //
  // Two defenses against a *hostile* peer, not just a dying one:
  //  - A format whose records fail structural inspection is quarantined:
  //    further records claiming that format id fail fast (kMalformedInput)
  //    without re-parsing, until a fresh announcement of the id clears it.
  //  - Each malformed frame draws down a per-peer budget
  //    (limits().max_malformed_frames); once exhausted the session is
  //    poisoned and every later receive() fails with kResourceExhausted.
  Result<Incoming> receive(int timeout_ms = 10000);

  // receive() without the copy into a fresh vector: frames land in a
  // pooled buffer whose capacity persists across calls, so once warmed the
  // receive path allocates nothing. Same quarantine/poisoning semantics.
  Result<IncomingView> receive_view(int timeout_ms = 10000);

  // Per-peer decode budgets; forwarded to the record decoder and applied
  // to announcement parsing and frame sizes.
  void set_limits(const DecodeLimits& limits);
  const DecodeLimits& limits() const { return limits_; }

  void close() { channel_.close(); }

  // Diagnostics for the amortization bench: how many metadata frames this
  // session sent/received versus data records.
  std::size_t announcements_sent() const { return announcements_sent_; }
  std::size_t announcements_received() const { return announcements_received_; }
  std::size_t records_sent() const { return records_sent_; }
  std::size_t metadata_bytes_sent() const { return metadata_bytes_sent_; }
  std::size_t malformed_frames() const { return malformed_frames_; }
  bool poisoned() const { return poisoned_; }
  bool is_quarantined(pbio::FormatId id) const {
    return quarantined_.contains(id);
  }

 private:
  // Counts a hostile/corrupt frame against the per-peer budget; returns
  // the (possibly upgraded) status to hand the caller.
  Status note_malformed(Status status);

  net::Channel channel_;
  pbio::FormatRegistry* registry_;
  std::unique_ptr<pbio::Decoder> decoder_;  // Decoder holds a mutex: heap-pin it
  DecodeLimits limits_ = DecodeLimits::defaults();
  std::set<pbio::FormatId> announced_;
  std::set<pbio::FormatId> quarantined_;
  // Pooled I/O state: capacity persists across messages (zero steady-state
  // allocations), contents are per-call.
  ByteBuffer send_scratch_;
  std::vector<IoSlice> send_slices_;
  std::vector<std::uint8_t> recv_frame_;
  bool poisoned_ = false;
  std::size_t announcements_sent_ = 0;
  std::size_t announcements_received_ = 0;
  std::size_t records_sent_ = 0;
  std::size_t metadata_bytes_sent_ = 0;
  std::size_t malformed_frames_ = 0;
};

// Convenience: a connected session pair over a socketpair, sharing
// *separate* registries (as two processes would).
struct SessionPair {
  MessageSession a;
  MessageSession b;
};
Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b);

}  // namespace xmit::session
