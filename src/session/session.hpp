// MessageSession: a PBIO connection with in-band metadata.
//
// The paper's cost model (§4.2): "Small 'startup' overheads are incurred
// only during 'connection establishment', that is, each time an
// XMIT-based exchange is initiated and/or the structure of the data
// exchanged is modified", after which "PBIO-based communications can
// continue as if normal PBIO metadata were being used".
//
// MessageSession implements exactly that discipline over a Channel: the
// first time a format is sent on a session, its serialized metadata
// travels in-band ahead of the record (and again if an *evolved* format
// with the same name but a new id appears — the "structure modified"
// case). The receiver adopts announced formats into its registry
// transparently, so the peer needs no schema document, no HTTP fetch and
// no compiled-in tables — the connection is self-describing, like a PBIO
// data file but live.
//
// Resumable sessions extend the same cost discipline to *recovery*: when
// the transport dies, a session holding a net::Endpoint re-dials (with
// retry/backoff), proves continuity with a handshake frame, and replays
// only the frames the receiver never acknowledged — including the format
// announcements the receiver lost, and nothing more. Delivery is
// at-least-once on the wire; receiver-side sequence dedup makes it
// effectively exactly-once for the caller. Quarantine, poison and limits
// state all survive a reconnect: a hostile peer cannot launder its
// reputation by dropping the connection.
//
// Frame format: [1-byte tag | payload]
//   tag 0x01  format announcement (pbio/format_wire serialization)
//   tag 0x02  data record: [u64 LE sequence number | PBIO wire record]
//   tag 0x03  handshake: [u8 flags | u64 session id | u32 epoch |
//             u64 last-seq-received]; flags bit0 = initiate (a reply is
//             requested); all other flag bits must be zero
//   tag 0x04  ping: [u64 last-seq-received]   (liveness probe + ack)
//   tag 0x05  pong: [u64 last-seq-received]   (probe answer + ack)
//   tag 0x06  durable range advert: [u64 first-seq | u64 last-seq] — a
//             durable sender, after each handshake, names the inclusive
//             range its on-disk log can replay on request
//   tag 0x07  replay request: [u64 from-seq] — ask a durable peer to
//             re-send history from `from-seq` (clamped to its log) as
//             ordinary tag-0x02 frames with their original sequence
//             numbers; a non-durable peer ignores the request
//
// Durable sessions (SessionOptions::durable_dir) extend resumability
// past process death: every outgoing record is appended to an fsynced
// write-ahead RecordLog *before* transmission, every announced format is
// persisted to a FormatCatalog, and the (session id, epoch) identity
// lives in an atomically-replaced meta file. A restarted sender reopens
// the directory, recovers its identity, formats and full send history,
// and resumes the same session — the receiver sees a normal epoch bump
// followed by an at-least-once replay its dedup already handles.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/limits.hpp"
#include "net/channel.hpp"
#include "net/endpoint.hpp"
#include "net/retry.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "storage/catalog.hpp"
#include "storage/log.hpp"

namespace xmit::session {

// Knobs for the resumption layer. The defaults suit tests and LAN use;
// production deployments tune the replay-buffer bound to their record
// rate times the longest outage they intend to ride out.
struct SessionOptions {
  bool resumable = false;       // keep a replay buffer; survive reconnects
  std::uint64_t session_id = 0; // 0 = generated (active) / adopted (passive)
  std::size_t replay_buffer_records = 256;          // unacked frames kept
  std::size_t replay_buffer_bytes = 4u << 20;       // and their byte bound
  int heartbeat_interval_ms = 500;   // ping cadence while receive is idle
  int liveness_deadline_ms = 5000;   // silent/unreachable peer => kTimeout
  net::RetryPolicy reconnect_backoff;  // dial policy for each reconnect

  // Durability: a non-empty directory turns the session durable (which
  // implies resumable). Outgoing records are write-ahead logged there —
  // appended and fsynced per `durable_fsync` *before* transmission — and
  // announced formats plus the session identity persist beside them, so
  // a restarted process resumes the same session from disk.
  std::string durable_dir;
  storage::FsyncPolicy durable_fsync = storage::FsyncPolicy::kAlways;
  std::uint64_t durable_segment_bytes = 8u << 20;
  std::size_t durable_retention_segments = 0;  // 0 = keep everything
};

class MessageSession {
 public:
  // The session shares `registry`: announcements from the peer are
  // adopted into it; outgoing formats are announced from it.
  MessageSession(net::Channel channel, pbio::FormatRegistry& registry);

  // Passive resumable flavour: runs over `channel` until it dies, then
  // waits (bounded by the liveness deadline) for a replacement to arrive
  // via attach() — the acceptor side of a reconnecting pair.
  MessageSession(net::Channel channel, pbio::FormatRegistry& registry,
                 SessionOptions options);

  // Active resumable flavour: dials `endpoint` on first use and re-dials
  // it whenever the transport dies. Always resumable.
  MessageSession(net::Endpoint endpoint, pbio::FormatRegistry& registry,
                 SessionOptions options = {});

  MessageSession(MessageSession&&) = default;

  // Active sessions: dial now instead of lazily on first send/receive.
  // Sends the initiate handshake; the peer's acceptor should accept and
  // wrap (or attach) the resulting channel.
  Status connect_now();

  // Hands a passive resumable session its replacement transport after a
  // drop. Thread-safe: listener/accept loops call this from any thread;
  // the session installs the channel at its next send/receive.
  void attach(net::Channel replacement);

  // Marshals `record` and sends it, announcing the encoder's format first
  // if this session has not carried it yet. Gather I/O over pooled scratch:
  // after the first few sends of a format the steady state copies only the
  // header (plus the slot-patched fixed section for var-bearing formats)
  // and performs no heap allocation. Resumable sessions additionally copy
  // the frame into the bounded replay buffer until the peer acks it.
  Status send(const pbio::Encoder& encoder, const void* record);

  // Sends an already-encoded record belonging to `format`.
  Status send_encoded(const pbio::Format& format,
                      std::span<const std::uint8_t> record);

  // Pre-announce a format without sending data (e.g. at startup, so the
  // receiver can bind before the first record arrives).
  Status announce(const pbio::Format& format);

  struct Incoming {
    std::vector<std::uint8_t> bytes;  // a complete PBIO wire record
    pbio::FormatPtr sender_format;
  };

  // Borrowed variant of Incoming: the record stays in the session's pooled
  // frame buffer, valid until the next receive/receive_view call. Pair
  // with an Arena the caller rewind()s between records for allocation-free
  // steady-state decode.
  struct IncomingView {
    std::span<const std::uint8_t> bytes;  // a complete PBIO wire record
    pbio::FormatPtr sender_format;
  };

  // Next data record; format announcements, handshakes and ping/pong are
  // consumed transparently. kNotFound = peer closed cleanly (non-resumable
  // only), kTimeout = deadline elapsed, kDataLoss = a sequence gap the
  // peer's replay buffer could not cover (reported once per gap).
  // Truncated or corrupted frames (a peer dying mid-record) surface as
  // clean kParseError/kOutOfRange statuses — the session object stays
  // usable and counts them in malformed_frames().
  //
  // Resumable sessions do not surface transport deaths at all: the loop
  // reconnects (active) or waits for attach() (passive) and keeps
  // receiving; only a peer silent/unreachable past the liveness deadline
  // surfaces, as kTimeout.
  //
  // Two defenses against a *hostile* peer, not just a dying one:
  //  - A format whose records fail structural inspection is quarantined:
  //    further records claiming that format id fail fast (kMalformedInput)
  //    without re-parsing, until a fresh announcement of the id clears it.
  //  - Each malformed frame draws down a per-peer budget
  //    (limits().max_malformed_frames); once exhausted the session is
  //    poisoned and every later receive() fails with kResourceExhausted.
  Result<Incoming> receive(int timeout_ms = 10000);

  // receive() without the copy into a fresh vector: frames land in a
  // pooled buffer whose capacity persists across calls, so once warmed the
  // receive path allocates nothing. Same quarantine/poisoning semantics.
  Result<IncomingView> receive_view(int timeout_ms = 10000);

  // Asks a durable peer to re-send its logged history from `from_seq`
  // (inclusive; clamped to the peer's durable range). The replayed
  // records arrive through receive() in order with their original
  // sequence numbers; the local dedup window is rewound so they are not
  // mistaken for a gap. A non-durable peer silently ignores the request.
  Status request_replay(std::uint64_t from_seq);

  // Per-peer decode budgets; forwarded to the record decoder and applied
  // to announcement parsing and frame sizes.
  void set_limits(const DecodeLimits& limits);
  const DecodeLimits& limits() const { return limits_; }

  void close() {
    closed_ = true;
    channel_.close();
  }

  // The live transport (test seam: chaos harnesses arm failures on it).
  net::Channel& channel() { return channel_; }
  const net::Channel& channel() const { return channel_; }

  // Diagnostics for the amortization bench: how many metadata frames this
  // session sent/received versus data records — and, for resumable
  // sessions, how much recovery work the resumption layer performed.
  std::size_t announcements_sent() const { return announcements_sent_; }
  std::size_t announcements_received() const { return announcements_received_; }
  std::size_t records_sent() const { return records_sent_; }
  std::size_t records_received() const { return records_received_; }
  std::size_t metadata_bytes_sent() const { return metadata_bytes_sent_; }
  std::size_t malformed_frames() const { return malformed_frames_; }
  std::size_t reconnects() const { return reconnects_; }
  std::size_t replayed_records() const { return replayed_records_; }
  std::size_t duplicates_discarded() const { return duplicates_discarded_; }
  std::size_t transport_losses() const { return transport_losses_; }
  std::uint64_t session_id() const { return session_id_; }
  std::uint32_t epoch() const { return epoch_; }
  bool poisoned() const { return poisoned_; }
  // Unacked records silently pushed out of the bounded replay buffer
  // with no durable-log copy to fall back on — each one is a record a
  // future resume cannot recover.
  std::size_t evicted_records() const { return evicted_records_; }
  bool durable() const { return durable_; }
  // Why durability is unavailable (open/append/fsync failure); OK while
  // the write-ahead path is healthy.
  Status durable_status() const { return durable_error_; }
  // The local log's replayable range; 0/0 when empty or not durable.
  std::uint64_t durable_first_seq() const {
    return log_ ? log_->first_seq() : 0;
  }
  std::uint64_t durable_last_seq() const {
    return log_ ? log_->last_seq() : 0;
  }
  // The peer's advertised durable range (tag 0x06); 0/0 until heard.
  std::uint64_t peer_durable_first() const { return peer_durable_first_; }
  std::uint64_t peer_durable_last() const { return peer_durable_last_; }
  bool is_quarantined(pbio::FormatId id) const {
    return quarantined_.contains(id);
  }

 private:
  // One unacknowledged outgoing frame, kept until the peer's ack covers
  // its sequence number (or the bounded buffer evicts it).
  struct ReplayEntry {
    std::uint64_t seq = 0;
    pbio::FormatId format_id = 0;  // 0 for frames with no format owner
    std::vector<std::uint8_t> frame;  // complete wire frame (tag included)
  };

  // Replacement transports arrive from other threads; heap-pinned so the
  // session object itself stays movable.
  struct AttachSlot {
    std::mutex mutex;
    std::optional<net::Channel> pending;
  };

  // Counts a hostile/corrupt frame against the per-peer budget; returns
  // the (possibly upgraded) status to hand the caller.
  Status note_malformed(Status status);

  // --- resumption machinery -------------------------------------------
  bool active() const { return endpoint_.can_dial(); }
  void install_pending_attach();
  void note_transport_lost();
  // Installs any attached channel; active sessions with a dead transport
  // reconnect here. Passive sessions return OK even when disconnected —
  // their sends buffer into the replay queue until the peer resumes.
  Status ready_to_send();
  // Blocks (bounded by budget_ms and the liveness deadline) until a
  // transport is live again: redials for active sessions, waits for
  // attach() for passive ones.
  Status await_transport(int budget_ms);
  Status reconnect(int budget_ms);
  Status send_handshake(bool initiate);
  Status process_handshake(std::span<const std::uint8_t> payload);
  // Validates and absorbs a peer ack (their last-seq-received): trims the
  // replay buffer and advances peer_acked_seq_.
  Status absorb_ack(std::uint64_t last_seq);
  // Re-sends every buffered frame past peer_acked_seq_, lazily
  // re-announcing each format whose announcement the peer may have lost.
  Status replay_unacked();
  void maybe_ping();
  // Appends a full wire frame to the replay buffer (resumable only) and
  // evicts from the front to stay within the configured bounds.
  void buffer_for_replay(std::uint64_t seq, pbio::FormatId format_id,
                         std::span<const IoSlice> slices);
  // Wire-writes one already-sequenced record frame, applying the
  // resumable failure policy (buffered passively / reconnect actively).
  Status transmit_record(std::span<const IoSlice> slices);

  // --- durability machinery -------------------------------------------
  // Opens log + catalog + meta under options_.durable_dir; failures land
  // in durable_error_ (constructors cannot fail) and surface on first
  // send/announce/connect.
  void init_durability();
  // Atomically persists (session id, epoch); called before any handshake
  // that presents a changed identity.
  Status persist_meta();
  // Write-ahead step of send: appends the record to the log (slices
  // exclude the 9-byte tag+seq head — seq and format id live in the
  // frame header). Fails, and keeps failing, once the log is poisoned.
  Status append_durable(std::uint64_t seq, pbio::FormatId format_id,
                        std::span<const IoSlice> slices);
  // Persists a format to the catalog (no-op when not durable / known).
  Status catalog_put(const pbio::Format& format);
  // Advertises [first, last] of the local log after a handshake.
  Status send_durable_advert();
  // Re-sends logged records in [from, to] as tag-0x02 frames with their
  // original seqs, re-announcing formats the peer may not know.
  Status stream_from_log(std::uint64_t from, std::uint64_t to);

  net::Channel channel_;
  net::Endpoint endpoint_;  // non-dialable for passive/plain sessions
  pbio::FormatRegistry* registry_;
  std::unique_ptr<pbio::Decoder> decoder_;  // Decoder holds a mutex: heap-pin it
  std::unique_ptr<AttachSlot> attach_slot_;
  SessionOptions options_;
  bool resumable_ = false;
  bool closed_ = false;
  DecodeLimits limits_ = DecodeLimits::defaults();
  std::set<pbio::FormatId> announced_;
  std::set<pbio::FormatId> quarantined_;
  // next_seq_ at the moment each format was announced by *us*: if the
  // peer's ack is below this, the announcement itself may be lost and the
  // format must be re-announced on resume. Peer-announced formats never
  // appear here and are never un-announced.
  std::map<pbio::FormatId, std::uint64_t> announce_seq_;
  // Pooled I/O state: capacity persists across messages (zero steady-state
  // allocations), contents are per-call.
  ByteBuffer send_scratch_;
  std::vector<IoSlice> send_slices_;
  std::vector<std::uint8_t> recv_frame_;
  std::array<std::uint8_t, 9> record_head_{};  // [tag | u64 LE seq]
  // Send-side sequencing and the bounded replay window.
  std::uint64_t next_seq_ = 1;
  std::uint64_t peer_acked_seq_ = 0;
  std::deque<ReplayEntry> replay_;
  std::size_t replay_bytes_ = 0;
  // Receive-side dedup state.
  std::uint64_t last_seq_received_ = 0;
  // Identity and liveness.
  std::uint64_t session_id_ = 0;
  std::uint32_t epoch_ = 0;
  Stopwatch clock_;
  double last_inbound_ms_ = 0;
  double last_ping_ms_ = -1e18;
  double transport_lost_ms_ = -1;  // <0: transport never lost yet
  bool poisoned_ = false;
  // Durability state. The log and catalog are heap-pinned (like the
  // decoder) so the session object stays movable.
  bool durable_ = false;
  std::unique_ptr<storage::RecordLog> log_;
  std::unique_ptr<storage::FormatCatalog> catalog_;
  Status durable_error_;
  std::size_t evicted_records_ = 0;
  bool eviction_logged_ = false;
  std::uint64_t peer_durable_first_ = 0;
  std::uint64_t peer_durable_last_ = 0;
  std::size_t announcements_sent_ = 0;
  std::size_t announcements_received_ = 0;
  std::size_t records_sent_ = 0;
  std::size_t records_received_ = 0;
  std::size_t metadata_bytes_sent_ = 0;
  std::size_t malformed_frames_ = 0;
  std::size_t reconnects_ = 0;
  std::size_t replayed_records_ = 0;
  std::size_t duplicates_discarded_ = 0;
  std::size_t transport_losses_ = 0;
};

// Convenience: a connected session pair over a socketpair, sharing
// *separate* registries (as two processes would).
struct SessionPair {
  MessageSession a;
  MessageSession b;
};
Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b);

// Convenience: a connected resumable session pair over real TCP —
// `a` actively dials the bundled listener, `b` is the accepted passive
// side. The listener rides along so recovery tests can re-accept after a
// kill and attach() the replacement to `b`.
struct TcpSessionPair {
  net::ChannelListener listener;
  MessageSession a;
  MessageSession b;
};
Result<TcpSessionPair> make_session_tcp(pbio::FormatRegistry& registry_a,
                                        pbio::FormatRegistry& registry_b,
                                        SessionOptions options = {});

}  // namespace xmit::session
