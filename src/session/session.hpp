// MessageSession: a PBIO connection with in-band metadata.
//
// The paper's cost model (§4.2): "Small 'startup' overheads are incurred
// only during 'connection establishment', that is, each time an
// XMIT-based exchange is initiated and/or the structure of the data
// exchanged is modified", after which "PBIO-based communications can
// continue as if normal PBIO metadata were being used".
//
// MessageSession implements exactly that discipline over a Channel: the
// first time a format is sent on a session, its serialized metadata
// travels in-band ahead of the record (and again if an *evolved* format
// with the same name but a new id appears — the "structure modified"
// case). The receiver adopts announced formats into its registry
// transparently, so the peer needs no schema document, no HTTP fetch and
// no compiled-in tables — the connection is self-describing, like a PBIO
// data file but live.
//
// Resumable sessions extend the same cost discipline to *recovery*: when
// the transport dies, a session holding a net::Endpoint re-dials (with
// retry/backoff), proves continuity with a handshake frame, and replays
// only the frames the receiver never acknowledged — including the format
// announcements the receiver lost, and nothing more. Delivery is
// at-least-once on the wire; receiver-side sequence dedup makes it
// effectively exactly-once for the caller. Quarantine, poison and limits
// state all survive a reconnect: a hostile peer cannot launder its
// reputation by dropping the connection.
//
// Frame format: [1-byte tag | payload]
//   tag 0x01  format announcement (pbio/format_wire serialization)
//   tag 0x02  data record: [u64 LE sequence number | PBIO wire record]
//   tag 0x03  handshake: [u8 flags | u64 session id | u32 epoch |
//             u64 last-seq-received]; flags bit0 = initiate (a reply is
//             requested); all other flag bits must be zero
//   tag 0x04  ping: [u64 last-seq-received]   (liveness probe + ack)
//   tag 0x05  pong: [u64 last-seq-received]   (probe answer + ack)
//   tag 0x06  durable range advert: [u64 first-seq | u64 last-seq] — a
//             durable sender, after each handshake, names the inclusive
//             range its on-disk log can replay on request
//   tag 0x07  replay request: [u64 from-seq] — ask a durable peer to
//             re-send history from `from-seq` (clamped to its log) as
//             ordinary tag-0x02 frames with their original sequence
//             numbers; a non-durable peer ignores the request
//   tag 0x08  credit grant: [u64 last-seq-received | u64 window-records |
//             u64 window-bytes] — a flow-controlled receiver's drain
//             budget. The ack piggybacks replay trimming; the windows
//             extend the sender's transmit allowance to
//             ack + window-records (cumulative, monotone) and cap unacked
//             in-flight payload bytes. Zero windows, absurd windows
//             (> 2^48), wrapping reach and reach rollback are hostile and
//             draw down the malformed-frame budget — an honest receiver
//             pauses a sender by *withholding* grants, never by granting
//             zero.
//   tag 0x09  shed notice: [u64 first-seq | u64 last-seq] — an overloaded
//             sender running SlowConsumerPolicy::kShedOldest names the
//             inclusive seq range it dropped, in-stream and in order, so
//             the receiver's dedup window advances without a phantom
//             kDataLoss gap and shed accounting stays exact on both ends.
//
// Durable sessions (SessionOptions::durable_dir) extend resumability
// past process death: every outgoing record is appended to an fsynced
// write-ahead RecordLog *before* transmission, every announced format is
// persisted to a FormatCatalog, and the (session id, epoch) identity
// lives in an atomically-replaced meta file. A restarted sender reopens
// the directory, recovers its identity, formats and full send history,
// and resumes the same session — the receiver sees a normal epoch bump
// followed by an at-least-once replay its dedup already handles.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/cache.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/limits.hpp"
#include "net/channel.hpp"
#include "net/endpoint.hpp"
#include "net/retry.hpp"
#include "pbio/batch.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "storage/catalog.hpp"
#include "storage/log.hpp"

namespace xmit::session {

// What an overloaded sender does when its bounded send queue reaches the
// soft watermark and the peer's credit cannot drain it.
enum class SlowConsumerPolicy : std::uint8_t {
  // Wait (pumping the queue and processing inbound credit) up to
  // send_block_deadline_ms, then fail the send with kResourceExhausted.
  // A peer silent past the liveness deadline fails with kTimeout instead:
  // slow-but-alive and dead are distinct verdicts.
  kBlockWithDeadline = 0,
  // Durable sessions only: drop queued records from memory — the
  // write-ahead log already holds them ("the ring is a cache, the log is
  // the truth") — and stream them back from disk when credit returns.
  // Sender memory stays bounded; no acked or logged record is ever lost.
  kSpillToLog,
  // Drop the oldest untransmitted queued records and tell the receiver
  // exactly which seq range died via a tag-0x09 shed notice, so gap
  // reporting stays truthful. Freshest data wins (telemetry shape).
  kShedOldest,
  // Drop the transport. The resumption machinery (replay buffer, durable
  // log) owns recovery if the peer ever comes back.
  kDisconnect,
};

// Knobs for the resumption layer. The defaults suit tests and LAN use;
// production deployments tune the replay-buffer bound to their record
// rate times the longest outage they intend to ride out.
struct SessionOptions {
  bool resumable = false;       // keep a replay buffer; survive reconnects
  std::uint64_t session_id = 0; // 0 = generated (active) / adopted (passive)
  std::size_t replay_buffer_records = 256;          // unacked frames kept
  std::size_t replay_buffer_bytes = 4u << 20;       // and their byte bound
  int heartbeat_interval_ms = 500;   // ping cadence while receive is idle
  int liveness_deadline_ms = 5000;   // silent/unreachable peer => kTimeout
  net::RetryPolicy reconnect_backoff;  // dial policy for each reconnect

  // Durability: a non-empty directory turns the session durable (which
  // implies resumable). Outgoing records are write-ahead logged there —
  // appended and fsynced per `durable_fsync` *before* transmission — and
  // announced formats plus the session identity persist beside them, so
  // a restarted process resumes the same session from disk.
  std::string durable_dir;
  storage::FsyncPolicy durable_fsync = storage::FsyncPolicy::kAlways;
  std::uint64_t durable_segment_bytes = 8u << 20;
  std::size_t durable_retention_segments = 0;  // 0 = keep everything
  // Flow control: sends enqueue into a bounded per-session queue drained
  // against tag-0x08 credit via nonblocking writes — a send never blocks
  // indefinitely on a slow peer. Both ends of a session should enable it
  // (a flow-controlled sender facing a peer that never grants credit is,
  // by definition, facing the zero-credit persona and applies its
  // SlowConsumerPolicy).
  bool flow_control = false;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlockWithDeadline;
  std::size_t send_queue_records = 256;      // hard queue bound (records)
  std::size_t send_queue_bytes = 4u << 20;   // and its byte bound
  double send_queue_watermark = 0.75;        // policy fires at this fill
  int send_block_deadline_ms = 2000;         // kBlockWithDeadline wait
  // Receiver side: the drain budget each 0x08 grant advertises.
  std::size_t receive_window_records = 128;
  std::size_t receive_window_bytes = 2u << 20;
  // receive_batch(): worker threads for parallel decode of the drained
  // records (DESIGN.md §5i). 0 or 1 decodes inline on the caller thread;
  // the pool is spawned lazily on the first receive_batch() call.
  std::size_t batch_decode_workers = 0;
  // Budget for the decoder's conversion-plan cache (DESIGN.md §5k).
  // Default unbounded. The session pins the plan of every (sender,
  // receiver) pair it batch-decodes, so a registration storm elsewhere in
  // the process can never evict a live session's decode path; a pin the
  // budget cannot honour is counted (plan_pin_failures()) and the pair
  // simply rebuilds its plan under pressure instead.
  CacheBudget plan_cache_budget;
};

class MessageSession {
 public:
  // The session shares `registry`: announcements from the peer are
  // adopted into it; outgoing formats are announced from it.
  MessageSession(net::Channel channel, pbio::FormatRegistry& registry);

  // Passive resumable flavour: runs over `channel` until it dies, then
  // waits (bounded by the liveness deadline) for a replacement to arrive
  // via attach() — the acceptor side of a reconnecting pair.
  MessageSession(net::Channel channel, pbio::FormatRegistry& registry,
                 SessionOptions options);

  // Active resumable flavour: dials `endpoint` on first use and re-dials
  // it whenever the transport dies. Always resumable.
  MessageSession(net::Endpoint endpoint, pbio::FormatRegistry& registry,
                 SessionOptions options = {});

  MessageSession(MessageSession&&) = default;

  // Active sessions: dial now instead of lazily on first send/receive.
  // Sends the initiate handshake; the peer's acceptor should accept and
  // wrap (or attach) the resulting channel.
  Status connect_now();

  // Hands a passive resumable session its replacement transport after a
  // drop. Thread-safe: listener/accept loops call this from any thread;
  // the session installs the channel at its next send/receive.
  void attach(net::Channel replacement);

  // Marshals `record` and sends it, announcing the encoder's format first
  // if this session has not carried it yet. Gather I/O over pooled scratch:
  // after the first few sends of a format the steady state copies only the
  // header (plus the slot-patched fixed section for var-bearing formats)
  // and performs no heap allocation. Resumable sessions additionally copy
  // the frame into the bounded replay buffer until the peer acks it.
  Status send(const pbio::Encoder& encoder, const void* record);

  // Sends an already-encoded record belonging to `format`.
  Status send_encoded(const pbio::Format& format,
                      std::span<const std::uint8_t> record);

  // Pre-announce a format without sending data (e.g. at startup, so the
  // receiver can bind before the first record arrives).
  Status announce(const pbio::Format& format);

  struct Incoming {
    std::vector<std::uint8_t> bytes;  // a complete PBIO wire record
    pbio::FormatPtr sender_format;
  };

  // Borrowed variant of Incoming: the record stays in the session's pooled
  // frame buffer, valid until the next receive/receive_view call. Pair
  // with an Arena the caller rewind()s between records for allocation-free
  // steady-state decode.
  struct IncomingView {
    std::span<const std::uint8_t> bytes;  // a complete PBIO wire record
    pbio::FormatPtr sender_format;
  };

  // Next data record; format announcements, handshakes and ping/pong are
  // consumed transparently. kNotFound = peer closed cleanly (non-resumable
  // only), kTimeout = deadline elapsed, kDataLoss = a sequence gap the
  // peer's replay buffer could not cover (reported once per gap).
  // Truncated or corrupted frames (a peer dying mid-record) surface as
  // clean kParseError/kOutOfRange statuses — the session object stays
  // usable and counts them in malformed_frames().
  //
  // Resumable sessions do not surface transport deaths at all: the loop
  // reconnects (active) or waits for attach() (passive) and keeps
  // receiving; only a peer silent/unreachable past the liveness deadline
  // surfaces, as kTimeout.
  //
  // Two defenses against a *hostile* peer, not just a dying one:
  //  - A format whose records fail structural inspection is quarantined:
  //    further records claiming that format id fail fast (kMalformedInput)
  //    without re-parsing, until a fresh announcement of the id clears it.
  //  - Each malformed frame draws down a per-peer budget
  //    (limits().max_malformed_frames); once exhausted the session is
  //    poisoned and every later receive() fails with kResourceExhausted.
  Result<Incoming> receive(int timeout_ms = 10000);

  // receive() without the copy into a fresh vector: frames land in a
  // pooled buffer whose capacity persists across calls, so once warmed the
  // receive path allocates nothing. Same quarantine/poisoning semantics.
  Result<IncomingView> receive_view(int timeout_ms = 10000);

  // Batched receive-and-decode (DESIGN.md §5i): waits up to `timeout_ms`
  // for the first data record, then greedily drains records the transport
  // already has queued — without further waiting — up to `max_records`,
  // and decodes the whole batch against `receiver` across the
  // options_.batch_decode_workers pool. Record i lands at
  // `out + i * stride` (stride >= receiver.struct_size()); out-of-line
  // strings/arrays live in the batch arenas and stay valid until the next
  // receive_batch() call. Returns the number of records decoded (>= 1; a
  // timeout before the first record surfaces as kTimeout). A peer close
  // or liveness failure mid-drain stops the drain and delivers what
  // already arrived; the next call reports the condition.
  Result<std::size_t> receive_batch(const pbio::Format& receiver, void* out,
                                    std::size_t stride,
                                    std::size_t max_records,
                                    int timeout_ms = 10000);

  // Asks a durable peer to re-send its logged history from `from_seq`
  // (inclusive; clamped to the peer's durable range). The replayed
  // records arrive through receive() in order with their original
  // sequence numbers; the local dedup window is rewound so they are not
  // mistaken for a gap. A non-durable peer silently ignores the request.
  Status request_replay(std::uint64_t from_seq);

  // Per-peer decode budgets; forwarded to the record decoder and applied
  // to announcement parsing and frame sizes.
  void set_limits(const DecodeLimits& limits);
  const DecodeLimits& limits() const { return limits_; }

  void close() {
    closed_ = true;
    channel_.close();
  }

  // The live transport (test seam: chaos harnesses arm failures on it).
  net::Channel& channel() { return channel_; }
  const net::Channel& channel() const { return channel_; }

  // Diagnostics for the amortization bench: how many metadata frames this
  // session sent/received versus data records — and, for resumable
  // sessions, how much recovery work the resumption layer performed.
  std::size_t announcements_sent() const { return announcements_sent_; }
  std::size_t announcements_received() const { return announcements_received_; }
  std::size_t records_sent() const { return records_sent_; }
  std::size_t records_received() const { return records_received_; }
  std::size_t metadata_bytes_sent() const { return metadata_bytes_sent_; }
  std::size_t malformed_frames() const { return malformed_frames_; }
  std::size_t reconnects() const { return reconnects_; }
  std::size_t replayed_records() const { return replayed_records_; }
  std::size_t duplicates_discarded() const { return duplicates_discarded_; }
  std::size_t transport_losses() const { return transport_losses_; }
  std::uint64_t session_id() const { return session_id_; }
  std::uint32_t epoch() const { return epoch_; }
  bool poisoned() const { return poisoned_; }
  // Unacked records silently pushed out of the bounded replay buffer
  // with no durable-log copy to fall back on — each one is a record a
  // future resume cannot recover.
  std::size_t evicted_records() const { return evicted_records_; }
  bool durable() const { return durable_; }
  // Why durability is unavailable (open/append/fsync failure); OK while
  // the write-ahead path is healthy.
  Status durable_status() const { return durable_error_; }
  // The local log's replayable range; 0/0 when empty or not durable.
  std::uint64_t durable_first_seq() const {
    return log_ ? log_->first_seq() : 0;
  }
  std::uint64_t durable_last_seq() const {
    return log_ ? log_->last_seq() : 0;
  }
  // The peer's advertised durable range (tag 0x06); 0/0 until heard.
  std::uint64_t peer_durable_first() const { return peer_durable_first_; }
  std::uint64_t peer_durable_last() const { return peer_durable_last_; }
  bool is_quarantined(pbio::FormatId id) const {
    return quarantined_.contains(id);
  }
  // Conversion plans pinned on behalf of this session's live (sender,
  // receiver) pairs; pins survive resume/replay and drop on quarantine.
  std::size_t plan_pins_held() const { return plan_pins_.size(); }
  // Pin attempts the plan-cache budget refused (kResourceExhausted).
  // Non-fatal: the pair still decodes, rebuilding its plan on demand.
  std::size_t plan_pin_failures() const { return plan_pin_failures_; }
  CacheStats plan_cache_stats() const { return decoder_->plan_cache_stats(); }

  // --- flow-control diagnostics ---------------------------------------
  bool flow_controlled() const { return options_.flow_control; }
  // Credit grants this end sent (receiver role) / absorbed (sender role).
  std::size_t credit_grants_sent() const { return credit_grants_sent_; }
  std::size_t credit_grants_received() const {
    return credit_grants_received_;
  }
  // Records the peer's cumulative credit still lets us put on the wire.
  std::uint64_t credit_records_available() const {
    return credit_seq_limit_ >= next_transmit_seq_
               ? credit_seq_limit_ - next_transmit_seq_ + 1
               : 0;
  }
  std::uint64_t credit_seq_limit() const { return credit_seq_limit_; }
  std::size_t send_queue_depth() const { return data_queue_records_; }
  std::size_t send_queue_bytes_now() const { return data_queue_bytes_; }
  // High-water marks since the session started: the bounded-memory proof.
  std::size_t send_queue_depth_peak() const { return send_queue_depth_peak_; }
  std::size_t send_queue_bytes_peak() const { return send_queue_bytes_peak_; }
  // Queued records dropped from memory in favour of the durable log
  // (kSpillToLog) — none of them is lost; the log streams them back.
  std::size_t records_spilled() const { return records_spilled_; }
  // Records dropped for good under kShedOldest, each one named to the
  // peer in a tag-0x09 notice.
  std::size_t records_shed() const { return records_shed_; }
  // Records the *peer* told us it shed (sum of 0x09 ranges received).
  std::uint64_t peer_shed_records() const { return peer_shed_records_; }
  // Total time sends spent blocked waiting for queue room or credit.
  double send_block_ms() const { return send_block_ms_; }

 private:
  // One unacknowledged outgoing frame, kept until the peer's ack covers
  // its sequence number (or the bounded buffer evicts it).
  struct ReplayEntry {
    std::uint64_t seq = 0;
    pbio::FormatId format_id = 0;  // 0 for frames with no format owner
    std::vector<std::uint8_t> frame;  // complete wire frame (tag included)
  };

  // Replacement transports arrive from other threads; heap-pinned so the
  // session object itself stays movable.
  struct AttachSlot {
    std::mutex mutex;
    std::optional<net::Channel> pending;
  };

  // Counts a hostile/corrupt frame against the per-peer budget; returns
  // the (possibly upgraded) status to hand the caller.
  Status note_malformed(Status status);

  // Pin the (sender, receiver) conversion plan on first batch use so
  // cache pressure cannot evict a live pair mid-session; budget refusals
  // are counted, never fatal.
  void pin_batch_plan(const pbio::FormatPtr& sender,
                      const pbio::Format& receiver);
  // Quarantining a sender format releases its pins — a poisoned format's
  // plans are fair game for eviction.
  void drop_plan_pins_for(pbio::FormatId sender_id);

  // --- resumption machinery -------------------------------------------
  bool active() const { return endpoint_.can_dial(); }
  void install_pending_attach();
  void note_transport_lost();
  // Installs any attached channel; active sessions with a dead transport
  // reconnect here. Passive sessions return OK even when disconnected —
  // their sends buffer into the replay queue until the peer resumes.
  Status ready_to_send();
  // Blocks (bounded by budget_ms and the liveness deadline) until a
  // transport is live again: redials for active sessions, waits for
  // attach() for passive ones.
  Status await_transport(int budget_ms);
  Status reconnect(int budget_ms);
  Status send_handshake(bool initiate);
  Status process_handshake(std::span<const std::uint8_t> payload);
  // Validates and absorbs a peer ack (their last-seq-received): trims the
  // replay buffer and advances peer_acked_seq_.
  Status absorb_ack(std::uint64_t last_seq);
  // Re-sends every buffered frame past peer_acked_seq_, lazily
  // re-announcing each format whose announcement the peer may have lost.
  Status replay_unacked();
  void maybe_ping();
  // Appends a full wire frame to the replay buffer (resumable only) and
  // evicts from the front to stay within the configured bounds.
  void buffer_for_replay(std::uint64_t seq, pbio::FormatId format_id,
                         std::span<const IoSlice> slices);
  // Wire-writes one already-sequenced record frame, applying the
  // resumable failure policy (buffered passively / reconnect actively).
  Status transmit_record(std::span<const IoSlice> slices);
  // Flow-controlled send tail: admission control, sequencing, WAL, then
  // the bounded queue — the pump owns the wire from here.
  Status queue_record(pbio::FormatId format_id,
                      std::span<const IoSlice> payload);

  // --- flow-control machinery -----------------------------------------
  // One queued outgoing frame. Control frames (announcements, heartbeats,
  // grants, shed notices) are credit-exempt; droppable ones (heartbeats,
  // grants) may be skipped when the control queue is full, because a
  // fresher copy always follows. `cursor` is the nonblocking
  // partial-write resumption offset into the wire image.
  struct QueuedFrame {
    std::uint64_t seq = 0;  // data seq; for a shed notice, the range end
    pbio::FormatId format_id = 0;
    bool control = false;
    std::size_t cursor = 0;
    std::vector<std::uint8_t> frame;  // complete frame payload, tag first
  };

  // Validates and applies a peer 0x08 credit grant. Order: length, zero
  // windows, absurd windows, u64 reach wrap, reach rollback, then the
  // ack itself — hostile values never touch credit state.
  Status process_credit(std::span<const std::uint8_t> payload);
  // Validates a peer 0x09 shed notice and advances the dedup window.
  // Returns kDataLoss only for records lost *silently* before the range.
  Status process_shed(std::span<const std::uint8_t> payload);
  // Receiver role: advertise [last_seq_received_, windows] when forced
  // (handshake, ping) or when half the window has drained since the last
  // grant.
  void maybe_grant(bool force);
  // Queues a control frame and lets the pump try to flush it. Returns
  // false when a droppable frame was skipped (control queue full).
  bool enqueue_control(std::span<const std::uint8_t> frame, bool droppable);
  // Rebuilds the tag-0x02 frame for `seq` from the durable log into
  // spill_frame_ (kSpillToLog streaming).
  Status load_spill_frame(std::uint64_t seq);
  // Flow-controlled inbound path: frames are re-assembled from a raw
  // nonblocking byte stream (Channel::recv_some), so the send paths can
  // drain acks/credit without ever blocking mid-frame. Blocking
  // receive_into and this assembler must never mix on one transport.
  Status fc_receive_frame(std::vector<std::uint8_t>& out, int timeout_ms);
  // Pops the next complete frame out of inbound_buf_ if one is ready.
  // Returns kUnavailable when more bytes are needed.
  Status extract_inbound_frame(std::vector<std::uint8_t>& out);
  // Drains control then data queues as far as the socket and the peer's
  // credit allow. Nonblocking: a would-block socket parks the frame at
  // its cursor. Starvation is not an error; transport deaths follow the
  // resumable policy (so the pump has no status to return).
  void pump_send_queue();
  // Nonblocking inbound sweep used by send paths and the block-wait loop:
  // absorbs acks/credit/pings in place, parks everything else for the
  // next receive_view. Keeps last_inbound_ms_ honest while sending.
  void poll_control();
  // Admission control, run BEFORE a sequence number is assigned or the
  // WAL appends: applies the SlowConsumerPolicy at the soft watermark so
  // a rejected send consumes no seq and leaves no log hole.
  Status admit_record(std::size_t frame_bytes);
  bool queue_over_watermark(std::size_t incoming_bytes) const;
  // kSpillToLog: drop queued, unstarted data frames — the WAL holds them;
  // the pump streams them back from disk when credit returns.
  void spill_queue();
  // kShedOldest: drop the oldest unstarted data frames, splice tag-0x09
  // notices in their place, scrub them from the replay buffer, count.
  Status shed_queue();
  // Inserts a 0x09 notice for [first, last] at `index` in the data queue
  // (so it precedes every surviving later record); returns the index just
  // past the notice.
  std::size_t splice_shed_notice(std::size_t index, std::uint64_t first,
                                 std::uint64_t last);
  // Durable sheds leave an auditable trace beside the log segments.
  void append_shed_sidecar(std::uint64_t first, std::uint64_t last);
  // True when a partial frame is mid-wire (no other bytes may interleave).
  bool partial_in_flight() const;
  // Drives any partial frame to completion (bounded); direct writes
  // (handshake replies, replay) are only legal once this succeeds.
  Status flush_partials(int budget_ms);
  void reset_partial_cursors();
  bool liveness_stale() const {
    return clock_.elapsed_ms() - last_inbound_ms_ >=
           options_.liveness_deadline_ms;
  }
  void note_queue_peaks();
  // Arms the channel-level send deadline on every transport this session
  // adopts, so a blocked send can never outlive the liveness deadline.
  void configure_transport();

  // --- durability machinery -------------------------------------------
  // Opens log + catalog + meta under options_.durable_dir; failures land
  // in durable_error_ (constructors cannot fail) and surface on first
  // send/announce/connect.
  void init_durability();
  // Atomically persists (session id, epoch); called before any handshake
  // that presents a changed identity.
  Status persist_meta();
  // Write-ahead step of send: appends the record to the log (slices
  // exclude the 9-byte tag+seq head — seq and format id live in the
  // frame header). Fails, and keeps failing, once the log is poisoned.
  Status append_durable(std::uint64_t seq, pbio::FormatId format_id,
                        std::span<const IoSlice> slices);
  // Persists a format to the catalog (no-op when not durable / known).
  Status catalog_put(const pbio::Format& format);
  // Advertises [first, last] of the local log after a handshake.
  Status send_durable_advert();
  // Re-sends logged records in [from, to] as tag-0x02 frames with their
  // original seqs, re-announcing formats the peer may not know.
  Status stream_from_log(std::uint64_t from, std::uint64_t to);

  net::Channel channel_;
  net::Endpoint endpoint_;  // non-dialable for passive/plain sessions
  pbio::FormatRegistry* registry_;
  std::unique_ptr<pbio::Decoder> decoder_;  // Decoder holds a mutex: heap-pin it
  std::unique_ptr<pbio::BatchDecoder> batch_decoder_;  // lazy; receive_batch
  // receive_batch() staging, reused so steady-state batches allocate
  // nothing once buffer capacities have grown.
  std::vector<std::vector<std::uint8_t>> batch_records_;
  std::vector<std::span<const std::uint8_t>> batch_spans_;
  std::unique_ptr<AttachSlot> attach_slot_;
  SessionOptions options_;
  bool resumable_ = false;
  bool closed_ = false;
  DecodeLimits limits_ = DecodeLimits::defaults();
  std::set<pbio::FormatId> announced_;
  std::set<pbio::FormatId> quarantined_;
  // Held plan pins, keyed (sender id, receiver id). Declared after
  // decoder_: pins release into the decoder's cache on destruction, so
  // they must die first (members destroy in reverse declaration order).
  std::map<std::pair<pbio::FormatId, pbio::FormatId>, pbio::Decoder::PlanPin>
      plan_pins_;
  std::size_t plan_pin_failures_ = 0;
  // next_seq_ at the moment each format was announced by *us*: if the
  // peer's ack is below this, the announcement itself may be lost and the
  // format must be re-announced on resume. Peer-announced formats never
  // appear here and are never un-announced.
  std::map<pbio::FormatId, std::uint64_t> announce_seq_;
  // Pooled I/O state: capacity persists across messages (zero steady-state
  // allocations), contents are per-call.
  ByteBuffer send_scratch_;
  std::vector<IoSlice> send_slices_;
  std::vector<std::uint8_t> recv_frame_;
  std::array<std::uint8_t, 9> record_head_{};  // [tag | u64 LE seq]
  // Send-side sequencing and the bounded replay window.
  std::uint64_t next_seq_ = 1;
  std::uint64_t peer_acked_seq_ = 0;
  std::deque<ReplayEntry> replay_;
  std::size_t replay_bytes_ = 0;
  // Receive-side dedup state.
  std::uint64_t last_seq_received_ = 0;
  // Identity and liveness.
  std::uint64_t session_id_ = 0;
  std::uint32_t epoch_ = 0;
  Stopwatch clock_;
  double last_inbound_ms_ = 0;
  double last_ping_ms_ = -1e18;
  double transport_lost_ms_ = -1;  // <0: transport never lost yet
  bool poisoned_ = false;
  // Durability state. The log and catalog are heap-pinned (like the
  // decoder) so the session object stays movable.
  bool durable_ = false;
  std::unique_ptr<storage::RecordLog> log_;
  std::unique_ptr<storage::FormatCatalog> catalog_;
  Status durable_error_;
  std::size_t evicted_records_ = 0;
  bool eviction_logged_ = false;
  std::uint64_t peer_durable_first_ = 0;
  std::uint64_t peer_durable_last_ = 0;
  // Flow-control state. The data queue holds sequenced records (plus
  // in-position shed notices); the control queue holds credit-exempt
  // frames that may safely go out earlier than anything queued behind
  // them. At most one frame across both queues (or the spill stream) is
  // partially written at any time.
  std::deque<QueuedFrame> control_queue_;
  std::deque<QueuedFrame> send_queue_;
  std::size_t data_queue_records_ = 0;
  std::size_t data_queue_bytes_ = 0;
  std::vector<std::uint8_t> spill_frame_;  // record re-read from the log
  std::size_t spill_cursor_ = 0;
  std::uint64_t spill_seq_ = 0;  // 0 = no spill frame in flight
  std::uint64_t next_transmit_seq_ = 1;  // next data seq owed to the wire
  std::uint64_t credit_seq_limit_ = 0;   // cumulative transmit allowance
  std::uint64_t credit_bytes_window_ = 0;
  // Transmitted-but-unacked (seq, wire bytes): the byte-window ledger.
  std::deque<std::pair<std::uint64_t, std::uint32_t>> inflight_;
  std::uint64_t inflight_bytes_ = 0;
  std::uint64_t last_grant_ack_ = 0;  // receiver: ack in our last grant
  // Data/announce frames poll_control() pulled off the wire while a send
  // path was draining acks; receive_view consumes these first.
  std::deque<std::vector<std::uint8_t>> pending_frames_;
  std::vector<std::uint8_t> poll_frame_;
  std::vector<std::uint8_t> inbound_buf_;  // raw bytes awaiting re-framing
  std::size_t inbound_pos_ = 0;
  std::size_t credit_grants_sent_ = 0;
  std::size_t credit_grants_received_ = 0;
  std::size_t send_queue_depth_peak_ = 0;
  std::size_t send_queue_bytes_peak_ = 0;
  std::size_t records_spilled_ = 0;
  std::size_t records_shed_ = 0;
  std::uint64_t peer_shed_records_ = 0;
  double send_block_ms_ = 0;
  std::size_t announcements_sent_ = 0;
  std::size_t announcements_received_ = 0;
  std::size_t records_sent_ = 0;
  std::size_t records_received_ = 0;
  std::size_t metadata_bytes_sent_ = 0;
  std::size_t malformed_frames_ = 0;
  std::size_t reconnects_ = 0;
  std::size_t replayed_records_ = 0;
  std::size_t duplicates_discarded_ = 0;
  std::size_t transport_losses_ = 0;
};

// Convenience: a connected session pair over a socketpair, sharing
// *separate* registries (as two processes would).
struct SessionPair {
  MessageSession a;
  MessageSession b;
};
Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b);
// Same, with options applied to both ends (e.g. a flow-controlled pair).
Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b,
                                      SessionOptions options);

// Convenience: a connected resumable session pair over real TCP —
// `a` actively dials the bundled listener, `b` is the accepted passive
// side. The listener rides along so recovery tests can re-accept after a
// kill and attach() the replacement to `b`.
struct TcpSessionPair {
  net::ChannelListener listener;
  MessageSession a;
  MessageSession b;
};
Result<TcpSessionPair> make_session_tcp(pbio::FormatRegistry& registry_a,
                                        pbio::FormatRegistry& registry_b,
                                        SessionOptions options = {});

}  // namespace xmit::session
