#include "session/session.hpp"

#include "analysis/plan_verify.hpp"
#include "pbio/format_wire.hpp"

namespace xmit::session {
namespace {

constexpr std::uint8_t kTagFormat = 0x01;
constexpr std::uint8_t kTagRecord = 0x02;

}  // namespace

MessageSession::MessageSession(net::Channel channel,
                               pbio::FormatRegistry& registry)
    : channel_(std::move(channel)),
      registry_(&registry),
      decoder_(std::make_unique<pbio::Decoder>(registry)) {
  // Sessions decode against formats a remote peer described; every plan
  // compiled from that metadata is statically verified before first use.
  analysis::register_plan_verifier();
  decoder_->set_verify_plans(true);
}

void MessageSession::set_limits(const DecodeLimits& limits) {
  limits_ = limits;
  decoder_->set_limits(limits);
}

Status MessageSession::note_malformed(Status status) {
  ++malformed_frames_;
  if (malformed_frames_ > limits_.max_malformed_frames) {
    poisoned_ = true;
    return Status(ErrorCode::kResourceExhausted,
                  "session poisoned: peer exceeded the malformed-frame "
                  "budget (" +
                      std::to_string(limits_.max_malformed_frames) +
                      "); last error: " + status.message());
  }
  return status;
}

Status MessageSession::announce(const pbio::Format& format) {
  if (announced_.contains(format.id())) return Status::ok();
  // Announce nested formats first so the peer can resolve references on
  // adoption (serialize_format embeds them, but separate announcements
  // keep the per-frame parsing simple and idempotent).
  ByteBuffer frame;
  frame.append_byte(kTagFormat);
  serialize_format(format, frame);
  XMIT_RETURN_IF_ERROR(channel_.send(frame.span()));
  announced_.insert(format.id());
  ++announcements_sent_;
  metadata_bytes_sent_ += frame.size();
  return Status::ok();
}

Status MessageSession::send(const pbio::Encoder& encoder, const void* record) {
  XMIT_RETURN_IF_ERROR(announce(encoder.format()));
  // Gather path: the encoder emits slices over pooled scratch, the record
  // tag rides as the first slice, and the channel writes the lot with one
  // sendmsg — no flattened frame copy, no allocation once pools are warm.
  XMIT_RETURN_IF_ERROR(
      encoder.encode_iov(record, send_scratch_, send_slices_));
  send_slices_.insert(send_slices_.begin(), IoSlice{&kTagRecord, 1});
  XMIT_RETURN_IF_ERROR(channel_.send_gather(send_slices_));
  ++records_sent_;
  return Status::ok();
}

Status MessageSession::send_encoded(const pbio::Format& format,
                                    std::span<const std::uint8_t> record) {
  XMIT_RETURN_IF_ERROR(announce(format));
  ByteBuffer frame;
  frame.append_byte(kTagRecord);
  frame.append(record.data(), record.size());
  XMIT_RETURN_IF_ERROR(channel_.send(frame.span()));
  ++records_sent_;
  return Status::ok();
}

Result<MessageSession::Incoming> MessageSession::receive(int timeout_ms) {
  XMIT_ASSIGN_OR_RETURN(auto view, receive_view(timeout_ms));
  Incoming incoming;
  incoming.bytes.assign(view.bytes.begin(), view.bytes.end());
  incoming.sender_format = std::move(view.sender_format);
  return incoming;
}

Result<MessageSession::IncomingView> MessageSession::receive_view(
    int timeout_ms) {
  if (poisoned_)
    return Status(ErrorCode::kResourceExhausted,
                  "session poisoned: peer exceeded the malformed-frame budget");
  for (;;) {
    XMIT_RETURN_IF_ERROR(channel_.receive_into(recv_frame_, timeout_ms));
    if (recv_frame_.empty())
      return note_malformed(
          Status(ErrorCode::kParseError, "empty session frame"));
    if (recv_frame_.size() > limits_.max_message_bytes)
      return note_malformed(Status(ErrorCode::kResourceExhausted,
                                   "session frame exceeds size limit"));
    std::span<const std::uint8_t> payload(recv_frame_.data() + 1,
                                          recv_frame_.size() - 1);
    switch (recv_frame_[0]) {
      case kTagFormat: {
        auto format = pbio::deserialize_format(payload, limits_);
        if (!format.is_ok()) {
          // A truncated in-band announcement (peer died mid-write) must
          // not poison the session — report and keep the stream usable.
          return note_malformed(format.status());
        }
        XMIT_ASSIGN_OR_RETURN(auto adopted,
                              registry_->adopt(std::move(format).value()));
        // What the peer announced, we need not re-announce to them.
        announced_.insert(adopted->id());
        // A fresh, well-formed announcement vouches for the format again.
        quarantined_.erase(adopted->id());
        ++announcements_received_;
        continue;
      }
      case kTagRecord: {
        // Quarantine check runs on the raw header, before the (costlier)
        // structural inspection a hostile record would fail anyway.
        auto header = pbio::parse_header(payload);
        if (header.is_ok() &&
            quarantined_.contains(header.value().format_id)) {
          return note_malformed(Status(
              ErrorCode::kMalformedInput,
              "record claims quarantined format id; re-announce to clear"));
        }
        auto info = decoder_->inspect(payload);
        if (!info.is_ok()) {
          // Affirmatively hostile bytes (internal contradictions, blown
          // budgets) poison trust in that format id until the peer
          // re-announces it. Mere truncation — a peer dying mid-write, a
          // lossy channel — does not: the next intact record must decode.
          if (header.is_ok() &&
              (info.code() == ErrorCode::kMalformedInput ||
               info.code() == ErrorCode::kResourceExhausted)) {
            quarantined_.insert(header.value().format_id);
          }
          return note_malformed(info.status());
        }
        return IncomingView{payload, std::move(info.value().sender_format)};
      }
      default:
        return note_malformed(
            Status(ErrorCode::kParseError, "unknown session frame tag " +
                                               std::to_string(recv_frame_[0])));
    }
  }
}

Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b) {
  XMIT_ASSIGN_OR_RETURN(auto pipe, net::Channel::pipe());
  return SessionPair{MessageSession(std::move(pipe.first), registry_a),
                     MessageSession(std::move(pipe.second), registry_b)};
}

}  // namespace xmit::session
