#include "session/session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "analysis/plan_verify.hpp"
#include "common/endian.hpp"
#include "pbio/format_wire.hpp"

namespace xmit::session {
namespace {

constexpr std::uint8_t kTagFormat = 0x01;
constexpr std::uint8_t kTagRecord = 0x02;
constexpr std::uint8_t kTagHandshake = 0x03;
constexpr std::uint8_t kTagPing = 0x04;
constexpr std::uint8_t kTagPong = 0x05;
constexpr std::uint8_t kTagDurableRange = 0x06;
constexpr std::uint8_t kTagReplayRequest = 0x07;
constexpr std::uint8_t kTagCredit = 0x08;
constexpr std::uint8_t kTagShed = 0x09;

// [u64 first-seq | u64 last-seq]
constexpr std::size_t kDurableRangePayloadBytes = 16;
// [u64 last-seq-received | u64 window-records | u64 window-bytes]
constexpr std::size_t kCreditPayloadBytes = 24;
// [u64 first-seq | u64 last-seq]
constexpr std::size_t kShedPayloadBytes = 16;
// A window (records or bytes) or shed span past this is not a plausible
// drain budget on any hardware this decade — it is an attack on the
// credit arithmetic.
constexpr std::uint64_t kMaxCreditWindow = 1ull << 48;
// Control frames waiting to go out; droppable ones (heartbeats, grants)
// are skipped past this depth because a fresher copy always follows.
constexpr std::size_t kControlQueueCap = 64;

// [u8 flags | u64 session id | u32 epoch | u64 last-seq-received]
constexpr std::size_t kHandshakePayloadBytes = 21;
constexpr std::uint8_t kHandshakeInitiate = 0x01;
constexpr std::size_t kSeqBytes = 8;

std::uint64_t generate_session_id() {
  // Distinct per session within the process, never zero (the multiplier
  // is odd, so k * m mod 2^64 == 0 only for k == 0).
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1) * 0x9E3779B97F4A7C15ull;
}

}  // namespace

MessageSession::MessageSession(net::Channel channel,
                               pbio::FormatRegistry& registry)
    : MessageSession(std::move(channel), registry, SessionOptions{}) {}

MessageSession::MessageSession(net::Channel channel,
                               pbio::FormatRegistry& registry,
                               SessionOptions options)
    : channel_(std::move(channel)),
      registry_(&registry),
      decoder_(std::make_unique<pbio::Decoder>(registry)),
      attach_slot_(std::make_unique<AttachSlot>()),
      options_(options),
      resumable_(options.resumable),
      session_id_(options.session_id) {
  // Sessions decode against formats a remote peer described; every plan
  // compiled from that metadata is statically verified before first use.
  analysis::register_plan_verifier();
  decoder_->set_verify_plans(true);
  decoder_->set_plan_cache_budget(options_.plan_cache_budget);
  last_inbound_ms_ = clock_.elapsed_ms();
  init_durability();
  configure_transport();
}

MessageSession::MessageSession(net::Endpoint endpoint,
                               pbio::FormatRegistry& registry,
                               SessionOptions options)
    : endpoint_(std::move(endpoint)),
      registry_(&registry),
      decoder_(std::make_unique<pbio::Decoder>(registry)),
      attach_slot_(std::make_unique<AttachSlot>()),
      options_(options),
      resumable_(true),
      session_id_(options.session_id != 0 ? options.session_id
                                          : generate_session_id()) {
  options_.resumable = true;
  analysis::register_plan_verifier();
  decoder_->set_verify_plans(true);
  decoder_->set_plan_cache_budget(options_.plan_cache_budget);
  last_inbound_ms_ = clock_.elapsed_ms();
  init_durability();
}

void MessageSession::init_durability() {
  if (options_.durable_dir.empty()) return;
  durable_ = true;
  resumable_ = true;
  options_.resumable = true;
  storage::LogOptions log_options;
  log_options.segment_bytes = options_.durable_segment_bytes;
  log_options.fsync = options_.durable_fsync;
  log_options.retention_segments = options_.durable_retention_segments;
  auto log = storage::RecordLog::open(options_.durable_dir, log_options,
                                      limits_);
  if (!log.is_ok()) {
    durable_error_ = log.status();
    return;
  }
  log_ = std::make_unique<storage::RecordLog>(std::move(log).value());
  auto catalog = storage::FormatCatalog::open(
      options_.durable_dir + "/catalog.cat", limits_);
  if (!catalog.is_ok()) {
    durable_error_ = catalog.status();
    return;
  }
  catalog_ =
      std::make_unique<storage::FormatCatalog>(std::move(catalog).value());
  // Recover identity: a stored meta names the session this directory
  // belongs to. An explicit, different options_.session_id wins (the
  // caller is deliberately rebinding the directory).
  if (auto meta = storage::load_session_meta(
          options_.durable_dir + "/session.meta", limits_)) {
    if (options_.session_id == 0 || options_.session_id == meta->session_id) {
      session_id_ = meta->session_id;
      epoch_ = meta->epoch;
    }
  }
  if (session_id_ == 0 && active()) session_id_ = generate_session_id();
  // Resume send-side sequencing past what the log already holds, and
  // bring the persisted formats back so replay can re-announce them.
  if (!log_->empty()) next_seq_ = log_->last_seq() + 1;
  Status loaded = catalog_->load_into(*registry_);
  if (!loaded.is_ok()) durable_error_ = loaded;
}

Status MessageSession::persist_meta() {
  if (!durable_ || session_id_ == 0) return Status::ok();
  return storage::store_session_meta(
      options_.durable_dir + "/session.meta",
      storage::SessionMeta{session_id_, epoch_});
}

Status MessageSession::append_durable(std::uint64_t seq,
                                      pbio::FormatId format_id,
                                      std::span<const IoSlice> slices) {
  if (!durable_) return Status::ok();
  if (!durable_error_.is_ok()) return durable_error_;
  Status appended = log_->append(seq, format_id, slices);
  if (!appended.is_ok()) durable_error_ = appended;
  return appended;
}

Status MessageSession::catalog_put(const pbio::Format& format) {
  if (!durable_) return Status::ok();
  if (!durable_error_.is_ok()) return durable_error_;
  if (catalog_->contains(format.id())) return Status::ok();
  auto ptr = registry_->by_id(format.id());
  if (!ptr.is_ok()) return Status::ok();  // not registry-owned: skip
  Status put = catalog_->put(ptr.value());
  if (!put.is_ok()) durable_error_ = put;
  return put;
}

Status MessageSession::send_durable_advert() {
  if (!durable_ || log_ == nullptr || log_->empty() || !channel_.is_open())
    return Status::ok();
  std::uint8_t frame[1 + kDurableRangePayloadBytes];
  frame[0] = kTagDurableRange;
  store_with_order<std::uint64_t>(frame + 1, log_->first_seq(),
                                  ByteOrder::kLittle);
  store_with_order<std::uint64_t>(frame + 9, log_->last_seq(),
                                  ByteOrder::kLittle);
  return channel_.send(std::span<const std::uint8_t>(frame, sizeof(frame)));
}

Status MessageSession::stream_from_log(std::uint64_t from, std::uint64_t to) {
  if (log_ == nullptr || log_->empty() || from > to) return Status::ok();
  // Direct writes: a partial frame mid-wire must complete first.
  if (options_.flow_control)
    XMIT_RETURN_IF_ERROR(flush_partials(options_.liveness_deadline_ms));
  auto cursor = log_->read_from(from);
  storage::RecordLog::Item item;
  for (;;) {
    auto more = cursor.next(&item);
    if (!more.is_ok()) return more.status();
    if (!more.value() || item.seq > to) return Status::ok();
    if (item.format_id != 0 && !announced_.contains(item.format_id)) {
      auto format = registry_->by_id(item.format_id);
      if (format.is_ok()) {
        ByteBuffer frame;
        frame.append_byte(kTagFormat);
        serialize_format(*format.value(), frame);
        XMIT_RETURN_IF_ERROR(channel_.send(frame.span()));
        announced_.insert(item.format_id);
        announce_seq_[item.format_id] = item.seq;
        ++announcements_sent_;
        metadata_bytes_sent_ += frame.size();
      }
    }
    std::uint8_t head[1 + kSeqBytes];
    head[0] = kTagRecord;
    store_with_order<std::uint64_t>(head + 1, item.seq, ByteOrder::kLittle);
    const IoSlice slices[2] = {{head, sizeof(head)},
                               {item.payload.data(), item.payload.size()}};
    XMIT_RETURN_IF_ERROR(
        channel_.send_gather(std::span<const IoSlice>(slices, 2)));
    ++replayed_records_;
  }
}

Status MessageSession::request_replay(std::uint64_t from_seq) {
  if (from_seq == 0)
    return Status(ErrorCode::kInvalidArgument,
                  "replay cannot start at sequence 0");
  XMIT_RETURN_IF_ERROR(ready_to_send());
  if (!channel_.is_open())
    return Status(ErrorCode::kIoError,
                  "no transport to request a replay on");
  if (options_.flow_control)
    XMIT_RETURN_IF_ERROR(flush_partials(options_.liveness_deadline_ms));
  // Rewind the dedup window so the historical records are delivered
  // instead of being reported as an already-seen range or a gap.
  if (last_seq_received_ >= from_seq) last_seq_received_ = from_seq - 1;
  std::uint8_t frame[1 + kSeqBytes];
  frame[0] = kTagReplayRequest;
  store_with_order<std::uint64_t>(frame + 1, from_seq, ByteOrder::kLittle);
  return channel_.send(std::span<const std::uint8_t>(frame, sizeof(frame)));
}

void MessageSession::set_limits(const DecodeLimits& limits) {
  limits_ = limits;
  decoder_->set_limits(limits);
}

Status MessageSession::note_malformed(Status status) {
  ++malformed_frames_;
  if (malformed_frames_ > limits_.max_malformed_frames) {
    poisoned_ = true;
    return Status(ErrorCode::kResourceExhausted,
                  "session poisoned: peer exceeded the malformed-frame "
                  "budget (" +
                      std::to_string(limits_.max_malformed_frames) +
                      "); last error: " + status.message());
  }
  return status;
}

Status MessageSession::connect_now() {
  if (!active())
    return Status(ErrorCode::kUnsupported,
                  "connect_now requires an endpoint-backed session");
  if (channel_.is_open()) return Status::ok();
  return reconnect(options_.liveness_deadline_ms);
}

void MessageSession::attach(net::Channel replacement) {
  std::lock_guard<std::mutex> lock(attach_slot_->mutex);
  attach_slot_->pending = std::move(replacement);
}

void MessageSession::install_pending_attach() {
  std::optional<net::Channel> pending;
  {
    std::lock_guard<std::mutex> lock(attach_slot_->mutex);
    if (attach_slot_->pending.has_value()) {
      pending.emplace(std::move(*attach_slot_->pending));
      attach_slot_->pending.reset();
    }
  }
  if (!pending.has_value()) return;
  channel_ = std::move(*pending);
  configure_transport();
  reset_partial_cursors();
  ++reconnects_;
  last_inbound_ms_ = clock_.elapsed_ms();
  transport_lost_ms_ = -1;
}

void MessageSession::note_transport_lost() {
  // Idempotent per outage: losing an already-lost transport (e.g. a pump
  // failure racing a receive failure on the same death) is one loss.
  if (!channel_.is_open() && transport_lost_ms_ >= 0) return;
  channel_.close();
  reset_partial_cursors();
  ++transport_losses_;
  transport_lost_ms_ = clock_.elapsed_ms();
}

void MessageSession::configure_transport() {
  // Bounded sends are the liveness fix: a sender wedged in a blocking
  // write toward a peer that stopped reading must observe kTimeout within
  // the liveness window instead of suppressing its own heartbeats forever.
  if (resumable_ || options_.flow_control)
    channel_.set_send_deadline(options_.liveness_deadline_ms);
}

void MessageSession::reset_partial_cursors() {
  // Partially written frames died with the transport; they retransmit in
  // full (and re-frame cleanly) on whatever channel comes next.
  if (!control_queue_.empty()) control_queue_.front().cursor = 0;
  if (!send_queue_.empty()) send_queue_.front().cursor = 0;
  spill_cursor_ = 0;
  spill_seq_ = 0;
  spill_frame_.clear();
  // Half-assembled inbound bytes died with the transport too.
  inbound_buf_.clear();
  inbound_pos_ = 0;
}

Status MessageSession::ready_to_send() {
  if (closed_) return Status(ErrorCode::kIoError, "session closed");
  if (durable_ && !durable_error_.is_ok())
    return Status(durable_error_.code(),
                  "durable session cannot accept sends: " +
                      durable_error_.message());
  if (!resumable_) return Status::ok();
  install_pending_attach();
  if (channel_.is_open()) return Status::ok();
  if (active()) return reconnect(options_.liveness_deadline_ms);
  // Passive and disconnected: sends buffer into the replay queue and go
  // out when the peer resumes.
  return Status::ok();
}

Status MessageSession::await_transport(int budget_ms) {
  const double start = clock_.elapsed_ms();
  for (;;) {
    install_pending_attach();
    if (channel_.is_open()) return Status::ok();
    if (closed_) return Status(ErrorCode::kIoError, "session closed");
    if (active()) {
      const int used = static_cast<int>(clock_.elapsed_ms() - start);
      return reconnect(std::max(budget_ms - used, 0));
    }
    const double since_lost =
        transport_lost_ms_ < 0 ? 0 : clock_.elapsed_ms() - transport_lost_ms_;
    if (since_lost >= options_.liveness_deadline_ms)
      return Status(ErrorCode::kTimeout,
                    "peer never resumed within the liveness deadline");
    if (clock_.elapsed_ms() - start >= budget_ms)
      return Status(ErrorCode::kTimeout, "session receive timeout");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status MessageSession::reconnect(int budget_ms) {
  if (closed_) return Status(ErrorCode::kIoError, "session closed");
  if (!active())
    return Status(ErrorCode::kUnsupported,
                  "session has no endpoint to redial");
  const double start = clock_.elapsed_ms();
  for (;;) {
    const double since_lost =
        transport_lost_ms_ < 0 ? 0 : clock_.elapsed_ms() - transport_lost_ms_;
    const double liveness_left = options_.liveness_deadline_ms - since_lost;
    const double budget_left = budget_ms - (clock_.elapsed_ms() - start);
    const double window = std::min(liveness_left, budget_left);
    if (window <= 0)
      return Status(ErrorCode::kTimeout,
                    "peer unreachable: could not resume the session within "
                    "the liveness deadline");
    net::RetryPolicy policy = options_.reconnect_backoff;
    policy.deadline_ms = window;
    auto dialed = endpoint_.dial(policy);
    if (!dialed.is_ok()) {
      if (!net::is_transient(dialed.status().code()) &&
          dialed.status().code() != ErrorCode::kNotFound)
        return Status(ErrorCode::kTimeout,
                      "peer unreachable: could not resume the session "
                      "within the liveness deadline: " +
                          dialed.status().to_string());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;  // the window check above bounds this loop
    }
    channel_ = std::move(dialed).value();
    configure_transport();
    reset_partial_cursors();
    ++epoch_;
    if (epoch_ > 1) ++reconnects_;
    last_inbound_ms_ = clock_.elapsed_ms();
    // Identity-ahead-of-wire: the bumped epoch must hit the disk before
    // any peer hears it, or a crash between handshake and persist would
    // resurrect us with a stale epoch the peer rejects as rollback.
    Status persisted = persist_meta();
    if (!persisted.is_ok()) return persisted;  // disk trouble, not transport
    Status resumed = send_handshake(/*initiate=*/true);
    if (resumed.is_ok()) resumed = send_durable_advert();
    if (resumed.is_ok()) resumed = replay_unacked();
    if (resumed.is_ok()) {
      transport_lost_ms_ = -1;
      return Status::ok();
    }
    if (channel_.is_open()) {
      // The write side died instantly but the read side is still open: a
      // peer that spoke first and half-closed, its final frames still
      // buffered inbound. Hand the channel to the receive path to drain;
      // EOF there marks the loss and triggers the next redial. The loss
      // clock keeps running so this cannot defeat the liveness deadline.
      if (transport_lost_ms_ < 0) transport_lost_ms_ = clock_.elapsed_ms();
      return Status::ok();
    }
    // The fresh transport died mid-handshake or mid-replay (another
    // injected kill, a racing peer crash): dial again.
    note_transport_lost();
  }
}

Status MessageSession::send_handshake(bool initiate) {
  std::uint8_t frame[1 + kHandshakePayloadBytes];
  frame[0] = kTagHandshake;
  frame[1] = initiate ? kHandshakeInitiate : 0;
  store_with_order<std::uint64_t>(frame + 2, session_id_, ByteOrder::kLittle);
  store_with_order<std::uint32_t>(frame + 10, epoch_, ByteOrder::kLittle);
  store_with_order<std::uint64_t>(frame + 14, last_seq_received_,
                                  ByteOrder::kLittle);
  return channel_.send(std::span<const std::uint8_t>(frame, sizeof(frame)));
}

Status MessageSession::absorb_ack(std::uint64_t last_seq) {
  if (last_seq >= next_seq_)
    return Status(ErrorCode::kMalformedInput,
                  "peer acknowledges records that were never sent");
  if (last_seq > peer_acked_seq_) peer_acked_seq_ = last_seq;
  while (!replay_.empty() && replay_.front().seq <= peer_acked_seq_) {
    replay_bytes_ -= replay_.front().frame.size();
    replay_.pop_front();
  }
  while (!inflight_.empty() && inflight_.front().first <= peer_acked_seq_) {
    inflight_bytes_ -= inflight_.front().second;
    inflight_.pop_front();
  }
  return Status::ok();
}

Status MessageSession::process_handshake(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != kHandshakePayloadBytes)
    return Status(ErrorCode::kMalformedInput,
                  "handshake frame must carry exactly 21 payload bytes");
  const std::uint8_t flags = payload[0];
  if ((flags & ~kHandshakeInitiate) != 0)
    return Status(ErrorCode::kMalformedInput, "unknown handshake flag bits");
  const std::uint64_t sid =
      load_with_order<std::uint64_t>(payload.data() + 1, ByteOrder::kLittle);
  const std::uint32_t epoch =
      load_with_order<std::uint32_t>(payload.data() + 9, ByteOrder::kLittle);
  const std::uint64_t last =
      load_with_order<std::uint64_t>(payload.data() + 13, ByteOrder::kLittle);
  if (sid == 0)
    return Status(ErrorCode::kMalformedInput, "handshake session id is zero");
  if (session_id_ != 0 && sid != session_id_)
    return Status(ErrorCode::kMalformedInput,
                  "handshake names a foreign session id");
  const bool initiate = (flags & kHandshakeInitiate) != 0;
  if (initiate) {
    // A resumed epoch must move forward; equal or lower is a replayed or
    // forged handshake and must not rewind delivery state.
    if (epoch <= epoch_)
      return Status(ErrorCode::kMalformedInput, "handshake epoch rollback");
  } else if (epoch != epoch_) {
    return Status(ErrorCode::kMalformedInput,
                  "handshake reply epoch does not match this session");
  }
  XMIT_RETURN_IF_ERROR(absorb_ack(last));
  const bool identity_changed = session_id_ != sid || (initiate && epoch_ != epoch);
  if (session_id_ == 0) session_id_ = sid;
  if (initiate) {
    epoch_ = epoch;
    // Adopted identity hits the disk before we answer for it.
    if (identity_changed) XMIT_RETURN_IF_ERROR(persist_meta());
    // The reply is a direct write: clear any half-sent frame first.
    if (options_.flow_control)
      XMIT_RETURN_IF_ERROR(flush_partials(options_.liveness_deadline_ms));
    XMIT_RETURN_IF_ERROR(send_handshake(/*initiate=*/false));
    XMIT_RETURN_IF_ERROR(send_durable_advert());
    // The drop cut both directions: replay our own unacked frames too.
    XMIT_RETURN_IF_ERROR(replay_unacked());
    // A resumed sender restarts against our current windows immediately.
    maybe_grant(/*force=*/true);
  }
  return Status::ok();
}

Status MessageSession::replay_unacked() {
  // Direct writes below; nothing may interleave with a half-sent frame.
  if (options_.flow_control)
    XMIT_RETURN_IF_ERROR(flush_partials(options_.liveness_deadline_ms));
  // Queued-but-unsent shed notices must replay too, in sequence position,
  // or the records they scrubbed from the replay buffer read as silent
  // loss at the receiver.
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> notices;
  if (options_.flow_control) {
    for (const QueuedFrame& frame : send_queue_)
      if (frame.control && !frame.frame.empty() &&
          frame.frame[0] == kTagShed)
        notices.emplace_back(
            load_with_order<std::uint64_t>(frame.frame.data() + 1,
                                           ByteOrder::kLittle),
            frame.frame);
    std::sort(notices.begin(), notices.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  std::size_t next_notice = 0;
  const auto notices_before = [&](std::uint64_t seq) -> Status {
    for (; next_notice < notices.size() && notices[next_notice].first < seq;
         ++next_notice)
      XMIT_RETURN_IF_ERROR(channel_.send(notices[next_notice].second));
    return Status::ok();
  };
  // Announcements the peer's ack does not cover may never have arrived;
  // un-mark them so they go out again ahead of the frames that need them.
  // Formats the *peer* announced have no announce_seq_ entry and stay.
  for (const auto& [fid, seq] : announce_seq_)
    if (seq > peer_acked_seq_) announced_.erase(fid);
  // Durable reach-back: after a restart (or a deep eviction) the oldest
  // unacked records live only on disk. Stream the stretch the in-memory
  // buffer no longer covers before the buffered frames go out.
  if (durable_ && log_ != nullptr && !log_->empty()) {
    const std::uint64_t need = peer_acked_seq_ + 1;
    const std::uint64_t mem_first =
        replay_.empty() ? next_seq_ : replay_.front().seq;
    if (need < mem_first && need <= log_->last_seq())
      XMIT_RETURN_IF_ERROR(
          stream_from_log(need, std::min(mem_first - 1, log_->last_seq())));
  }
  for (const ReplayEntry& entry : replay_) {
    if (entry.seq <= peer_acked_seq_) continue;
    XMIT_RETURN_IF_ERROR(notices_before(entry.seq));
    if (entry.format_id != 0 && !announced_.contains(entry.format_id)) {
      auto format = registry_->by_id(entry.format_id);
      if (format.is_ok()) {
        ByteBuffer frame;
        frame.append_byte(kTagFormat);
        serialize_format(*format.value(), frame);
        XMIT_RETURN_IF_ERROR(channel_.send(frame.span()));
        announced_.insert(entry.format_id);
        announce_seq_[entry.format_id] = entry.seq;
        ++announcements_sent_;
        metadata_bytes_sent_ += frame.size();
      }
    }
    XMIT_RETURN_IF_ERROR(channel_.send(entry.frame));
    ++replayed_records_;
  }
  XMIT_RETURN_IF_ERROR(notices_before(next_seq_));
  if (options_.flow_control) {
    // The replay just re-sent (directly) everything the queue still owed
    // the wire: the queued copies are now redundant and the in-flight
    // ledger restarts clean. Control frames (grants, heartbeats) keep
    // their place — a stale grant is monotone and therefore harmless.
    send_queue_.clear();
    data_queue_records_ = 0;
    data_queue_bytes_ = 0;
    next_transmit_seq_ = next_seq_;
    inflight_.clear();
    inflight_bytes_ = 0;
    spill_seq_ = 0;
    spill_cursor_ = 0;
    spill_frame_.clear();
  }
  return Status::ok();
}

void MessageSession::maybe_ping() {
  if (!(resumable_ || options_.flow_control) || !channel_.is_open()) return;
  const double now = clock_.elapsed_ms();
  if (now - last_ping_ms_ < options_.heartbeat_interval_ms) return;
  last_ping_ms_ = now;
  std::uint8_t frame[1 + kSeqBytes];
  frame[0] = kTagPing;
  store_with_order<std::uint64_t>(frame + 1, last_seq_received_,
                                  ByteOrder::kLittle);
  if (options_.flow_control) {
    // The control queue keeps heartbeats flowing even while a data frame
    // is parked mid-wire; a full queue drops the ping (a fresher one
    // always follows next interval).
    enqueue_control(std::span<const std::uint8_t>(frame, sizeof(frame)),
                    /*droppable=*/true);
    return;
  }
  Status sent = channel_.send(std::span<const std::uint8_t>(frame, sizeof(frame)));
  if (!sent.is_ok() && !channel_.is_open()) note_transport_lost();
}

void MessageSession::buffer_for_replay(std::uint64_t seq,
                                       pbio::FormatId format_id,
                                       std::span<const IoSlice> slices) {
  ReplayEntry entry;
  entry.seq = seq;
  entry.format_id = format_id;
  std::size_t total = 0;
  for (const IoSlice& s : slices) total += s.size;
  entry.frame.reserve(total);
  for (const IoSlice& s : slices) {
    const auto* p = static_cast<const std::uint8_t*>(s.data);
    entry.frame.insert(entry.frame.end(), p, p + s.size);
  }
  replay_bytes_ += entry.frame.size();
  replay_.push_back(std::move(entry));
  // Bounded window: evicted frames are simply no longer replayable — a
  // resume past them surfaces kDataLoss at the receiver, once. With a
  // durable log the eviction is harmless (the disk covers the seq); an
  // eviction *without* that cover is silent data-at-risk, so it is
  // counted and warned about once per session.
  while (!replay_.empty() &&
         (replay_.size() > options_.replay_buffer_records ||
          replay_bytes_ > options_.replay_buffer_bytes)) {
    const ReplayEntry& victim = replay_.front();
    const bool covered = durable_ && log_ != nullptr &&
                         victim.seq >= log_->first_seq() &&
                         victim.seq <= log_->last_seq();
    if (victim.seq > peer_acked_seq_ && !covered) {
      ++evicted_records_;
      if (!eviction_logged_) {
        eviction_logged_ = true;
        std::fprintf(stderr,
                     "xmit session %" PRIu64
                     ": replay buffer evicted unacked record seq %" PRIu64
                     " with no durable log to recover it; a resume past "
                     "this point will surface kDataLoss\n",
                     session_id_, victim.seq);
      }
    }
    replay_bytes_ -= victim.frame.size();
    replay_.pop_front();
  }
}

// --- flow control ------------------------------------------------------

Status MessageSession::process_credit(std::span<const std::uint8_t> payload) {
  if (payload.size() != kCreditPayloadBytes)
    return Status(ErrorCode::kParseError, "bad credit-grant frame length");
  const std::uint64_t ack =
      load_with_order<std::uint64_t>(payload.data(), ByteOrder::kLittle);
  const std::uint64_t window_records =
      load_with_order<std::uint64_t>(payload.data() + 8, ByteOrder::kLittle);
  const std::uint64_t window_bytes =
      load_with_order<std::uint64_t>(payload.data() + 16, ByteOrder::kLittle);
  // Every hostile shape is rejected before any of it touches credit
  // state: a poisonous grant must not move the windows *and* cost budget.
  if (window_records == 0 || window_bytes == 0)
    return Status(ErrorCode::kMalformedInput,
                  "zero credit window: an honest receiver pauses a sender "
                  "by withholding grants, never by granting zero");
  if (window_records > kMaxCreditWindow || window_bytes > kMaxCreditWindow)
    return Status(ErrorCode::kMalformedInput,
                  "credit window is implausibly large");
  std::uint64_t reach = 0;
  if (!checked_add(ack, window_records, &reach))
    return Status(ErrorCode::kMalformedInput, "credit reach wraps u64");
  if (reach < credit_seq_limit_)
    return Status(ErrorCode::kMalformedInput,
                  "credit rollback: grant reach regressed below an "
                  "allowance already extended");
  XMIT_RETURN_IF_ERROR(absorb_ack(ack));
  credit_seq_limit_ = reach;
  credit_bytes_window_ = window_bytes;
  ++credit_grants_received_;
  return Status::ok();
}

Status MessageSession::process_shed(std::span<const std::uint8_t> payload) {
  if (payload.size() != kShedPayloadBytes)
    return Status(ErrorCode::kParseError, "bad shed-notice frame length");
  const std::uint64_t first =
      load_with_order<std::uint64_t>(payload.data(), ByteOrder::kLittle);
  const std::uint64_t last =
      load_with_order<std::uint64_t>(payload.data() + 8, ByteOrder::kLittle);
  if (first == 0)
    return Status(ErrorCode::kMalformedInput,
                  "shed notice cannot start at sequence 0");
  if (last < first)
    return Status(ErrorCode::kMalformedInput,
                  "shed notice range is inverted");
  if (last - first + 1 > kMaxCreditWindow)
    return Status(ErrorCode::kMalformedInput,
                  "shed notice span is implausibly large");
  if (first <= last_seq_received_)
    return Status(ErrorCode::kMalformedInput,
                  "shed notice rewinds over already-delivered records");
  // Records missing *before* the announced range were lost silently —
  // that is still a real gap, reported once, distinct from the honest
  // shed which is accounted and not an error.
  Status gap = Status::ok();
  if (first > last_seq_received_ + 1) {
    const std::uint64_t lost = first - last_seq_received_ - 1;
    gap = Status(ErrorCode::kDataLoss,
                 std::to_string(lost) +
                     " record(s) lost in a sequence gap before a shed "
                     "notice the peer did not account for");
  }
  peer_shed_records_ += last - first + 1;
  last_seq_received_ = last;
  return gap;
}

void MessageSession::maybe_grant(bool force) {
  if (!options_.flow_control || !channel_.is_open()) return;
  // request_replay rewinds the dedup window; grants stay monotone on the
  // high-water mark so an honest replay never reads as credit rollback.
  const std::uint64_t ack = std::max(last_seq_received_, last_grant_ack_);
  const std::uint64_t drained = ack - last_grant_ack_;
  if (!force && drained * 2 < options_.receive_window_records) return;
  std::uint8_t frame[1 + kCreditPayloadBytes];
  frame[0] = kTagCredit;
  store_with_order<std::uint64_t>(frame + 1, ack, ByteOrder::kLittle);
  store_with_order<std::uint64_t>(
      frame + 9, static_cast<std::uint64_t>(options_.receive_window_records),
      ByteOrder::kLittle);
  store_with_order<std::uint64_t>(
      frame + 17, static_cast<std::uint64_t>(options_.receive_window_bytes),
      ByteOrder::kLittle);
  if (enqueue_control(std::span<const std::uint8_t>(frame, sizeof(frame)),
                      /*droppable=*/true)) {
    ++credit_grants_sent_;
    last_grant_ack_ = ack;
  }
}

bool MessageSession::enqueue_control(std::span<const std::uint8_t> frame,
                                     bool droppable) {
  // Droppable frames (heartbeats, grants) are always superseded by a
  // fresher copy, so a full control queue simply skips them; must-deliver
  // frames (announcements) ride past the cap — they are few and bounded
  // by the format population.
  if (droppable && control_queue_.size() >= kControlQueueCap) return false;
  QueuedFrame queued;
  queued.control = true;
  queued.frame.assign(frame.begin(), frame.end());
  control_queue_.push_back(std::move(queued));
  pump_send_queue();
  return true;
}

Status MessageSession::load_spill_frame(std::uint64_t seq) {
  if (log_ == nullptr)
    return Status(ErrorCode::kNotFound, "no durable log to spill from");
  auto cursor = log_->read_from(seq);
  storage::RecordLog::Item item;
  auto more = cursor.next(&item);
  if (!more.is_ok()) {
    durable_error_ = more.status();
    return more.status();
  }
  if (!more.value() || item.seq != seq)
    return Status(ErrorCode::kNotFound,
                  "durable log does not hold spilled record " +
                      std::to_string(seq));
  // Schema-ahead-of-data still holds on the spill path. No partial can be
  // mid-wire here (the pump only loads between whole frames), so a direct
  // write is frame-safe.
  if (item.format_id != 0 && !announced_.contains(item.format_id)) {
    auto format = registry_->by_id(item.format_id);
    if (format.is_ok()) {
      ByteBuffer frame;
      frame.append_byte(kTagFormat);
      serialize_format(*format.value(), frame);
      XMIT_RETURN_IF_ERROR(channel_.send(frame.span()));
      announced_.insert(item.format_id);
      announce_seq_[item.format_id] = item.seq;
      ++announcements_sent_;
      metadata_bytes_sent_ += frame.size();
    }
  }
  spill_frame_.clear();
  spill_frame_.reserve(1 + kSeqBytes + item.payload.size());
  spill_frame_.push_back(kTagRecord);
  std::uint8_t seq_le[kSeqBytes];
  store_with_order<std::uint64_t>(seq_le, seq, ByteOrder::kLittle);
  spill_frame_.insert(spill_frame_.end(), seq_le, seq_le + kSeqBytes);
  spill_frame_.insert(spill_frame_.end(), item.payload.begin(),
                      item.payload.end());
  spill_cursor_ = 0;
  spill_seq_ = seq;
  return Status::ok();
}

Status MessageSession::extract_inbound_frame(std::vector<std::uint8_t>& out) {
  const std::size_t avail = inbound_buf_.size() - inbound_pos_;
  if (avail >= 4) {
    const std::uint32_t length = load_with_order<std::uint32_t>(
        inbound_buf_.data() + inbound_pos_, ByteOrder::kLittle);
    if (length > limits_.max_message_bytes)
      return Status(ErrorCode::kResourceExhausted,
                    "inbound frame exceeds the session size limit");
    if (avail >= 4ull + length) {
      const std::uint8_t* body = inbound_buf_.data() + inbound_pos_ + 4;
      out.assign(body, body + length);
      inbound_pos_ += 4 + length;
      if (inbound_pos_ == inbound_buf_.size()) {
        inbound_buf_.clear();
        inbound_pos_ = 0;
      } else if (inbound_pos_ >= 64 * 1024) {
        inbound_buf_.erase(inbound_buf_.begin(),
                           inbound_buf_.begin() +
                               static_cast<std::ptrdiff_t>(inbound_pos_));
        inbound_pos_ = 0;
      }
      return Status::ok();
    }
  }
  return Status(ErrorCode::kUnavailable, "frame incomplete");
}

Status MessageSession::fc_receive_frame(std::vector<std::uint8_t>& out,
                                        int timeout_ms) {
  Stopwatch budget;
  for (;;) {
    Status framed = extract_inbound_frame(out);
    if (framed.code() != ErrorCode::kUnavailable) return framed;
    if (!channel_.is_open())
      return Status(ErrorCode::kIoError, "channel is closed");
    Status pulled = channel_.recv_some(inbound_buf_);
    if (pulled.is_ok()) continue;
    if (pulled.code() != ErrorCode::kUnavailable) return pulled;
    // Idle inbound: keep our own queue moving while we wait.
    pump_send_queue();
    if (!channel_.is_open())
      return Status(ErrorCode::kIoError, "channel is closed");
    const int remaining = timeout_ms - static_cast<int>(budget.elapsed_ms());
    if (remaining <= 0)
      return Status(ErrorCode::kTimeout, "session receive timeout");
    channel_.poll_readable(std::min(remaining, 20));
  }
}

void MessageSession::pump_send_queue() {
  if (!options_.flow_control) return;
  const auto on_failure = [this](const Status&) { note_transport_lost(); };
  for (;;) {
    if (!channel_.is_open()) return;  // queues wait for resume
    // 1. A spill frame in flight (or freshly loaded) owns the wire.
    if (spill_seq_ != 0) {
      if (spill_cursor_ == 0 && inflight_bytes_ > 0 &&
          inflight_bytes_ + 4 + spill_frame_.size() > credit_bytes_window_)
        return;  // byte-starved; one frame rides a quiet wire
      Status sent = channel_.send_some(spill_frame_, spill_cursor_);
      if (sent.code() == ErrorCode::kUnavailable) return;
      if (!sent.is_ok()) {
        on_failure(sent);
        return;
      }
      const std::size_t wire = 4 + spill_frame_.size();
      inflight_.emplace_back(spill_seq_, static_cast<std::uint32_t>(wire));
      inflight_bytes_ += wire;
      next_transmit_seq_ = spill_seq_ + 1;
      spill_seq_ = 0;
      spill_cursor_ = 0;
      spill_frame_.clear();
      continue;
    }
    // 2. A partially written data-queue front must finish next: any other
    // byte on the wire before its tail corrupts the framing.
    if (!send_queue_.empty() && send_queue_.front().cursor > 0) {
      QueuedFrame& front = send_queue_.front();
      Status sent = channel_.send_some(front.frame, front.cursor);
      if (sent.code() == ErrorCode::kUnavailable) return;
      if (!sent.is_ok()) {
        on_failure(sent);
        return;
      }
      if (front.control) {
        next_transmit_seq_ = std::max(next_transmit_seq_, front.seq + 1);
      } else {
        const std::size_t wire = 4 + front.frame.size();
        inflight_.emplace_back(front.seq, static_cast<std::uint32_t>(wire));
        inflight_bytes_ += wire;
        next_transmit_seq_ = front.seq + 1;
        --data_queue_records_;
        data_queue_bytes_ -= front.frame.size();
      }
      send_queue_.pop_front();
      continue;
    }
    // 3. Credit-exempt control traffic: grants, heartbeats, announcements.
    if (!control_queue_.empty()) {
      QueuedFrame& front = control_queue_.front();
      Status sent = channel_.send_some(front.frame, front.cursor);
      if (sent.code() == ErrorCode::kUnavailable) return;
      if (!sent.is_ok()) {
        on_failure(sent);
        return;
      }
      control_queue_.pop_front();
      continue;
    }
    // 4. Fresh data, gated on the peer's credit.
    if (send_queue_.empty()) {
      // Spilled tail: everything still owed to the wire lives only in
      // the durable log. Stream it back under the same credit gates.
      if (next_transmit_seq_ >= next_seq_) return;  // drained
      if (options_.slow_consumer != SlowConsumerPolicy::kSpillToLog ||
          !durable_ || log_ == nullptr || log_->empty() ||
          next_transmit_seq_ < log_->first_seq() ||
          next_transmit_seq_ > log_->last_seq())
        return;
      if (next_transmit_seq_ > credit_seq_limit_) return;
      Status loaded = load_spill_frame(next_transmit_seq_);
      if (!loaded.is_ok()) {
        if (!channel_.is_open()) on_failure(loaded);
        return;
      }
      continue;
    }
    QueuedFrame& front = send_queue_.front();
    if (!front.control && front.seq > next_transmit_seq_) {
      // A gap before the front: records spilled to the log come back
      // from disk first; records shed (their notice already completed)
      // are skipped for good.
      if (options_.slow_consumer == SlowConsumerPolicy::kSpillToLog &&
          durable_ && log_ != nullptr && !log_->empty() &&
          next_transmit_seq_ >= log_->first_seq() &&
          next_transmit_seq_ <= log_->last_seq()) {
        if (next_transmit_seq_ > credit_seq_limit_) return;
        Status loaded = load_spill_frame(next_transmit_seq_);
        if (!loaded.is_ok()) {
          if (!channel_.is_open()) on_failure(loaded);
          return;
        }
        continue;
      }
      next_transmit_seq_ = front.seq;
    }
    if (!front.control) {
      if (front.seq > credit_seq_limit_) return;  // starved
      if (inflight_bytes_ > 0 &&
          inflight_bytes_ + 4 + front.frame.size() > credit_bytes_window_)
        return;
    }
    Status sent = channel_.send_some(front.frame, front.cursor);
    if (sent.code() == ErrorCode::kUnavailable) return;
    if (!sent.is_ok()) {
      on_failure(sent);
      return;
    }
    if (front.control) {
      next_transmit_seq_ = std::max(next_transmit_seq_, front.seq + 1);
    } else {
      const std::size_t wire = 4 + front.frame.size();
      inflight_.emplace_back(front.seq, static_cast<std::uint32_t>(wire));
      inflight_bytes_ += wire;
      next_transmit_seq_ = front.seq + 1;
      --data_queue_records_;
      data_queue_bytes_ -= front.frame.size();
    }
    send_queue_.pop_front();
  }
}

void MessageSession::poll_control() {
  if (!options_.flow_control || !channel_.is_open()) return;
  // Parked frames are bounded: past this the caller must receive() before
  // we pull more off the wire, or a flooding peer grows us without limit.
  constexpr std::size_t kPendingFramesCap = 256;
  for (;;) {
    if (pending_frames_.size() >= kPendingFramesCap) return;
    Status framed = extract_inbound_frame(poll_frame_);
    if (framed.code() == ErrorCode::kUnavailable) {
      Status pulled = channel_.recv_some(inbound_buf_);
      if (pulled.is_ok()) continue;
      if (pulled.code() == ErrorCode::kUnavailable) return;
      if (resumable_)
        note_transport_lost();
      else
        channel_.close();
      return;
    }
    if (!framed.is_ok()) {
      (void)note_malformed(framed);
      return;
    }
    last_inbound_ms_ = clock_.elapsed_ms();
    if (poll_frame_.empty()) {
      (void)note_malformed(
          Status(ErrorCode::kParseError, "empty session frame"));
      continue;
    }
    std::span<const std::uint8_t> payload(poll_frame_.data() + 1,
                                          poll_frame_.size() - 1);
    switch (poll_frame_[0]) {
      case kTagPong:
      case kTagPing: {
        if (payload.size() != kSeqBytes) {
          (void)note_malformed(
              Status(ErrorCode::kParseError, "bad ping/pong frame length"));
          continue;
        }
        Status st = absorb_ack(load_with_order<std::uint64_t>(
            payload.data(), ByteOrder::kLittle));
        if (!st.is_ok()) {
          (void)note_malformed(st);
          continue;
        }
        if (poll_frame_[0] == kTagPing) {
          std::uint8_t pong[1 + kSeqBytes];
          pong[0] = kTagPong;
          store_with_order<std::uint64_t>(pong + 1, last_seq_received_,
                                          ByteOrder::kLittle);
          enqueue_control(std::span<const std::uint8_t>(pong, sizeof(pong)),
                          /*droppable=*/true);
          maybe_grant(/*force=*/true);
        }
        continue;
      }
      case kTagCredit: {
        Status st = process_credit(payload);
        if (!st.is_ok()) {
          (void)note_malformed(st);
          continue;
        }
        pump_send_queue();  // fresh credit may unblock the queue now
        continue;
      }
      default:
        // Data, announcements, handshakes, shed notices: the receive path
        // owns their semantics; park them in arrival order.
        pending_frames_.push_back(poll_frame_);
        continue;
    }
  }
}

bool MessageSession::queue_over_watermark(std::size_t incoming_bytes) const {
  const double watermark =
      std::clamp(options_.send_queue_watermark, 0.01, 1.0);
  const auto record_limit = static_cast<std::size_t>(
      static_cast<double>(options_.send_queue_records) * watermark);
  const auto byte_limit = static_cast<std::size_t>(
      static_cast<double>(options_.send_queue_bytes) * watermark);
  return data_queue_records_ + 1 > std::max<std::size_t>(record_limit, 1) ||
         data_queue_bytes_ + incoming_bytes >
             std::max<std::size_t>(byte_limit, 1);
}

Status MessageSession::admit_record(std::size_t frame_bytes) {
  if (!options_.flow_control) return Status::ok();
  poll_control();
  pump_send_queue();
  if (!queue_over_watermark(frame_bytes)) return Status::ok();
  switch (options_.slow_consumer) {
    case SlowConsumerPolicy::kBlockWithDeadline: {
      Stopwatch wait;
      for (;;) {
        poll_control();
        pump_send_queue();
        if (!queue_over_watermark(frame_bytes)) {
          send_block_ms_ += wait.elapsed_ms();
          return Status::ok();
        }
        if (closed_) return Status(ErrorCode::kIoError, "session closed");
        if (resumable_) {
          install_pending_attach();
          if (!channel_.is_open() && active()) {
            Status ready = ready_to_send();
            if (!ready.is_ok()) {
              send_block_ms_ += wait.elapsed_ms();
              return ready;
            }
          }
        }
        maybe_ping();
        if (liveness_stale()) {
          // Dead, not slow: nothing inbound for a whole liveness window
          // while we were starved for credit.
          send_block_ms_ += wait.elapsed_ms();
          return Status(ErrorCode::kTimeout,
                        "peer silent past the liveness deadline");
        }
        if (wait.elapsed_ms() >= options_.send_block_deadline_ms) {
          send_block_ms_ += wait.elapsed_ms();
          return Status(ErrorCode::kResourceExhausted,
                        "send queue full: peer credit could not drain it "
                        "within the block deadline (slow consumer)");
        }
        if (channel_.is_open())
          channel_.poll_readable(1);
        else
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    case SlowConsumerPolicy::kSpillToLog: {
      if (!durable_ || !durable_error_.is_ok())
        return Status(ErrorCode::kResourceExhausted,
                      "send queue full and kSpillToLog has no healthy "
                      "durable log to fall back on");
      spill_queue();
      pump_send_queue();
      return Status::ok();
    }
    case SlowConsumerPolicy::kShedOldest: {
      XMIT_RETURN_IF_ERROR(shed_queue());
      pump_send_queue();
      return Status::ok();
    }
    case SlowConsumerPolicy::kDisconnect: {
      note_transport_lost();
      send_queue_.clear();
      data_queue_records_ = 0;
      data_queue_bytes_ = 0;
      next_transmit_seq_ = next_seq_;
      inflight_.clear();
      inflight_bytes_ = 0;
      return Status(ErrorCode::kResourceExhausted,
                    "send queue hit its watermark; policy kDisconnect "
                    "dropped the transport");
    }
  }
  return Status::ok();
}

void MessageSession::spill_queue() {
  // Every unstarted data frame is covered by the write-ahead log, so
  // memory can let go of all of them: the ring is a cache, the log is the
  // truth. The pump streams the gap back from disk as credit returns.
  std::deque<QueuedFrame> kept;
  bool at_front = true;
  for (QueuedFrame& frame : send_queue_) {
    const bool started = at_front && frame.cursor > 0;
    at_front = false;
    if (frame.control || started) {
      kept.push_back(std::move(frame));
      continue;
    }
    ++records_spilled_;
    --data_queue_records_;
    data_queue_bytes_ -= frame.frame.size();
  }
  send_queue_ = std::move(kept);
}

Status MessageSession::shed_queue() {
  // Oldest-first: freshest data wins (the telemetry shape). Drop down to
  // half the watermark so the policy does not re-fire on every send, and
  // name every dropped range to the peer in an in-position 0x09 notice.
  const double watermark =
      std::clamp(options_.send_queue_watermark, 0.01, 1.0);
  const auto record_target = static_cast<std::size_t>(
      static_cast<double>(options_.send_queue_records) * watermark / 2);
  const auto byte_target = static_cast<std::size_t>(
      static_cast<double>(options_.send_queue_bytes) * watermark / 2);
  std::size_t i = 0;
  while ((data_queue_records_ > record_target ||
          data_queue_bytes_ > byte_target) &&
         i < send_queue_.size()) {
    QueuedFrame& candidate = send_queue_[i];
    if (candidate.control || candidate.cursor > 0) {
      ++i;
      continue;
    }
    const std::uint64_t first = candidate.seq;
    std::uint64_t last = first;
    while ((data_queue_records_ > record_target ||
            data_queue_bytes_ > byte_target) &&
           i < send_queue_.size()) {
      QueuedFrame& victim = send_queue_[i];
      if (victim.control || victim.cursor > 0) break;
      if (victim.seq != last && victim.seq != last + 1) break;
      last = victim.seq;
      ++records_shed_;
      --data_queue_records_;
      data_queue_bytes_ -= victim.frame.size();
      send_queue_.erase(send_queue_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // Shed records must not resurrect on a resume: scrub them from the
    // replay buffer (the notice, replayed in position, owns their story).
    for (auto it = replay_.begin(); it != replay_.end();) {
      if (it->seq >= first && it->seq <= last) {
        replay_bytes_ -= it->frame.size();
        it = replay_.erase(it);
      } else {
        ++it;
      }
    }
    append_shed_sidecar(first, last);
    i = splice_shed_notice(i, first, last);
  }
  return Status::ok();
}

std::size_t MessageSession::splice_shed_notice(std::size_t index,
                                               std::uint64_t first,
                                               std::uint64_t last) {
  QueuedFrame notice;
  notice.seq = last;  // completion advances next_transmit_seq_ past it
  notice.control = true;
  notice.frame.resize(1 + kShedPayloadBytes);
  notice.frame[0] = kTagShed;
  store_with_order<std::uint64_t>(notice.frame.data() + 1, first,
                                  ByteOrder::kLittle);
  store_with_order<std::uint64_t>(notice.frame.data() + 9, last,
                                  ByteOrder::kLittle);
  send_queue_.insert(send_queue_.begin() + static_cast<std::ptrdiff_t>(index),
                     std::move(notice));
  return index + 1;
}

void MessageSession::append_shed_sidecar(std::uint64_t first,
                                         std::uint64_t last) {
  if (!durable_) return;
  std::FILE* sidecar =
      std::fopen((options_.durable_dir + "/shed.log").c_str(), "ae");
  if (sidecar == nullptr) return;
  std::fprintf(sidecar, "%" PRIu64 " %" PRIu64 "\n", first, last);
  std::fclose(sidecar);
}

bool MessageSession::partial_in_flight() const {
  return spill_cursor_ > 0 ||
         (!control_queue_.empty() && control_queue_.front().cursor > 0) ||
         (!send_queue_.empty() && send_queue_.front().cursor > 0);
}

Status MessageSession::flush_partials(int budget_ms) {
  if (!options_.flow_control) return Status::ok();
  Stopwatch budget;
  for (;;) {
    pump_send_queue();
    if (!partial_in_flight()) return Status::ok();
    if (!channel_.is_open()) return Status::ok();  // cursors were reset
    const int remaining = budget_ms - static_cast<int>(budget.elapsed_ms());
    if (remaining <= 0)
      return Status(ErrorCode::kTimeout,
                    "a partial frame could not be flushed within its "
                    "budget (peer not reading)");
    channel_.poll_writable(std::min(remaining, 20));
  }
}

void MessageSession::note_queue_peaks() {
  send_queue_depth_peak_ = std::max(send_queue_depth_peak_,
                                    data_queue_records_);
  send_queue_bytes_peak_ = std::max(send_queue_bytes_peak_,
                                    data_queue_bytes_);
}

Status MessageSession::queue_record(pbio::FormatId format_id,
                                    std::span<const IoSlice> payload) {
  if (!resumable_ && !channel_.is_open())
    return Status(ErrorCode::kIoError, "channel is closed");
  std::size_t payload_bytes = 0;
  for (const IoSlice& slice : payload) payload_bytes += slice.size;
  // Admission precedes sequencing and the WAL: a rejected send consumes
  // no sequence number and leaves no log hole to misread as loss.
  XMIT_RETURN_IF_ERROR(admit_record(1 + kSeqBytes + payload_bytes));
  const std::uint64_t seq = next_seq_++;
  QueuedFrame queued;
  queued.seq = seq;
  queued.format_id = format_id;
  queued.frame.reserve(1 + kSeqBytes + payload_bytes);
  queued.frame.push_back(kTagRecord);
  std::uint8_t seq_le[kSeqBytes];
  store_with_order<std::uint64_t>(seq_le, seq, ByteOrder::kLittle);
  queued.frame.insert(queued.frame.end(), seq_le, seq_le + kSeqBytes);
  for (const IoSlice& slice : payload) {
    const auto* bytes = static_cast<const std::uint8_t*>(slice.data);
    queued.frame.insert(queued.frame.end(), bytes, bytes + slice.size);
  }
  if (resumable_) {
    const IoSlice whole = {queued.frame.data(), queued.frame.size()};
    buffer_for_replay(seq, format_id, std::span<const IoSlice>(&whole, 1));
  }
  XMIT_RETURN_IF_ERROR(append_durable(seq, format_id, payload));
  ++data_queue_records_;
  data_queue_bytes_ += queued.frame.size();
  send_queue_.push_back(std::move(queued));
  note_queue_peaks();
  ++records_sent_;
  pump_send_queue();
  return Status::ok();
}

Status MessageSession::announce(const pbio::Format& format) {
  for (;;) {
    if (announced_.contains(format.id())) return Status::ok();
    XMIT_RETURN_IF_ERROR(ready_to_send());
    // Schema-ahead-of-data: the catalog entry is fsynced before any
    // record encoded with the format can reach the log or the wire, so
    // a restart can always re-announce what it replays.
    XMIT_RETURN_IF_ERROR(catalog_put(format));
    ByteBuffer frame;
    frame.append_byte(kTagFormat);
    serialize_format(format, frame);
    if (!channel_.is_open()) {
      // Passive and disconnected: the resume path re-announces anything
      // past the peer's ack, so just record intent.
      announced_.insert(format.id());
      announce_seq_[format.id()] = next_seq_;
      return Status::ok();
    }
    if (options_.flow_control) {
      // Queued, never dropped: the announcement rides the control queue
      // ahead of the data that needs it (data waits on credit; control
      // does not), without disturbing any partial frame mid-wire.
      enqueue_control(frame.span(), /*droppable=*/false);
      announced_.insert(format.id());
      if (resumable_) announce_seq_[format.id()] = next_seq_;
      ++announcements_sent_;
      metadata_bytes_sent_ += frame.size();
      return Status::ok();
    }
    Status sent = channel_.send(frame.span());
    if (sent.is_ok()) {
      announced_.insert(format.id());
      if (resumable_) announce_seq_[format.id()] = next_seq_;
      ++announcements_sent_;
      metadata_bytes_sent_ += frame.size();
      return Status::ok();
    }
    if (!resumable_) return sent;
    note_transport_lost();
    if (!active()) {
      announced_.insert(format.id());
      announce_seq_[format.id()] = next_seq_;
      return Status::ok();
    }
    // Active: loop — ready_to_send reconnects, then the announcement is
    // retried on the fresh transport.
  }
}

Status MessageSession::transmit_record(std::span<const IoSlice> slices) {
  if (!channel_.is_open()) {
    if (resumable_ && !active()) {
      ++records_sent_;  // buffered; the resume path owes its delivery
      return Status::ok();
    }
    return Status(ErrorCode::kIoError, "channel is closed");
  }
  Status sent = channel_.send_gather(slices);
  if (sent.is_ok()) {
    ++records_sent_;
    return Status::ok();
  }
  if (!resumable_) return sent;
  note_transport_lost();
  ++records_sent_;  // already in the replay buffer
  // Liveness blind spot, closed: a send that blew the channel's bounded
  // send deadline means the peer stopped reading for a whole liveness
  // window. If nothing arrived inbound either, the peer is dead, not
  // slow — surface the same verdict a silent receive would have.
  if (sent.code() == ErrorCode::kTimeout && liveness_stale())
    return Status(ErrorCode::kTimeout,
                  "peer silent past the liveness deadline (send blocked "
                  "past it with nothing inbound)");
  if (active()) return reconnect(options_.liveness_deadline_ms);
  return Status::ok();
}

Status MessageSession::send(const pbio::Encoder& encoder, const void* record) {
  XMIT_RETURN_IF_ERROR(ready_to_send());
  XMIT_RETURN_IF_ERROR(announce(encoder.format()));
  // Gather path: the encoder emits slices over pooled scratch, the
  // tag+sequence header rides as the first slice, and the channel writes
  // the lot with one sendmsg — no flattened frame copy, no allocation
  // once pools are warm (replay buffering copies, but only when the
  // session is resumable).
  XMIT_RETURN_IF_ERROR(
      encoder.encode_iov(record, send_scratch_, send_slices_));
  if (options_.flow_control)
    return queue_record(encoder.format().id(), send_slices_);
  const std::uint64_t seq = next_seq_++;
  record_head_[0] = kTagRecord;
  store_with_order<std::uint64_t>(record_head_.data() + 1, seq,
                                  ByteOrder::kLittle);
  send_slices_.insert(send_slices_.begin(),
                      IoSlice{record_head_.data(), record_head_.size()});
  if (resumable_)
    buffer_for_replay(seq, encoder.format().id(), send_slices_);
  // Write-ahead: the record must be durable before it is transmitted —
  // a send the log refused never reaches the wire.
  XMIT_RETURN_IF_ERROR(
      append_durable(seq, encoder.format().id(),
                     std::span<const IoSlice>(send_slices_).subspan(1)));
  return transmit_record(send_slices_);
}

Status MessageSession::send_encoded(const pbio::Format& format,
                                    std::span<const std::uint8_t> record) {
  XMIT_RETURN_IF_ERROR(ready_to_send());
  XMIT_RETURN_IF_ERROR(announce(format));
  if (options_.flow_control) {
    const IoSlice slice = {record.data(), record.size()};
    return queue_record(format.id(), std::span<const IoSlice>(&slice, 1));
  }
  const std::uint64_t seq = next_seq_++;
  record_head_[0] = kTagRecord;
  store_with_order<std::uint64_t>(record_head_.data() + 1, seq,
                                  ByteOrder::kLittle);
  const IoSlice slices[2] = {{record_head_.data(), record_head_.size()},
                             {record.data(), record.size()}};
  const auto span2 = std::span<const IoSlice>(slices, 2);
  if (resumable_) buffer_for_replay(seq, format.id(), span2);
  XMIT_RETURN_IF_ERROR(
      append_durable(seq, format.id(), span2.subspan(1)));
  return transmit_record(span2);
}

Result<MessageSession::Incoming> MessageSession::receive(int timeout_ms) {
  XMIT_ASSIGN_OR_RETURN(auto view, receive_view(timeout_ms));
  Incoming incoming;
  incoming.bytes.assign(view.bytes.begin(), view.bytes.end());
  incoming.sender_format = std::move(view.sender_format);
  return incoming;
}

Result<MessageSession::IncomingView> MessageSession::receive_view(
    int timeout_ms) {
  if (poisoned_)
    return Status(ErrorCode::kResourceExhausted,
                  "session poisoned: peer exceeded the malformed-frame budget");
  if (closed_) return Status(ErrorCode::kIoError, "session closed");
  Stopwatch budget;
  for (;;) {
    if (resumable_) install_pending_attach();
    // Frames poll_control() parked while a send path drained the wire are
    // consumed first, in arrival order.
    bool have_frame = false;
    if (options_.flow_control && !pending_frames_.empty()) {
      recv_frame_ = std::move(pending_frames_.front());
      pending_frames_.pop_front();
      have_frame = true;
    }
    if (!have_frame && !channel_.is_open()) {
      if (!resumable_)
        return Status(ErrorCode::kIoError, "channel is closed");
      const int remaining =
          timeout_ms - static_cast<int>(budget.elapsed_ms());
      XMIT_RETURN_IF_ERROR(await_transport(std::max(remaining, 0)));
      continue;
    }
    if (!have_frame) {
      if (options_.flow_control) {
        // A fresh receiver seeds the peer's credit before anything else
        // can arrive — without this first grant a flow-controlled sender
        // with no handshake in its life would starve forever.
        if (credit_grants_sent_ == 0) maybe_grant(/*force=*/true);
        pump_send_queue();
      }
      int slice = std::max(
          timeout_ms - static_cast<int>(budget.elapsed_ms()), 0);
      if (resumable_ || options_.flow_control) {
        // Wake often enough to heartbeat and to notice a blown liveness
        // deadline even when the caller's budget is generous.
        slice = std::min(slice, options_.heartbeat_interval_ms);
        const double live_left =
            options_.liveness_deadline_ms -
            (clock_.elapsed_ms() - last_inbound_ms_);
        slice = std::min(slice, std::max(static_cast<int>(live_left), 0));
      }
      Status got = options_.flow_control
                       ? fc_receive_frame(recv_frame_, slice)
                       : channel_.receive_into(recv_frame_, slice);
      if (!got.is_ok()) {
        if (got.code() == ErrorCode::kTimeout) {
          if ((resumable_ || options_.flow_control) &&
              clock_.elapsed_ms() - last_inbound_ms_ >=
                  options_.liveness_deadline_ms)
            return Status(ErrorCode::kTimeout,
                          "peer silent past the liveness deadline");
          if (budget.elapsed_ms() >= timeout_ms) return got;
          maybe_ping();
          continue;
        }
        if (resumable_ && (got.code() == ErrorCode::kNotFound ||
                           got.code() == ErrorCode::kIoError)) {
          // Clean close and death mid-frame are both just a transport loss
          // for a resumable session: reconnect/await and keep receiving.
          note_transport_lost();
          continue;
        }
        if (options_.flow_control &&
            got.code() == ErrorCode::kResourceExhausted)
          return note_malformed(got);  // oversized inbound frame
        return got;
      }
      last_inbound_ms_ = clock_.elapsed_ms();
    }
    if (recv_frame_.empty())
      return note_malformed(
          Status(ErrorCode::kParseError, "empty session frame"));
    if (recv_frame_.size() > limits_.max_message_bytes)
      return note_malformed(Status(ErrorCode::kResourceExhausted,
                                   "session frame exceeds size limit"));
    std::span<const std::uint8_t> payload(recv_frame_.data() + 1,
                                          recv_frame_.size() - 1);
    switch (recv_frame_[0]) {
      case kTagFormat: {
        auto format = pbio::deserialize_format(payload, limits_);
        if (!format.is_ok()) {
          // A truncated in-band announcement (peer died mid-write) must
          // not poison the session — report and keep the stream usable.
          return note_malformed(format.status());
        }
        XMIT_ASSIGN_OR_RETURN(auto adopted,
                              registry_->adopt(std::move(format).value()));
        // What the peer announced, we need not re-announce to them.
        announced_.insert(adopted->id());
        // A fresh, well-formed announcement vouches for the format again.
        quarantined_.erase(adopted->id());
        ++announcements_received_;
        continue;
      }
      case kTagRecord: {
        if (payload.size() < kSeqBytes)
          return note_malformed(
              Status(ErrorCode::kParseError,
                     "record frame too short for its sequence number"));
        const std::uint64_t seq = load_with_order<std::uint64_t>(
            payload.data(), ByteOrder::kLittle);
        const std::span<const std::uint8_t> record =
            payload.subspan(kSeqBytes);
        if (seq <= last_seq_received_) {
          // An at-least-once replay we already delivered: drop silently.
          ++duplicates_discarded_;
          continue;
        }
        if (seq > last_seq_received_ + 1) {
          const std::uint64_t lost = seq - last_seq_received_ - 1;
          last_seq_received_ = seq;  // adopt: report each gap exactly once
          return Status(ErrorCode::kDataLoss,
                        std::to_string(lost) +
                            " record(s) lost in a sequence gap the peer's "
                            "replay buffer could not cover");
        }
        last_seq_received_ = seq;
        // Quarantine check runs on the raw header, before the (costlier)
        // structural inspection a hostile record would fail anyway.
        auto header = pbio::parse_header(record);
        if (header.is_ok() &&
            quarantined_.contains(header.value().format_id)) {
          return note_malformed(Status(
              ErrorCode::kMalformedInput,
              "record claims quarantined format id; re-announce to clear"));
        }
        auto info = decoder_->inspect(record);
        if (!info.is_ok()) {
          // Affirmatively hostile bytes (internal contradictions, blown
          // budgets) poison trust in that format id until the peer
          // re-announces it. Mere truncation — a peer dying mid-write, a
          // lossy channel — does not: the next intact record must decode.
          if (header.is_ok() &&
              (info.code() == ErrorCode::kMalformedInput ||
               info.code() == ErrorCode::kResourceExhausted)) {
            quarantined_.insert(header.value().format_id);
            drop_plan_pins_for(header.value().format_id);
          }
          return note_malformed(info.status());
        }
        ++records_received_;
        maybe_grant(/*force=*/false);  // drained half a window? re-arm it
        return IncomingView{record, std::move(info.value().sender_format)};
      }
      case kTagHandshake: {
        Status st = process_handshake(payload);
        if (st.is_ok()) continue;
        if (st.code() == ErrorCode::kIoError ||
            st.code() == ErrorCode::kNotFound) {
          // Our *reply or replay* write failed: transport trouble, not
          // peer hostility. A still-open channel means the peer
          // half-closed with frames in flight — keep draining it.
          if (resumable_) {
            if (!channel_.is_open()) note_transport_lost();
            continue;
          }
          if (!channel_.is_open()) return st;
          continue;
        }
        return note_malformed(st);
      }
      case kTagPing:
      case kTagPong: {
        if (payload.size() != kSeqBytes)
          return note_malformed(
              Status(ErrorCode::kParseError, "bad ping/pong frame length"));
        Status st = absorb_ack(load_with_order<std::uint64_t>(
            payload.data(), ByteOrder::kLittle));
        if (!st.is_ok()) return note_malformed(st);
        if (recv_frame_[0] == kTagPing && channel_.is_open()) {
          std::uint8_t pong[1 + kSeqBytes];
          pong[0] = kTagPong;
          store_with_order<std::uint64_t>(pong + 1, last_seq_received_,
                                          ByteOrder::kLittle);
          if (options_.flow_control) {
            // Queue-safe pong; and a ping doubles as a credit probe.
            enqueue_control(
                std::span<const std::uint8_t>(pong, sizeof(pong)),
                /*droppable=*/true);
            maybe_grant(/*force=*/true);
          } else {
            Status sent = channel_.send(
                std::span<const std::uint8_t>(pong, sizeof(pong)));
            if (!sent.is_ok() && resumable_ && !channel_.is_open())
              note_transport_lost();
          }
        }
        continue;
      }
      case kTagDurableRange: {
        if (payload.size() != kDurableRangePayloadBytes)
          return note_malformed(Status(ErrorCode::kParseError,
                                       "bad durable-range frame length"));
        const std::uint64_t first = load_with_order<std::uint64_t>(
            payload.data(), ByteOrder::kLittle);
        const std::uint64_t last = load_with_order<std::uint64_t>(
            payload.data() + 8, ByteOrder::kLittle);
        if (first == 0 || last < first)
          return note_malformed(Status(
              ErrorCode::kMalformedInput,
              "durable-range advert [" + std::to_string(first) + ", " +
                  std::to_string(last) + "] is not a valid range"));
        peer_durable_first_ = first;
        peer_durable_last_ = last;
        continue;
      }
      case kTagReplayRequest: {
        if (payload.size() != kSeqBytes)
          return note_malformed(Status(ErrorCode::kParseError,
                                       "bad replay-request frame length"));
        const std::uint64_t from = load_with_order<std::uint64_t>(
            payload.data(), ByteOrder::kLittle);
        if (from == 0)
          return note_malformed(Status(ErrorCode::kMalformedInput,
                                       "replay request from sequence 0"));
        // Only a durable sender can honor history; anyone else ignores
        // the request (the requester learns nothing arrived and moves
        // on) rather than guessing at records it no longer has.
        if (!durable_ || log_ == nullptr || log_->empty()) continue;
        // The requester may be a brand-new subscriber that never saw
        // our format announcements: forget what *we* announced so the
        // stream re-sends every schema ahead of its data. Re-announcing
        // to a peer that already knows a format is an idempotent no-op
        // on its side.
        for (const auto& [fid, seq] : announce_seq_) announced_.erase(fid);
        Status streamed =
            stream_from_log(std::max(from, log_->first_seq()),
                            log_->last_seq());
        if (!streamed.is_ok()) {
          if (resumable_ && (streamed.code() == ErrorCode::kIoError ||
                             streamed.code() == ErrorCode::kNotFound)) {
            if (!channel_.is_open()) note_transport_lost();
            continue;
          }
          return streamed;
        }
        continue;
      }
      case kTagCredit: {
        Status st = process_credit(payload);
        if (!st.is_ok()) return note_malformed(st);
        pump_send_queue();  // fresh credit may unblock queued data now
        continue;
      }
      case kTagShed: {
        Status st = process_shed(payload);
        if (st.is_ok()) {
          // The dedup window jumped; the drained count may owe a grant.
          maybe_grant(/*force=*/false);
          continue;
        }
        if (st.code() == ErrorCode::kDataLoss) return st;
        return note_malformed(st);
      }
      default:
        return note_malformed(
            Status(ErrorCode::kParseError, "unknown session frame tag " +
                                               std::to_string(recv_frame_[0])));
    }
  }
}

void MessageSession::pin_batch_plan(const pbio::FormatPtr& sender,
                                    const pbio::Format& receiver) {
  if (!sender) return;
  auto key = std::make_pair(sender->id(), receiver.id());
  if (plan_pins_.contains(key)) return;
  auto pin = decoder_->pin_plan(sender, receiver);
  if (pin.is_ok())
    plan_pins_.emplace(key, std::move(pin).value());
  else
    ++plan_pin_failures_;  // degraded, not broken: the plan rebuilds
}

void MessageSession::drop_plan_pins_for(pbio::FormatId sender_id) {
  for (auto it = plan_pins_.begin(); it != plan_pins_.end();) {
    if (it->first.first == sender_id)
      it = plan_pins_.erase(it);
    else
      ++it;
  }
}

Result<std::size_t> MessageSession::receive_batch(const pbio::Format& receiver,
                                                  void* out, std::size_t stride,
                                                  std::size_t max_records,
                                                  int timeout_ms) {
  if (max_records == 0)
    return Status(ErrorCode::kInvalidArgument, "receive_batch of 0 records");
  if (!batch_decoder_) {
    batch_decoder_ = std::make_unique<pbio::BatchDecoder>(
        *decoder_, options_.batch_decode_workers == 0
                       ? 1
                       : options_.batch_decode_workers);
  }
  if (batch_records_.size() < max_records) batch_records_.resize(max_records);
  batch_spans_.clear();

  // The first record is worth the caller's whole budget; everything after
  // it is pure drain — take only what the transport already holds.
  XMIT_ASSIGN_OR_RETURN(auto first, receive_view(timeout_ms));
  pin_batch_plan(first.sender_format, receiver);
  batch_records_[0].assign(first.bytes.begin(), first.bytes.end());
  batch_spans_.emplace_back(batch_records_[0].data(),
                            batch_records_[0].size());
  while (batch_spans_.size() < max_records) {
    auto more = receive_view(0);
    if (!more.is_ok()) {
      const ErrorCode code = more.status().code();
      // Drain exhausted (or the peer went away mid-drain): decode what we
      // have; a close/liveness condition resurfaces on the next call.
      if (code == ErrorCode::kTimeout || code == ErrorCode::kNotFound ||
          code == ErrorCode::kIoError)
        break;
      return more.status();
    }
    pin_batch_plan(more.value().sender_format, receiver);
    std::vector<std::uint8_t>& slot = batch_records_[batch_spans_.size()];
    slot.assign(more.value().bytes.begin(), more.value().bytes.end());
    batch_spans_.emplace_back(slot.data(), slot.size());
  }

  XMIT_RETURN_IF_ERROR(batch_decoder_->decode_batch(
      std::span<const std::span<const std::uint8_t>>(batch_spans_.data(),
                                                     batch_spans_.size()),
      receiver, out, stride));
  return batch_spans_.size();
}

Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b) {
  XMIT_ASSIGN_OR_RETURN(auto pipe, net::Channel::pipe());
  return SessionPair{MessageSession(std::move(pipe.first), registry_a),
                     MessageSession(std::move(pipe.second), registry_b)};
}

Result<SessionPair> make_session_pipe(pbio::FormatRegistry& registry_a,
                                      pbio::FormatRegistry& registry_b,
                                      SessionOptions options) {
  XMIT_ASSIGN_OR_RETURN(auto pipe, net::Channel::pipe());
  return SessionPair{
      MessageSession(std::move(pipe.first), registry_a, options),
      MessageSession(std::move(pipe.second), registry_b, options)};
}

Result<TcpSessionPair> make_session_tcp(pbio::FormatRegistry& registry_a,
                                        pbio::FormatRegistry& registry_b,
                                        SessionOptions options) {
  options.resumable = true;
  XMIT_ASSIGN_OR_RETURN(auto listener, net::ChannelListener::listen(0));
  MessageSession a(net::Endpoint::tcp("127.0.0.1", listener.port()),
                   registry_a, options);
  XMIT_RETURN_IF_ERROR(a.connect_now());
  XMIT_ASSIGN_OR_RETURN(auto accepted, listener.accept(5000));
  MessageSession b(std::move(accepted), registry_b, options);
  return TcpSessionPair{std::move(listener), std::move(a), std::move(b)};
}

}  // namespace xmit::session
