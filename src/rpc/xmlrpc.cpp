#include "rpc/xmlrpc.hpp"

#include "common/strings.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace xmit::rpc {

// --- value model -----------------------------------------------------------

Value Value::from_int(std::int32_t v) {
  Value out;
  out.kind_ = Kind::kInt;
  out.scalar_ = v;
  return out;
}

Value Value::from_bool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.scalar_ = v ? 1 : 0;
  return out;
}

Value Value::from_double(double v) {
  Value out;
  out.kind_ = Kind::kDouble;
  out.real_ = v;
  return out;
}

Value Value::from_string(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.text_ = std::move(v);
  return out;
}

Value Value::array(std::vector<Value> items) {
  Value out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}

Value Value::structure(std::map<std::string, Value> members) {
  Value out;
  out.kind_ = Kind::kStruct;
  out.struct_ = std::move(members);
  return out;
}

Result<std::int32_t> Value::as_int() const {
  if (kind_ != Kind::kInt)
    return Status(ErrorCode::kInvalidArgument, "value is not an int");
  return static_cast<std::int32_t>(scalar_);
}

Result<bool> Value::as_bool() const {
  if (kind_ != Kind::kBool)
    return Status(ErrorCode::kInvalidArgument, "value is not a boolean");
  return scalar_ != 0;
}

Result<double> Value::as_double() const {
  if (kind_ == Kind::kDouble) return real_;
  if (kind_ == Kind::kInt) return static_cast<double>(scalar_);
  return Status(ErrorCode::kInvalidArgument, "value is not a double");
}

Result<std::string> Value::as_string() const {
  if (kind_ != Kind::kString)
    return Status(ErrorCode::kInvalidArgument, "value is not a string");
  return text_;
}

Result<const std::vector<Value>*> Value::as_array() const {
  if (kind_ != Kind::kArray)
    return Status(ErrorCode::kInvalidArgument, "value is not an array");
  return &array_;
}

Result<const Value*> Value::member(const std::string& name) const {
  if (kind_ != Kind::kStruct)
    return Status(ErrorCode::kInvalidArgument, "value is not a struct");
  auto it = struct_.find(name);
  if (it == struct_.end())
    return Status(ErrorCode::kNotFound, "struct has no member '" + name + "'");
  return &it->second;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kInt:
    case Kind::kBool:
      return scalar_ == other.scalar_;
    case Kind::kDouble:
      return real_ == other.real_;
    case Kind::kString:
      return text_ == other.text_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kStruct:
      return struct_ == other.struct_;
  }
  return false;
}

// --- serialization ---------------------------------------------------------

namespace {

void write_value(std::string& out, const Value& value) {
  out += "<value>";
  switch (value.kind()) {
    case Value::Kind::kInt:
      out += "<i4>" + format_int(value.as_int().value()) + "</i4>";
      break;
    case Value::Kind::kBool:
      out += std::string("<boolean>") + (value.as_bool().value() ? "1" : "0") +
             "</boolean>";
      break;
    case Value::Kind::kDouble:
      out += "<double>" + format_double(value.as_double().value()) + "</double>";
      break;
    case Value::Kind::kString:
      out += "<string>" + xml::escape_text(value.as_string().value()) +
             "</string>";
      break;
    case Value::Kind::kArray:
      out += "<array><data>";
      for (const Value& item : value.items()) write_value(out, item);
      out += "</data></array>";
      break;
    case Value::Kind::kStruct:
      out += "<struct>";
      for (const auto& [name, member] : value.members()) {
        out += "<member><name>" + xml::escape_text(name) + "</name>";
        write_value(out, member);
        out += "</member>";
      }
      out += "</struct>";
      break;
  }
  out += "</value>";
}

Result<Value> parse_value(const xml::Element& value_node);

Result<Value> parse_typed(const xml::Element& node) {
  std::string_view tag = node.local_name();
  std::string text = node.text();
  if (tag == "i4" || tag == "int") {
    XMIT_ASSIGN_OR_RETURN(auto v, parse_int(trim(text)));
    return Value::from_int(static_cast<std::int32_t>(v));
  }
  if (tag == "boolean") {
    std::string_view t = trim(text);
    if (t == "1" || t == "true") return Value::from_bool(true);
    if (t == "0" || t == "false") return Value::from_bool(false);
    return Status(ErrorCode::kParseError, "bad boolean '" + text + "'");
  }
  if (tag == "double") {
    XMIT_ASSIGN_OR_RETURN(auto v, parse_double(trim(text)));
    return Value::from_double(v);
  }
  if (tag == "string") return Value::from_string(std::move(text));
  if (tag == "array") {
    const xml::Element* data = node.first_child("data");
    if (data == nullptr)
      return Status(ErrorCode::kParseError, "<array> without <data>");
    std::vector<Value> items;
    for (const auto* child : data->children_named("value")) {
      XMIT_ASSIGN_OR_RETURN(auto item, parse_value(*child));
      items.push_back(std::move(item));
    }
    return Value::array(std::move(items));
  }
  if (tag == "struct") {
    std::map<std::string, Value> members;
    for (const auto* member : node.children_named("member")) {
      const xml::Element* name = member->first_child("name");
      const xml::Element* value = member->first_child("value");
      if (name == nullptr || value == nullptr)
        return Status(ErrorCode::kParseError, "malformed <member>");
      XMIT_ASSIGN_OR_RETURN(auto parsed, parse_value(*value));
      members.emplace(name->text(), std::move(parsed));
    }
    return Value::structure(std::move(members));
  }
  return Status(ErrorCode::kUnsupported,
                "unsupported XML-RPC type <" + std::string(tag) + ">");
}

Result<Value> parse_value(const xml::Element& value_node) {
  auto children = value_node.child_elements();
  if (children.empty()) {
    // Untyped content is a string per the spec.
    return Value::from_string(value_node.text());
  }
  if (children.size() != 1)
    return Status(ErrorCode::kParseError, "<value> with multiple children");
  return parse_typed(*children.front());
}

constexpr const char* kPrologue = "<?xml version=\"1.0\"?>";

}  // namespace

std::string write_method_call(const MethodCall& call) {
  std::string out = kPrologue;
  out += "<methodCall><methodName>" + xml::escape_text(call.method) +
         "</methodName><params>";
  for (const Value& param : call.params) {
    out += "<param>";
    write_value(out, param);
    out += "</param>";
  }
  out += "</params></methodCall>";
  return out;
}

std::string write_method_response(const Value& value) {
  std::string out = kPrologue;
  out += "<methodResponse><params><param>";
  write_value(out, value);
  out += "</param></params></methodResponse>";
  return out;
}

std::string write_fault(int code, const std::string& message) {
  Value fault = Value::structure({
      {"faultCode", Value::from_int(code)},
      {"faultString", Value::from_string(message)},
  });
  std::string out = kPrologue;
  out += "<methodResponse><fault>";
  write_value(out, fault);
  out += "</fault></methodResponse>";
  return out;
}

Result<MethodCall> parse_method_call(std::string_view text,
                                     const DecodeLimits& limits) {
  xml::ParseOptions options;
  options.limits = limits;
  XMIT_ASSIGN_OR_RETURN(auto document,
                        xml::parse_document_strict(text, options));
  const xml::Element& root = document.root_element();
  if (root.local_name() != "methodCall")
    return Status(ErrorCode::kParseError, "not a <methodCall> document");
  const xml::Element* name = root.first_child("methodName");
  if (name == nullptr)
    return Status(ErrorCode::kParseError, "<methodCall> without <methodName>");
  MethodCall call;
  call.method = std::string(trim(name->text()));
  if (call.method.empty())
    return Status(ErrorCode::kParseError, "empty method name");
  if (const xml::Element* params = root.first_child("params")) {
    for (const auto* param : params->children_named("param")) {
      const xml::Element* value = param->first_child("value");
      if (value == nullptr)
        return Status(ErrorCode::kParseError, "<param> without <value>");
      XMIT_ASSIGN_OR_RETURN(auto parsed, parse_value(*value));
      call.params.push_back(std::move(parsed));
    }
  }
  return call;
}

Result<MethodResponse> parse_method_response(std::string_view text,
                                             const DecodeLimits& limits) {
  xml::ParseOptions options;
  options.limits = limits;
  XMIT_ASSIGN_OR_RETURN(auto document,
                        xml::parse_document_strict(text, options));
  const xml::Element& root = document.root_element();
  if (root.local_name() != "methodResponse")
    return Status(ErrorCode::kParseError, "not a <methodResponse> document");

  MethodResponse response;
  if (const xml::Element* fault = root.first_child("fault")) {
    const xml::Element* value = fault->first_child("value");
    if (value == nullptr)
      return Status(ErrorCode::kParseError, "<fault> without <value>");
    XMIT_ASSIGN_OR_RETURN(auto parsed, parse_value(*value));
    response.faulted = true;
    XMIT_ASSIGN_OR_RETURN(auto code, parsed.member("faultCode"));
    XMIT_ASSIGN_OR_RETURN(response.fault.code, code->as_int());
    XMIT_ASSIGN_OR_RETURN(auto message, parsed.member("faultString"));
    XMIT_ASSIGN_OR_RETURN(response.fault.message, message->as_string());
    return response;
  }
  const xml::Element* params = root.first_child("params");
  if (params == nullptr)
    return Status(ErrorCode::kParseError, "response without <params>/<fault>");
  auto param_list = params->children_named("param");
  if (param_list.size() != 1)
    return Status(ErrorCode::kParseError, "response must carry one <param>");
  const xml::Element* value = param_list.front()->first_child("value");
  if (value == nullptr)
    return Status(ErrorCode::kParseError, "<param> without <value>");
  XMIT_ASSIGN_OR_RETURN(response.value, parse_value(*value));
  return response;
}

// --- server ----------------------------------------------------------------

XmlRpcServer::XmlRpcServer(net::HttpServer& server, std::string endpoint)
    : state_(std::make_shared<State>()), endpoint_(std::move(endpoint)) {
  server.set_post_handler(endpoint_, [state = state_](const std::string& body) {
    net::HttpResponse http;
    http.status_code = 200;  // XML-RPC signals faults in-band
    http.content_type = "text/xml";

    auto call = parse_method_call(body);
    if (!call.is_ok()) {
      http.body = write_fault(-32700, "parse error: " + call.message());
      return http;
    }
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->calls;
      auto it = state->methods.find(call.value().method);
      if (it != state->methods.end()) handler = it->second;
    }
    if (!handler) {
      http.body = write_fault(
          -32601, "method not found: " + call.value().method);
      return http;
    }
    auto result = handler(call.value().params);
    http.body = result.is_ok() ? write_method_response(result.value())
                               : write_fault(-32500, result.message());
    return http;
  });
}

void XmlRpcServer::register_method(std::string name, Handler handler) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->methods[std::move(name)] = std::move(handler);
}

std::size_t XmlRpcServer::calls_served() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->calls;
}

// --- client ----------------------------------------------------------------

Result<Value> XmlRpcClient::call(const std::string& method,
                                 const std::vector<Value>& params,
                                 int timeout_ms) {
  MethodCall request{method, params};
  XMIT_ASSIGN_OR_RETURN(
      auto http, net::HttpClient::post(host_, port_, endpoint_,
                                       write_method_call(request), "text/xml",
                                       timeout_ms));
  if (http.status_code != 200)
    return Status(ErrorCode::kIoError,
                  "HTTP " + std::to_string(http.status_code));
  XMIT_ASSIGN_OR_RETURN(auto response, parse_method_response(http.body));
  if (response.faulted)
    return Status(ErrorCode::kInternal,
                  "fault " + std::to_string(response.fault.code) + ": " +
                      response.fault.message);
  return response.value;
}

}  // namespace xmit::rpc
