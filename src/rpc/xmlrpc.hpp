// XML-RPC style interface (paper §3.2: "We plan to implement SOAP/XML-RPC
// style interfaces").
//
// Implements the XML-RPC wire protocol [http://www.xmlrpc.com/spec]:
// <methodCall>/<methodResponse> envelopes over HTTP POST, the scalar types
// i4/boolean/double/string plus <array> and <struct>, and <fault>
// responses. This is the "XML as a wire format" world the paper contrasts
// XMIT against — having it in-tree lets applications interoperate with
// text-based peers on control paths while keeping bulk data on PBIO, and
// lets the benches quantify exactly what that convenience costs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/limits.hpp"
#include "net/http.hpp"

namespace xmit::rpc {

// The XML-RPC value model.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kInt,      // <i4>/<int>
    kBool,     // <boolean>
    kDouble,   // <double>
    kString,   // <string> (also bare text content)
    kArray,    // <array><data>...
    kStruct,   // <struct><member>...
  };

  Value() : kind_(Kind::kString) {}

  static Value from_int(std::int32_t v);
  static Value from_bool(bool v);
  static Value from_double(double v);
  static Value from_string(std::string v);
  static Value array(std::vector<Value> items);
  static Value structure(std::map<std::string, Value> members);

  Kind kind() const { return kind_; }
  bool is(Kind kind) const { return kind_ == kind; }

  // Typed accessors; wrong-kind access returns an error, never UB.
  Result<std::int32_t> as_int() const;
  Result<bool> as_bool() const;
  Result<double> as_double() const;
  Result<std::string> as_string() const;
  Result<const std::vector<Value>*> as_array() const;
  Result<const Value*> member(const std::string& name) const;
  const std::map<std::string, Value>& members() const { return struct_; }
  const std::vector<Value>& items() const { return array_; }

  bool operator==(const Value& other) const;

 private:
  Kind kind_;
  std::int64_t scalar_ = 0;    // int / bool
  double real_ = 0;
  std::string text_;
  std::vector<Value> array_;
  std::map<std::string, Value> struct_;
};

struct MethodCall {
  std::string method;
  std::vector<Value> params;
};

struct Fault {
  int code = 0;
  std::string message;
};

struct MethodResponse {
  // Exactly one of value / fault is meaningful; `faulted` selects.
  bool faulted = false;
  Value value;
  Fault fault;
};

// Wire form (spec-conformant documents with the <?xml?> prologue).
std::string write_method_call(const MethodCall& call);
std::string write_method_response(const Value& value);
std::string write_fault(int code, const std::string& message);

// Documents arrive over HTTP from untrusted peers; `limits` bounds the
// underlying XML parse (depth, element count, text size, entity
// expansion) and the recursion depth of the value tree.
Result<MethodCall> parse_method_call(std::string_view text,
                                     const DecodeLimits& limits =
                                         DecodeLimits::defaults());
Result<MethodResponse> parse_method_response(std::string_view text,
                                             const DecodeLimits& limits =
                                                 DecodeLimits::defaults());

// Server: dispatches POSTs on an HttpServer endpoint to named handlers.
class XmlRpcServer {
 public:
  using Handler = std::function<Result<Value>(const std::vector<Value>&)>;

  // Installs the dispatcher at `endpoint` on `server`.
  XmlRpcServer(net::HttpServer& server, std::string endpoint = "/RPC2");

  // Register a method (replaces any previous handler of that name).
  void register_method(std::string name, Handler handler);

  const std::string& endpoint() const { return endpoint_; }
  std::size_t calls_served() const;

 private:
  net::HttpResponse dispatch(const std::string& body);

  struct State {
    std::mutex mutex;
    std::map<std::string, Handler> methods;
    std::size_t calls = 0;
  };
  std::shared_ptr<State> state_;  // shared with the server thread's lambda
  std::string endpoint_;
};

// Client: one call per invocation, faults surfaced as kInternal errors
// with "fault <code>: <message>".
class XmlRpcClient {
 public:
  XmlRpcClient(std::string host, std::uint16_t port,
               std::string endpoint = "/RPC2")
      : host_(std::move(host)), port_(port), endpoint_(std::move(endpoint)) {}

  Result<Value> call(const std::string& method,
                     const std::vector<Value>& params, int timeout_ms = 5000);

 private:
  std::string host_;
  std::uint16_t port_;
  std::string endpoint_;
};

}  // namespace xmit::rpc
