// IIOP/GIOP-style request-reply layer (paper §3.2: "We plan to implement
// SOAP/XML-RPC style interfaces and also IIOP").
//
// Implements the GIOP 1.0 message discipline over our Channel transport:
// a 12-byte message header (magic "GIOP", version, byte-order flag,
// message type, body size), CDR-encoded Request and Reply headers
// (request id, response-expected, object key, operation name; reply
// status), and *encapsulated* bodies — each body is a CDR encapsulation
// (leading endian octet, alignment restarting at its origin), which is
// exactly what baseline::CdrCodec produces for a PBIO-described struct.
// The reader-makes-right property the paper ascribes to IIOP holds at
// both levels: header integers follow the message's byte-order flag, and
// body decoding follows the encapsulation's own flag.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/limits.hpp"
#include "net/channel.hpp"

namespace xmit::rpc {

enum class GiopMessageType : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kCloseConnection = 5,
};

enum class GiopReplyStatus : std::uint32_t {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
};

struct GiopRequest {
  std::uint32_t request_id = 0;
  bool response_expected = true;
  std::string object_key;
  std::string operation;
  std::vector<std::uint8_t> body;  // CDR encapsulation
};

struct GiopReply {
  std::uint32_t request_id = 0;
  GiopReplyStatus status = GiopReplyStatus::kNoException;
  std::vector<std::uint8_t> body;  // CDR encapsulation (or exception text)
};

// Message-level encode/parse, exposed for tests and for simulating foreign
// senders (any byte order).
std::vector<std::uint8_t> encode_giop_request(const GiopRequest& request,
                                              ByteOrder order = host_byte_order());
std::vector<std::uint8_t> encode_giop_reply(const GiopReply& reply,
                                            ByteOrder order = host_byte_order());

struct GiopMessage {
  GiopMessageType type;
  // Exactly one of these is populated, per `type`.
  GiopRequest request;
  GiopReply reply;
};

// Messages come off the network; declared lengths (message size, string
// and octet-sequence counts) are capped by `limits` before any allocation
// sized from them.
Result<GiopMessage> parse_giop_message(std::span<const std::uint8_t> bytes,
                                       const DecodeLimits& limits =
                                           DecodeLimits::defaults());

// Client half of a connection: correlates replies by request id.
class GiopClient {
 public:
  explicit GiopClient(net::Channel channel) : channel_(std::move(channel)) {}

  // Synchronous invoke: sends a Request, waits for the matching Reply.
  // A kUserException/kSystemException reply surfaces as kInternal with
  // the exception text from the body.
  Result<std::vector<std::uint8_t>> invoke(const std::string& object_key,
                                           const std::string& operation,
                                           std::span<const std::uint8_t> body,
                                           int timeout_ms = 5000);

  // One-way request (response_expected = false).
  Status send_oneway(const std::string& object_key,
                     const std::string& operation,
                     std::span<const std::uint8_t> body);

  void close() { channel_.close(); }

 private:
  net::Channel channel_;
  std::uint32_t next_request_id_ = 1;
};

// Server half: a dispatch table of (object key, operation) -> handler.
class GiopServer {
 public:
  // Handler: request body in, reply body out (both CDR encapsulations).
  using Handler =
      std::function<Result<std::vector<std::uint8_t>>(std::span<const std::uint8_t>)>;

  void register_operation(const std::string& object_key,
                          const std::string& operation, Handler handler);

  // Serves one connection until the peer closes; every Request gets a
  // Reply (unknown targets -> SYSTEM_EXCEPTION). Runs on the caller's
  // thread (callers typically spawn one thread per connection).
  Status serve(net::Channel& channel);

  std::size_t requests_served() const { return served_; }

 private:
  std::map<std::pair<std::string, std::string>, Handler> handlers_;
  std::size_t served_ = 0;
};

}  // namespace xmit::rpc
