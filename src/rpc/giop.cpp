#include "rpc/giop.hpp"

#include <cstring>

namespace xmit::rpc {
namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'I', 'O', 'P'};
constexpr std::uint8_t kVersionMajor = 1;
constexpr std::uint8_t kVersionMinor = 0;
constexpr std::size_t kHeaderSize = 12;

// CDR primitives within a GIOP message body: aligned relative to the
// start of the message body (offset kHeaderSize), per the GIOP spec.
class CdrWriter {
 public:
  CdrWriter(ByteBuffer& out, ByteOrder order) : out_(out), order_(order) {}

  void align(std::size_t alignment) {
    std::size_t body = out_.size() - kHeaderSize;
    out_.append_zeros(align_up(body, alignment) - body);
  }

  void put_u8(std::uint8_t v) { out_.append_byte(v); }

  void put_u32(std::uint32_t v) {
    align(4);
    out_.append_u32(v, order_);
  }

  // CORBA string: u32 length (including NUL) + bytes + NUL.
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size() + 1));
    out_.append(s);
    out_.append_byte(0);
  }

  // sequence<octet>: u32 count + bytes.
  void put_octets(std::span<const std::uint8_t> bytes) {
    put_u32(static_cast<std::uint32_t>(bytes.size()));
    if (!bytes.empty()) out_.append(bytes.data(), bytes.size());
  }

 private:
  ByteBuffer& out_;
  ByteOrder order_;
};

class CdrParser {
 public:
  CdrParser(ByteReader& reader, ByteOrder order, const DecodeLimits& limits)
      : reader_(reader), order_(order), limits_(limits) {}

  Status align(std::size_t alignment) {
    std::size_t body = reader_.position() - kHeaderSize;
    return reader_.seek(kHeaderSize + align_up(body, alignment));
  }

  Result<std::uint8_t> get_u8() { return reader_.read_u8(); }

  Result<std::uint32_t> get_u32() {
    XMIT_RETURN_IF_ERROR(align(4));
    return reader_.read_u32(order_);
  }

  Result<std::string> get_string() {
    XMIT_ASSIGN_OR_RETURN(auto length, get_u32());
    if (length == 0)
      return Status(ErrorCode::kParseError, "CORBA string with zero length");
    if (length > limits_.max_string_bytes)
      return Status(ErrorCode::kResourceExhausted,
                    "CORBA string length exceeds limit");
    XMIT_ASSIGN_OR_RETURN(auto raw, reader_.read_string(length));
    if (raw.back() != '\0')
      return Status(ErrorCode::kParseError, "CORBA string missing NUL");
    raw.pop_back();
    return raw;
  }

  Result<std::vector<std::uint8_t>> get_octets() {
    XMIT_ASSIGN_OR_RETURN(auto count, get_u32());
    if (count > reader_.remaining())
      return Status(ErrorCode::kMalformedInput, "octet sequence truncated");
    if (count > limits_.max_string_bytes)
      return Status(ErrorCode::kResourceExhausted,
                    "octet sequence length exceeds limit");
    std::vector<std::uint8_t> out(count);
    XMIT_RETURN_IF_ERROR(reader_.read_bytes(out.data(), count));
    return out;
  }

 private:
  ByteReader& reader_;
  ByteOrder order_;
  const DecodeLimits& limits_;
};

void write_header(ByteBuffer& out, GiopMessageType type, ByteOrder order) {
  out.append(kMagic, 4);
  out.append_byte(kVersionMajor);
  out.append_byte(kVersionMinor);
  out.append_byte(order == ByteOrder::kLittle ? 1 : 0);
  out.append_byte(static_cast<std::uint8_t>(type));
  out.reserve_slot(4);  // message_size, patched once the body is known
}

void finish_header(ByteBuffer& out, ByteOrder order) {
  out.patch_uint<std::uint32_t>(
      8, static_cast<std::uint32_t>(out.size() - kHeaderSize), order);
}

}  // namespace

std::vector<std::uint8_t> encode_giop_request(const GiopRequest& request,
                                              ByteOrder order) {
  ByteBuffer out;
  write_header(out, GiopMessageType::kRequest, order);
  CdrWriter writer(out, order);
  writer.put_u32(0);  // empty service context list
  writer.put_u32(request.request_id);
  writer.put_u8(request.response_expected ? 1 : 0);
  writer.put_octets(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(request.object_key.data()),
      request.object_key.size()));
  writer.put_string(request.operation);
  writer.put_u32(0);  // empty requesting principal
  // Parameter body: an encapsulation, 8-aligned like any CDR composite.
  writer.align(8);
  if (!request.body.empty()) out.append(request.body.data(), request.body.size());
  finish_header(out, order);
  return out.take();
}

std::vector<std::uint8_t> encode_giop_reply(const GiopReply& reply,
                                            ByteOrder order) {
  ByteBuffer out;
  write_header(out, GiopMessageType::kReply, order);
  CdrWriter writer(out, order);
  writer.put_u32(0);  // empty service context list
  writer.put_u32(reply.request_id);
  writer.put_u32(static_cast<std::uint32_t>(reply.status));
  writer.align(8);
  if (!reply.body.empty()) out.append(reply.body.data(), reply.body.size());
  finish_header(out, order);
  return out.take();
}

Result<GiopMessage> parse_giop_message(std::span<const std::uint8_t> bytes,
                                       const DecodeLimits& limits) {
  if (bytes.size() < kHeaderSize)
    return Status(ErrorCode::kOutOfRange, "GIOP message shorter than header");
  if (bytes.size() > limits.max_message_bytes)
    return Status(ErrorCode::kResourceExhausted,
                  "GIOP message exceeds size limit");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0)
    return Status(ErrorCode::kParseError, "bad GIOP magic");
  if (bytes[4] != kVersionMajor || bytes[5] != kVersionMinor)
    return Status(ErrorCode::kUnsupported,
                  "unsupported GIOP version " + std::to_string(bytes[4]) + "." +
                      std::to_string(bytes[5]));
  ByteOrder order = bytes[6] ? ByteOrder::kLittle : ByteOrder::kBig;
  auto type = static_cast<GiopMessageType>(bytes[7]);
  std::uint32_t size = load_with_order<std::uint32_t>(bytes.data() + 8, order);
  if (bytes.size() != kHeaderSize + size)
    return Status(ErrorCode::kOutOfRange,
                  "GIOP message size mismatch: header says " +
                      std::to_string(size) + ", have " +
                      std::to_string(bytes.size() - kHeaderSize));

  ByteReader reader(bytes.data(), bytes.size());
  XMIT_RETURN_IF_ERROR(reader.skip(kHeaderSize));
  CdrParser parser(reader, order, limits);

  GiopMessage message;
  message.type = type;
  switch (type) {
    case GiopMessageType::kRequest: {
      XMIT_ASSIGN_OR_RETURN(auto contexts, parser.get_u32());
      if (contexts != 0)
        return Status(ErrorCode::kUnsupported, "service contexts unsupported");
      XMIT_ASSIGN_OR_RETURN(message.request.request_id, parser.get_u32());
      XMIT_ASSIGN_OR_RETURN(auto expected, parser.get_u8());
      message.request.response_expected = expected != 0;
      XMIT_ASSIGN_OR_RETURN(auto key, parser.get_octets());
      message.request.object_key.assign(key.begin(), key.end());
      XMIT_ASSIGN_OR_RETURN(message.request.operation, parser.get_string());
      XMIT_ASSIGN_OR_RETURN(auto principal, parser.get_u32());
      if (principal != 0)
        return Status(ErrorCode::kUnsupported, "principals unsupported");
      XMIT_RETURN_IF_ERROR(parser.align(8));
      message.request.body.assign(reader.cursor(),
                                  reader.cursor() + reader.remaining());
      return message;
    }
    case GiopMessageType::kReply: {
      XMIT_ASSIGN_OR_RETURN(auto contexts, parser.get_u32());
      if (contexts != 0)
        return Status(ErrorCode::kUnsupported, "service contexts unsupported");
      XMIT_ASSIGN_OR_RETURN(message.reply.request_id, parser.get_u32());
      XMIT_ASSIGN_OR_RETURN(auto status, parser.get_u32());
      if (status > 2)
        return Status(ErrorCode::kParseError,
                      "bad reply status " + std::to_string(status));
      message.reply.status = static_cast<GiopReplyStatus>(status);
      XMIT_RETURN_IF_ERROR(parser.align(8));
      message.reply.body.assign(reader.cursor(),
                                reader.cursor() + reader.remaining());
      return message;
    }
    case GiopMessageType::kCloseConnection:
      return message;
  }
  return Status(ErrorCode::kUnsupported,
                "unsupported GIOP message type " +
                    std::to_string(static_cast<int>(type)));
}

Result<std::vector<std::uint8_t>> GiopClient::invoke(
    const std::string& object_key, const std::string& operation,
    std::span<const std::uint8_t> body, int timeout_ms) {
  GiopRequest request;
  request.request_id = next_request_id_++;
  request.response_expected = true;
  request.object_key = object_key;
  request.operation = operation;
  request.body.assign(body.begin(), body.end());
  XMIT_RETURN_IF_ERROR(channel_.send(encode_giop_request(request)));

  XMIT_ASSIGN_OR_RETURN(auto raw, channel_.receive(timeout_ms));
  XMIT_ASSIGN_OR_RETURN(auto message, parse_giop_message(raw));
  if (message.type != GiopMessageType::kReply)
    return Status(ErrorCode::kParseError, "expected a Reply message");
  if (message.reply.request_id != request.request_id)
    return Status(ErrorCode::kParseError,
                  "reply correlates to request " +
                      std::to_string(message.reply.request_id) + ", expected " +
                      std::to_string(request.request_id));
  if (message.reply.status != GiopReplyStatus::kNoException) {
    std::string text(message.reply.body.begin(), message.reply.body.end());
    return Status(ErrorCode::kInternal,
                  (message.reply.status == GiopReplyStatus::kUserException
                       ? "user exception: "
                       : "system exception: ") +
                      text);
  }
  return std::move(message.reply.body);
}

Status GiopClient::send_oneway(const std::string& object_key,
                               const std::string& operation,
                               std::span<const std::uint8_t> body) {
  GiopRequest request;
  request.request_id = next_request_id_++;
  request.response_expected = false;
  request.object_key = object_key;
  request.operation = operation;
  request.body.assign(body.begin(), body.end());
  return channel_.send(encode_giop_request(request));
}

void GiopServer::register_operation(const std::string& object_key,
                                    const std::string& operation,
                                    Handler handler) {
  handlers_[{object_key, operation}] = std::move(handler);
}

Status GiopServer::serve(net::Channel& channel) {
  for (;;) {
    auto raw = channel.receive(10000);
    if (!raw.is_ok()) {
      if (raw.code() == ErrorCode::kNotFound) return Status::ok();  // EOF
      return raw.status();
    }
    XMIT_ASSIGN_OR_RETURN(auto message, parse_giop_message(raw.value()));
    if (message.type == GiopMessageType::kCloseConnection) return Status::ok();
    if (message.type != GiopMessageType::kRequest)
      return make_error(ErrorCode::kParseError, "expected a Request message");

    const GiopRequest& request = message.request;
    ++served_;
    GiopReply reply;
    reply.request_id = request.request_id;

    auto it = handlers_.find({request.object_key, request.operation});
    if (it == handlers_.end()) {
      reply.status = GiopReplyStatus::kSystemException;
      std::string text = "no such operation: " + request.object_key + "::" +
                         request.operation;
      reply.body.assign(text.begin(), text.end());
    } else {
      auto result = it->second(request.body);
      if (result.is_ok()) {
        reply.body = std::move(result).value();
      } else {
        reply.status = GiopReplyStatus::kUserException;
        std::string text = result.status().to_string();
        reply.body.assign(text.begin(), text.end());
      }
    }
    if (request.response_expected)
      XMIT_RETURN_IF_ERROR(channel.send(encode_giop_reply(reply)));
  }
}

}  // namespace xmit::rpc
