// Offline pairwise plan pre-verification (DESIGN.md §5j).
//
// The plan verifier (plan_verify.hpp) proves one compiled (sender,
// receiver) op program safe at plan-admission time. The plan matrix moves
// that proof *offline*: given every version of a schema family, it
// compiles the decode plan for every ordered (sender version, receiver
// version) pair of every type name the two versions share — including
// self pairs — and runs the static verifier over each program. A set that
// passes the matrix cannot produce a plan-admission failure at runtime
// for any cross-version combination of its members, which is what makes
// a 10k-live-format registry safe to operate.
//
// Findings keep their PV codes; a pair whose plan does not even compile
// (e.g. a field changed between string and non-string across versions)
// is reported as XS008 — the set-level "this pair cannot interoperate"
// diagnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "common/error.hpp"
#include "pbio/arch.hpp"
#include "xmit/layout.hpp"
#include "xsd/types.hpp"

namespace xmit::analysis {

// One version of a schema family, laid out for both ends of the wire:
// sender layouts at the matrix's sender architecture, receiver layouts
// at the host (the architecture decode plans are compiled against).
struct VersionLayouts {
  std::string label;  // file name, used in pair diagnostics
  std::vector<toolkit::TypeLayout> sender;
  std::vector<toolkit::TypeLayout> receiver;
};

struct MatrixOptions {
  // Architecture the sender side of every pair is laid out for. The
  // receiver side is always the host. Running the matrix twice (host and
  // a foreign profile) covers both the homogeneous and the cross-endian
  // plan shapes.
  pbio::ArchInfo sender_arch = pbio::ArchInfo::host();
};

struct MatrixResult {
  // PV findings (location-prefixed with "old -> new") plus XS008 for
  // pairs whose plan fails to compile. Empty means every pair verified.
  std::vector<Diagnostic> findings;
  std::size_t pairs_verified = 0;  // plans compiled and verified clean
  std::size_t pairs_rejected = 0;  // compile failures + verifier rejections
};

// Lays one schema version out for the matrix. Fails only when the schema
// does not lay out at all (reported upstream as XS000).
Result<VersionLayouts> layout_version(std::string label,
                                      const xsd::Schema& schema,
                                      const MatrixOptions& options);

// Verifies every ordered (sender version, receiver version) pair of every
// shared type name across `versions` (a version family in ascending
// order). Diagnostics carry "senderlabel -> receiverlabel" in the
// location so a 5k-corpus report stays attributable.
MatrixResult verify_plan_matrix(const std::vector<VersionLayouts>& versions,
                                const MatrixOptions& options);

}  // namespace xmit::analysis
