// Schema / format linter (DESIGN.md §5e) — the metadata-quality half of
// the static verification layer. Where the plan verifier proves a compiled
// op program safe, the linter warns about metadata that is *legal* but
// costly, fragile, or probably not what the author meant.
//
// Rule catalog (codes are stable; golden tests compare codes, not prose):
//
//   XL001 warning  padding hole between fields / trailing struct padding
//   XL002 warning  field offset not aligned for its element on the target
//   XL003 error    maxOccurs="name" references a sibling that is never
//                  declared (the layout engine would silently synthesize
//                  a count field — almost certainly a typo)
//   XL004 warning  declared count field appears after the array it sizes
//   XL005 warning  count field narrower than 32 bits caps the array length
//   XL007 warning  byte-swap hotspot: cross-endian decode of one record
//                  swaps more than `swap_hotspot_bytes` bytes
//
// Evolution rules (lint_evolution, old schema -> new schema):
//
//   XL010 warning  complexType removed
//   XL011 error    field removed from a surviving type
//   XL012 error    field changed type class (int/float/string/complex)
//   XL013 warning  field narrowed within its type class
//   XL014 error    array shape changed (occurs mode, or dynamic count
//                  field renamed)
//   XL015 warning  fixed array bound changed
//   XL016 error    enumeration values removed or reordered
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "common/error.hpp"
#include "pbio/arch.hpp"
#include "pbio/format.hpp"
#include "xmit/layout.hpp"
#include "xmit/xmit.hpp"
#include "xsd/types.hpp"

namespace xmit::analysis {

struct LintOptions {
  // Target machine the layout rules judge against.
  pbio::ArchInfo arch = pbio::ArchInfo::host();

  // XL007: warn when one record's cross-endian fixed-section swap exceeds
  // this many bytes. 0 disables the rule.
  std::uint64_t swap_hotspot_bytes = 4096;
};

// Lints `schema` against its laid-out form. `layouts` must come from
// toolkit::layout_schema(schema, options.arch) (any superset is fine —
// types are matched by name).
std::vector<Diagnostic> lint_schema(const xsd::Schema& schema,
                                    const std::vector<toolkit::TypeLayout>& layouts,
                                    const LintOptions& options = {});

// Convenience: runs layout_schema itself. Fails only when the schema does
// not lay out at all (that error is the diagnostic then).
Result<std::vector<Diagnostic>> lint_schema(const xsd::Schema& schema,
                                            const LintOptions& options = {});

// Lints one registered wire format's flattened layout (XL001 / XL002 over
// hand-written IOField tables that never went through the layout engine).
std::vector<Diagnostic> lint_format(const pbio::Format& format);

// Cross-endian swap volume per record, keyed by type name: the bytes a
// foreign-endian decode byte-swaps for one record of each laid-out type
// (nested volumes included; `layouts` must be in dependency order, as
// layout_schema returns them). Feeds XL007 here and the set-wide XS006
// total in setlint.hpp.
std::map<std::string, std::uint64_t> swap_volumes(
    const std::vector<toolkit::TypeLayout>& layouts);

// Cross-version compatibility: diagnostics about decoding `new_schema`
// senders with `old_schema` receivers and vice versa (XL010-XL016).
std::vector<Diagnostic> lint_evolution(const xsd::Schema& old_schema,
                                       const xsd::Schema& new_schema);

// Lint-on-register policy for toolkit::Xmit::load.
enum class LintPolicy {
  kWarn,  // report diagnostics, never fail the load
  kDeny,  // error-severity diagnostics abort the load
};

// Installs a schema lint hook on `xmit`: every document it installs is
// linted post-layout against the toolkit's target architecture.
// Diagnostics are streamed to `out` (nullptr -> std::cerr).
void attach_lint(toolkit::Xmit& xmit, LintPolicy policy,
                 LintOptions options = {}, std::ostream* out = nullptr);

}  // namespace xmit::analysis
