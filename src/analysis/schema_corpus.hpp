// Synthetic schema-corpus generator for set-lint scale and defect tests
// (DESIGN.md §5j). Emits N version families of .xsd files shaped like real
// deployments — versioned evolution chains, a header type shared by every
// family, dynamic arrays with declared count fields — plus a controllable
// sprinkle of injected defects, each keyed to the diagnostic code the set
// analyzer must raise for it:
//
//   XL003  dangling dimension reference in the last version
//   XS003  type removed mid-chain and re-added incompatibly at the end
//   XS004  field renamed in place (removed + re-added at the same offset)
//   XS005  dynamic count field narrowed across versions
//   XS001  shared type name declared with conflicting layouts (pairs of
//          injected families conflict with each other)
//   XL011  field removed in the last version
//   XS008  field changed type class (string -> integer): the cross-version
//          decode plan does not compile
//
// Generation is deterministic in (seed, families, versions): the same
// options always produce byte-identical files, so cold/warm cache
// benchmarks and golden assertions are stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/error.hpp"

namespace xmit::analysis {

struct CorpusOptions {
  std::size_t families = 1000;
  std::size_t versions = 5;  // files per family (v1..vN)
  std::uint64_t seed = 1;

  // Every `defect_every`-th family carries one injected defect, cycling
  // through the kinds above. 0 = a fully clean corpus.
  std::size_t defect_every = 10;
};

struct CorpusManifest {
  std::size_t files = 0;
  std::size_t defects = 0;  // families carrying an injected defect
  // defect code -> number of families injected with it
  std::map<std::string, std::size_t> defect_counts;
};

// Writes the corpus under `dir` (created if missing) as
// fam_<0000>/..._v<N>.xsd plus a MANIFEST.txt listing each family's
// injected defect ("clean" when none).
Result<CorpusManifest> generate_schema_corpus(const std::string& dir,
                                              const CorpusOptions& options = {});

}  // namespace xmit::analysis
