// Diagnostic engine for the static verification layer (DESIGN.md §5e).
//
// Every finding the linter or the plan verifier produces is a Diagnostic:
// a stable code (XLnnn for schema/format lint rules, PVnnn for plan
// verifier rules — the golden tests compare codes, never prose), a
// severity, the source location in metadata terms ("Type.field", "op #3
// (path)"), the message, and an optional fix-it hint. Diagnostics are
// collected in order of discovery; only kError findings fail a deny-mode
// load or a plan admission.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace xmit::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

const char* severity_name(Severity severity);  // "note" / "warning" / "error"

struct Diagnostic {
  std::string code;      // "XL001" / "PV003" — stable, documented
  Severity severity = Severity::kWarning;
  std::string location;  // "Type.field", "Type", "op #2 (grid.data)"
  std::string message;
  std::string hint;      // fix-it suggestion; empty when none applies

  // "Type.field: warning XL001: 4-byte padding hole ... (hint: ...)"
  std::string to_string() const;
};

// Ordered collector with the summary queries every consumer needs.
class DiagnosticSink {
 public:
  void add(std::string code, Severity severity, std::string location,
           std::string message, std::string hint = "");

  const std::vector<Diagnostic>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }

  // One diagnostic per line, in discovery order.
  std::string render() const;

  // OK when no kError findings; otherwise an error Status carrying the
  // first few error lines (`code` is the ErrorCode to wrap them in).
  Status as_status(ErrorCode code = ErrorCode::kInvalidArgument) const;

 private:
  std::vector<Diagnostic> items_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

// Free-function conveniences for callers holding a plain vector.
bool has_errors(const std::vector<Diagnostic>& diagnostics);
std::string render(const std::vector<Diagnostic>& diagnostics);

// JSON escape `text` (quotes, backslashes, control chars) onto `out` —
// shared by every tool's --format=json path.
void append_json_escaped(std::string& out, std::string_view text);

// One finding as a JSON object:
//   {"code":"XL001","severity":"warning","file":"...","location":"...",
//    "message":"...","hint":"..."}
// `file` is whatever set member the caller attributes the finding to
// (may be empty for single-document lints).
std::string to_json(const Diagnostic& diagnostic, std::string_view file);

}  // namespace xmit::analysis
