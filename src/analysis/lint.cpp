#include "analysis/lint.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include "pbio/field.hpp"

namespace xmit::analysis {
namespace {

using pbio::ArchInfo;
using pbio::FieldKind;
using toolkit::TypeLayout;
using xsd::ElementDecl;
using xsd::OccursMode;

std::uint32_t capped_alignment(std::uint32_t natural, const ArchInfo& arch) {
  return std::min<std::uint32_t>(natural, arch.max_align);
}

const TypeLayout* layout_named(const std::vector<TypeLayout>& layouts,
                               std::string_view name) {
  for (const TypeLayout& layout : layouts)
    if (layout.name == name) return &layout;
  return nullptr;
}

// In-memory footprint and required alignment of one laid-out field, per
// the same rules layout_type places with. Nested sizes come from
// `layouts`; a dangling nested reference yields a zero footprint (the
// layout engine would have rejected it — lint just skips).
struct Extent {
  std::uint64_t bytes = 0;
  std::uint32_t alignment = 1;
  FieldKind kind = FieldKind::kInteger;
  std::uint32_t element_size = 0;
  bool known = false;
};

Extent field_extent(const pbio::IOField& field,
                    const std::vector<TypeLayout>& layouts,
                    const ArchInfo& arch) {
  Extent extent;
  auto parsed = pbio::parse_field_type(field.type_name);
  if (!parsed.is_ok()) return extent;
  const pbio::FieldType& type = parsed.value();
  extent.kind = type.kind;
  extent.element_size = field.size;
  extent.known = true;
  switch (type.array.mode) {
    case pbio::ArrayMode::kDynamic:
      // A pointer in the struct regardless of element type.
      extent.bytes = arch.pointer_size;
      extent.alignment = capped_alignment(arch.pointer_size, arch);
      return extent;
    case pbio::ArrayMode::kFixed:
    case pbio::ArrayMode::kNone: {
      const std::uint64_t count =
          type.array.mode == pbio::ArrayMode::kFixed ? type.array.fixed_count
                                                     : 1;
      if (type.kind == FieldKind::kNested) {
        const TypeLayout* nested = layout_named(layouts, type.nested_format);
        if (nested == nullptr) {
          extent.known = false;
          return extent;
        }
        extent.bytes = std::uint64_t(nested->struct_size) * count;
        extent.alignment = nested->alignment;
        return extent;
      }
      if (type.kind == FieldKind::kString) {
        extent.bytes = std::uint64_t(arch.pointer_size) * count;
        extent.alignment = capped_alignment(arch.pointer_size, arch);
        return extent;
      }
      extent.bytes = std::uint64_t(field.size) * count;
      extent.alignment = capped_alignment(field.size, arch);
      return extent;
    }
  }
  return extent;
}

// XL001 / XL002 over one laid-out type; XL007 from the precomputed
// per-type swap volumes (swap_volumes below).
void lint_layout(const TypeLayout& layout,
                 const std::vector<TypeLayout>& layouts,
                 const LintOptions& options,
                 const std::map<std::string, std::uint64_t>& swap_bytes,
                 DiagnosticSink& sink) {
  std::uint64_t cursor = 0;
  for (const pbio::IOField& field : layout.fields) {
    const Extent extent = field_extent(field, layouts, options.arch);
    if (!extent.known) continue;
    const std::string location = layout.name + "." + field.name;
    if (field.offset > cursor)
      sink.add("XL001", Severity::kWarning, location,
               std::to_string(field.offset - cursor) +
                   "-byte padding hole before this field",
               "reorder fields largest-alignment-first to pack the struct");
    if (extent.alignment != 0 && field.offset % extent.alignment != 0)
      sink.add("XL002", Severity::kWarning, location,
               "offset " + std::to_string(field.offset) +
                   " is not aligned to " + std::to_string(extent.alignment) +
                   " bytes for this element on the target architecture",
               "misaligned access is slow or faulting on strict-alignment "
               "machines");
    cursor = std::max(cursor, std::uint64_t(field.offset) + extent.bytes);
  }
  if (layout.struct_size > cursor)
    sink.add("XL001", Severity::kWarning, layout.name,
             std::to_string(layout.struct_size - cursor) +
                 " bytes of trailing padding",
             "a smaller trailing field is widening the whole struct");
  const auto swappable = swap_bytes.find(layout.name);
  if (options.swap_hotspot_bytes != 0 && swappable != swap_bytes.end() &&
      swappable->second >= options.swap_hotspot_bytes)
    sink.add("XL007", Severity::kWarning, layout.name,
             "cross-endian decode byte-swaps " +
                 std::to_string(swappable->second) + " bytes per record",
             "large fixed numeric arrays dominate mixed-endian decode cost");
}

// Widest value a count field of this shape can carry.
std::uint64_t count_ceiling(xsd::Primitive primitive, const ArchInfo& arch) {
  const toolkit::PrimitiveLayout prim =
      toolkit::primitive_layout(primitive, arch);
  const bool is_signed = prim.kind == FieldKind::kInteger;
  const std::uint32_t bits = prim.size * 8 - (is_signed ? 1 : 0);
  if (bits >= 64) return UINT64_MAX;
  return (std::uint64_t(1) << bits) - 1;
}

// XL003 / XL004 / XL005 over one type's declarations.
void lint_dimensions(const xsd::ComplexType& type, const LintOptions& options,
                     DiagnosticSink& sink) {
  for (std::size_t i = 0; i < type.elements.size(); ++i) {
    const ElementDecl& decl = type.elements[i];
    if (decl.occurs != OccursMode::kDynamic) continue;
    const std::string location = type.name + "." + decl.name;

    std::size_t sibling_index = type.elements.size();
    for (std::size_t j = 0; j < type.elements.size(); ++j)
      if (type.elements[j].name == decl.dimension_name) sibling_index = j;
    const bool declared = sibling_index != type.elements.size();

    if (!declared) {
      if (decl.dimension_from_max_occurs)
        sink.add("XL003", Severity::kError, location,
                 "maxOccurs=\"" + decl.dimension_name +
                     "\" references an element this type never declares",
                 "declare an integer element named '" + decl.dimension_name +
                     "', or use maxOccurs=\"*\" with dimensionName to have "
                     "the count field synthesized");
      continue;
    }

    const ElementDecl& sibling = type.elements[sibling_index];
    if (sibling_index > i)
      sink.add("XL004", Severity::kWarning, location,
               "count field '" + decl.dimension_name +
                   "' is declared after the array it sizes",
               "move the count field before the array so decoders read the "
               "count before the payload");
    if (sibling.primitive.has_value() &&
        sibling.occurs == OccursMode::kOne) {
      const std::uint64_t ceiling =
          count_ceiling(*sibling.primitive, options.arch);
      // xsd:int (2^31-1) is the baseline the dialect synthesizes; only
      // narrower count fields are worth flagging.
      if (ceiling < (std::uint64_t(1) << 31) - 1)
        sink.add("XL005", Severity::kWarning, location,
                 "count field '" + decl.dimension_name + "' ("
                     + xsd::primitive_name(*sibling.primitive) +
                     ") caps the array at " + std::to_string(ceiling) +
                     " elements",
                 "widen the count field to xsd:int or larger");
    }
  }
}

// Coarse type classes for evolution compatibility: a change within a
// class is a narrowing/widening, a change across classes re-interprets
// the bytes.
enum class TypeClass { kIntegral, kFloat, kString, kComplex };

TypeClass class_of(const ElementDecl& decl) {
  if (decl.is_complex()) return TypeClass::kComplex;
  switch (*decl.primitive) {
    case xsd::Primitive::kString: return TypeClass::kString;
    case xsd::Primitive::kFloat:
    case xsd::Primitive::kDouble: return TypeClass::kFloat;
    default: return TypeClass::kIntegral;
  }
}

std::uint32_t primitive_width(xsd::Primitive primitive) {
  return toolkit::primitive_layout(primitive, ArchInfo::host()).size;
}

void lint_type_evolution(const xsd::ComplexType& old_type,
                         const xsd::ComplexType& new_type,
                         DiagnosticSink& sink) {
  for (const ElementDecl& old_decl : old_type.elements) {
    const std::string location = old_type.name + "." + old_decl.name;
    const ElementDecl* new_decl = new_type.element_named(old_decl.name);
    if (new_decl == nullptr) {
      sink.add("XL011", Severity::kError, location,
               "field removed in the new version",
               "receivers on either version see this field zero-filled or "
               "dropped; keep it and deprecate instead");
      continue;
    }
    if (class_of(old_decl) != class_of(*new_decl) ||
        (class_of(old_decl) == TypeClass::kComplex &&
         old_decl.type_name != new_decl->type_name)) {
      sink.add("XL012", Severity::kError, location,
               "field changed type from '" + old_decl.type_name + "' to '" +
                   new_decl->type_name + "'",
               "cross-version conversion re-interprets the value; add a new "
               "field instead");
    } else if (!old_decl.is_complex() && !new_decl->is_complex() &&
               primitive_width(*new_decl->primitive) <
                   primitive_width(*old_decl.primitive)) {
      sink.add("XL013", Severity::kWarning, location,
               "field narrowed from '" + old_decl.type_name + "' to '" +
                   new_decl->type_name + "'",
               "values from old senders are truncated on conversion");
    }
    if (old_decl.occurs != new_decl->occurs) {
      sink.add("XL014", Severity::kError, location,
               "array shape changed between versions",
               "scalar/fixed/dynamic shape is part of the wire contract");
    } else if (old_decl.occurs == OccursMode::kDynamic &&
               old_decl.dimension_name != new_decl->dimension_name) {
      sink.add("XL014", Severity::kError, location,
               "dynamic array count field renamed from '" +
                   old_decl.dimension_name + "' to '" +
                   new_decl->dimension_name + "'",
               "old receivers read the count from a field new senders no "
               "longer populate");
    } else if (old_decl.occurs == OccursMode::kFixed &&
               old_decl.fixed_count != new_decl->fixed_count) {
      sink.add("XL015", Severity::kWarning, location,
               "fixed array bound changed from " +
                   std::to_string(old_decl.fixed_count) + " to " +
                   std::to_string(new_decl->fixed_count),
               "elements beyond the smaller bound are dropped or zero-filled "
               "in cross-version conversion");
    }
  }
}

void lint_enum_evolution(const xsd::EnumType& old_enum,
                         const xsd::EnumType& new_enum,
                         DiagnosticSink& sink) {
  for (std::size_t i = 0; i < old_enum.values.size(); ++i) {
    const bool removed = new_enum.index_of(old_enum.values[i]) < 0;
    const bool moved =
        !removed && new_enum.index_of(old_enum.values[i]) != int(i);
    if (removed || moved) {
      sink.add("XL016", Severity::kError,
               old_enum.name + "." + old_enum.values[i],
               removed ? "enumeration value removed in the new version"
                       : "enumeration value reordered in the new version",
               "ordinals travel on the wire; only appending values is "
               "compatible");
    }
  }
}

}  // namespace

std::map<std::string, std::uint64_t> swap_volumes(
    const std::vector<TypeLayout>& layouts) {
  std::map<std::string, std::uint64_t> volumes;
  // Layout (dependency) order: nested volumes exist before containers.
  for (const TypeLayout& layout : layouts) {
    std::uint64_t swappable = 0;
    for (const pbio::IOField& field : layout.fields) {
      auto parsed = pbio::parse_field_type(field.type_name);
      if (!parsed.is_ok() ||
          parsed.value().array.mode == pbio::ArrayMode::kDynamic)
        continue;
      const std::uint64_t count =
          parsed.value().array.mode == pbio::ArrayMode::kFixed
              ? parsed.value().array.fixed_count
              : 1;
      const FieldKind kind = parsed.value().kind;
      if (kind == FieldKind::kNested) {
        auto nested = volumes.find(parsed.value().nested_format);
        if (nested != volumes.end()) swappable += nested->second * count;
      } else if (field.size > 1 &&
                 (kind == FieldKind::kInteger || kind == FieldKind::kUnsigned ||
                  kind == FieldKind::kFloat || kind == FieldKind::kBoolean)) {
        swappable += std::uint64_t(field.size) * count;
      }
    }
    volumes[layout.name] = swappable;
  }
  return volumes;
}

std::vector<Diagnostic> lint_schema(const xsd::Schema& schema,
                                    const std::vector<TypeLayout>& layouts,
                                    const LintOptions& options) {
  DiagnosticSink sink;
  const std::map<std::string, std::uint64_t> swap_bytes =
      swap_volumes(layouts);
  // Types without a layout still get dimension lint.
  for (const TypeLayout& layout : layouts)
    if (schema.type_named(layout.name) != nullptr)
      lint_layout(layout, layouts, options, swap_bytes, sink);
  for (const xsd::ComplexType& type : schema.types())
    lint_dimensions(type, options, sink);
  return sink.items();
}

Result<std::vector<Diagnostic>> lint_schema(const xsd::Schema& schema,
                                            const LintOptions& options) {
  XMIT_ASSIGN_OR_RETURN(auto layouts,
                        toolkit::layout_schema(schema, options.arch));
  return lint_schema(schema, layouts, options);
}

std::vector<Diagnostic> lint_format(const pbio::Format& format) {
  DiagnosticSink sink;
  const ArchInfo& arch = format.arch();
  std::uint64_t cursor = 0;
  for (const pbio::FlatField& field : format.flat_fields()) {
    const std::string location = format.name() + "." + field.path;
    std::uint64_t bytes = 0;
    std::uint32_t alignment = 1;
    switch (field.array_mode) {
      case pbio::ArrayMode::kNone:
      case pbio::ArrayMode::kFixed: {
        const std::uint64_t count =
            field.array_mode == pbio::ArrayMode::kFixed ? field.fixed_count
                                                        : 1;
        if (field.kind == FieldKind::kString) {
          bytes = std::uint64_t(arch.pointer_size) * count;
          alignment = capped_alignment(arch.pointer_size, arch);
        } else {
          bytes = std::uint64_t(field.size) * count;
          alignment = capped_alignment(field.size, arch);
        }
        break;
      }
      case pbio::ArrayMode::kDynamic:
        bytes = arch.pointer_size;
        alignment = capped_alignment(arch.pointer_size, arch);
        break;
    }
    if (field.offset > cursor)
      sink.add("XL001", Severity::kWarning, location,
               std::to_string(field.offset - cursor) +
                   "-byte padding hole before this field",
               "reorder fields largest-alignment-first to pack the struct");
    if (alignment != 0 && field.offset % alignment != 0)
      sink.add("XL002", Severity::kWarning, location,
               "offset " + std::to_string(field.offset) +
                   " is not aligned to " + std::to_string(alignment) +
                   " bytes for this element",
               "misaligned access is slow or faulting on strict-alignment "
               "machines");
    cursor = std::max(cursor, std::uint64_t(field.offset) + bytes);
  }
  if (format.struct_size() > cursor)
    sink.add("XL001", Severity::kWarning, format.name(),
             std::to_string(format.struct_size() - cursor) +
                 " bytes of trailing padding",
             "a smaller trailing field is widening the whole struct");
  return sink.items();
}

std::vector<Diagnostic> lint_evolution(const xsd::Schema& old_schema,
                                       const xsd::Schema& new_schema) {
  DiagnosticSink sink;
  for (const xsd::ComplexType& old_type : old_schema.types()) {
    const xsd::ComplexType* new_type = new_schema.type_named(old_type.name);
    if (new_type == nullptr) {
      sink.add("XL010", Severity::kWarning, old_type.name,
               "complexType removed in the new version",
               "peers still publishing the old version cannot interoperate");
      continue;
    }
    lint_type_evolution(old_type, *new_type, sink);
  }
  for (const xsd::EnumType& old_enum : old_schema.enums()) {
    const xsd::EnumType* new_enum = new_schema.enum_named(old_enum.name);
    if (new_enum == nullptr) {
      sink.add("XL010", Severity::kWarning, old_enum.name,
               "enumeration removed in the new version",
               "peers still publishing the old version cannot interoperate");
      continue;
    }
    lint_enum_evolution(old_enum, *new_enum, sink);
  }
  return sink.items();
}

void attach_lint(toolkit::Xmit& xmit, LintPolicy policy, LintOptions options,
                 std::ostream* out) {
  options.arch = xmit.target_arch();
  xmit.set_schema_lint_hook(
      [policy, options, out](const xsd::Schema& schema,
                             const std::vector<TypeLayout>& layouts,
                             std::string_view source) -> Status {
        std::vector<Diagnostic> findings =
            lint_schema(schema, layouts, options);
        if (!findings.empty()) {
          std::ostream& stream = out != nullptr ? *out : std::cerr;
          for (const Diagnostic& diagnostic : findings)
            stream << source << ": " << diagnostic.to_string() << '\n';
        }
        if (policy == LintPolicy::kDeny && has_errors(findings)) {
          DiagnosticSink sink;
          for (Diagnostic& diagnostic : findings)
            sink.add(std::move(diagnostic.code), diagnostic.severity,
                     std::move(diagnostic.location),
                     std::move(diagnostic.message),
                     std::move(diagnostic.hint));
          return sink.as_status(ErrorCode::kInvalidArgument);
        }
        return Status::ok();
      });
}

}  // namespace xmit::analysis
