#include "analysis/setlint.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/plan_matrix.hpp"
#include "net/fetch.hpp"
#include "pbio/field.hpp"
#include "pbio/registry.hpp"
#include "xsd/parse.hpp"

namespace xmit::analysis {
namespace {

namespace fs = std::filesystem;
using toolkit::TypeLayout;

constexpr char kCacheMagic[] = "XMITSETLINT1";
constexpr char kToolVersion[] = "setlint-1";

std::uint64_t fnv64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// Cache lines are tab-separated; escape the separators and newlines.
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    switch (text[++i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += text[i];
    }
  }
  return out;
}

std::vector<std::string> split(std::string_view line, char separator) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == separator) {
      parts.emplace_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool parse_severity(std::string_view name, Severity* out) {
  if (name == "note") *out = Severity::kNote;
  else if (name == "warning") *out = Severity::kWarning;
  else if (name == "error") *out = Severity::kError;
  else return false;
  return true;
}

std::string arch_token(const pbio::ArchInfo& arch) {
  std::string token =
      arch.byte_order == ByteOrder::kLittle ? "le" : "be";
  token += std::to_string(arch.pointer_size);
  token += "l" + std::to_string(arch.long_size);
  token += "a" + std::to_string(arch.max_align);
  return token;
}

// Everything that changes analysis results is part of every cache key, so
// flipping an option can never serve a stale entry.
std::string options_fingerprint(const SetLintOptions& options) {
  std::string fp = kToolVersion;
  fp += "|arch=" + arch_token(options.lint.arch);
  fp += "|swap=" + std::to_string(options.lint.swap_hotspot_bytes);
  std::vector<std::string> disabled = options.disabled_codes;
  std::sort(disabled.begin(), disabled.end());
  fp += "|off=";
  for (const std::string& code : disabled) fp += code + ",";
  fp += options.matrix ? "|matrix=" + arch_token(options.matrix_sender_arch)
                       : "|matrix=off";
  return fp;
}

class CodeFilter {
 public:
  explicit CodeFilter(const std::vector<std::string>& disabled)
      : disabled_(disabled.begin(), disabled.end()) {}

  bool disabled(const std::string& code) const {
    return disabled_.count(code) > 0;
  }

  void keep_enabled(std::vector<Diagnostic>& findings) const {
    if (disabled_.empty()) return;
    std::erase_if(findings, [this](const Diagnostic& diagnostic) {
      return disabled(diagnostic.code);
    });
  }

 private:
  std::set<std::string> disabled_;
};

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  jobs = std::min<std::size_t>(std::max<std::size_t>(jobs, 1), 64);
  jobs = std::min(jobs, count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1))
        body(i);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

struct FileState {
  std::string path;  // as opened
  std::string rel;   // label in findings
  FamilyKey key;
  std::string text;
  std::uint64_t digest = 0;
  bool usable = false;       // text read + parse + layout all succeeded
  bool have_text = false;
  bool cache_hit = false;
  bool parsed = false;
  xsd::Schema schema;
  std::vector<TypeLayout> layouts;  // at options.lint.arch
  std::vector<Diagnostic> diags;    // per-file findings (XS000 + XL)
  std::vector<TypeSig> sigs;
};

struct FamilyState {
  std::string name;
  std::vector<std::size_t> members;  // indices, ascending (version, rel)
  bool cache_hit = false;
  std::vector<FileFinding> findings;
  std::size_t pairs_verified = 0;
  std::size_t pairs_rejected = 0;
};

// Registers `layouts` into a throwaway registry to obtain the canonical
// wire identity (FormatId + description) of every type. file/family/
// version are stamped by the caller — they are run-local, never cached.
std::vector<TypeSig> signatures_for(const xsd::Schema& schema,
                                    const std::vector<TypeLayout>& layouts,
                                    const pbio::ArchInfo& arch) {
  std::vector<TypeSig> sigs;
  const std::map<std::string, std::uint64_t> volumes = swap_volumes(layouts);
  pbio::FormatRegistry registry;
  for (const TypeLayout& layout : layouts) {
    auto format = registry.register_format(layout.name, layout.fields,
                                           layout.struct_size, arch);
    if (!format.is_ok()) continue;  // layout engine output; cannot happen
    if (schema.type_named(layout.name) == nullptr) continue;
    TypeSig sig;
    sig.type = layout.name;
    sig.id = format.value()->id();
    sig.description = format.value()->canonical_description();
    sig.struct_size = layout.struct_size;
    const auto volume = volumes.find(layout.name);
    sig.swap_bytes = volume != volumes.end() ? volume->second : 0;
    sigs.push_back(std::move(sig));
  }
  return sigs;
}

// ---------------------------------------------------------------------
// On-disk cache: one entry per file and one per family, keyed by content
// digests + the options fingerprint. The key is stored verbatim in the
// entry header, so a filename collision or torn write reads as a miss.

class Cache {
 public:
  Cache(std::string dir, std::string fingerprint)
      : dir_(std::move(dir)), fingerprint_(std::move(fingerprint)) {
    if (enabled()) {
      std::error_code ec;
      fs::create_directories(dir_, ec);
    }
  }

  bool enabled() const { return !dir_.empty(); }

  std::string file_key(const FileState& file) const {
    return fingerprint_ + "|file|" + hex64(file.digest);
  }

  std::string family_key(const FamilyState& family,
                         const std::vector<FileState>& files) const {
    std::string key = fingerprint_ + "|family|" + family.name;
    for (std::size_t index : family.members)
      key += "|" + files[index].rel + ":" + hex64(files[index].digest);
    return key;
  }

  bool load(const std::string& key, std::vector<std::string>* lines) const {
    std::ifstream in(path_for(key));
    if (!in.good()) return false;
    std::string line;
    if (!std::getline(in, line) || line != std::string(kCacheMagic) + " " + key)
      return false;
    lines->clear();
    while (std::getline(in, line)) lines->push_back(line);
    if (lines->empty() || lines->back() != "END") return false;
    lines->pop_back();
    return true;
  }

  void store(const std::string& key,
             const std::vector<std::string>& lines) const {
    const std::string path = path_for(key);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out.good()) return;
      out << kCacheMagic << " " << key << "\n";
      for (const std::string& line : lines) out << line << "\n";
      out << "END\n";
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) fs::remove(tmp, ec);
  }

 private:
  std::string path_for(const std::string& key) const {
    return dir_ + "/" + hex64(fnv64(key)) + ".lint";
  }

  std::string dir_;
  std::string fingerprint_;
};

std::string diag_line(const Diagnostic& diagnostic) {
  return std::string("D\t") + escape(diagnostic.code) + "\t" +
         severity_name(diagnostic.severity) + "\t" +
         escape(diagnostic.location) + "\t" + escape(diagnostic.message) +
         "\t" + escape(diagnostic.hint);
}

bool parse_diag_line(const std::vector<std::string>& parts, std::size_t base,
                     Diagnostic* out) {
  if (parts.size() < base + 5) return false;
  out->code = unescape(parts[base]);
  if (!parse_severity(parts[base + 1], &out->severity)) return false;
  out->location = unescape(parts[base + 2]);
  out->message = unescape(parts[base + 3]);
  out->hint = unescape(parts[base + 4]);
  return true;
}

std::vector<std::string> encode_file_entry(const FileState& file) {
  std::vector<std::string> lines;
  for (const Diagnostic& diagnostic : file.diags)
    lines.push_back(diag_line(diagnostic));
  for (const TypeSig& sig : file.sigs)
    lines.push_back("T\t" + escape(sig.type) + "\t" + hex64(sig.id) + "\t" +
                    std::to_string(sig.struct_size) + "\t" +
                    std::to_string(sig.swap_bytes) + "\t" +
                    escape(sig.description));
  return lines;
}

bool decode_file_entry(const std::vector<std::string>& lines,
                       FileState* file) {
  file->diags.clear();
  file->sigs.clear();
  for (const std::string& line : lines) {
    const std::vector<std::string> parts = split(line, '\t');
    if (parts.empty()) return false;
    if (parts[0] == "D") {
      Diagnostic diagnostic;
      if (!parse_diag_line(parts, 1, &diagnostic)) return false;
      file->diags.push_back(std::move(diagnostic));
    } else if (parts[0] == "T") {
      if (parts.size() < 6) return false;
      TypeSig sig;
      sig.type = unescape(parts[1]);
      sig.id = std::strtoull(parts[2].c_str(), nullptr, 16);
      sig.struct_size = static_cast<std::uint32_t>(
          std::strtoul(parts[3].c_str(), nullptr, 10));
      sig.swap_bytes = std::strtoull(parts[4].c_str(), nullptr, 10);
      sig.description = unescape(parts[5]);
      file->sigs.push_back(std::move(sig));
    } else {
      return false;
    }
  }
  return true;
}

std::vector<std::string> encode_family_entry(const FamilyState& family) {
  std::vector<std::string> lines;
  for (const FileFinding& finding : family.findings)
    lines.push_back("F\t" + escape(finding.file) + "\t" +
                    diag_line(finding.diagnostic).substr(2));
  lines.push_back("P\t" + std::to_string(family.pairs_verified) + "\t" +
                  std::to_string(family.pairs_rejected));
  return lines;
}

bool decode_family_entry(const std::vector<std::string>& lines,
                         FamilyState* family) {
  family->findings.clear();
  for (const std::string& line : lines) {
    const std::vector<std::string> parts = split(line, '\t');
    if (parts.empty()) return false;
    if (parts[0] == "F") {
      if (parts.size() < 7) return false;
      FileFinding finding;
      finding.file = unescape(parts[1]);
      if (!parse_diag_line(parts, 2, &finding.diagnostic)) return false;
      family->findings.push_back(std::move(finding));
    } else if (parts[0] == "P") {
      if (parts.size() < 3) return false;
      family->pairs_verified = std::strtoull(parts[1].c_str(), nullptr, 10);
      family->pairs_rejected = std::strtoull(parts[2].c_str(), nullptr, 10);
    } else {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Per-file analysis: parse, lay out, lint, sign.

void analyze_file(FileState& file, const SetLintOptions& options,
                  const CodeFilter& filter) {
  auto schema = xsd::parse_schema_text(file.text, DecodeLimits::defaults());
  if (!schema.is_ok()) {
    if (!filter.disabled("XS000"))
      file.diags.push_back({"XS000", Severity::kError, file.rel,
                            "schema does not parse: " +
                                schema.status().to_string(),
                            "fix or remove the file; the rest of the set "
                            "was still analyzed"});
    return;
  }
  file.schema = std::move(schema).value();
  auto layouts = toolkit::layout_schema(file.schema, options.lint.arch);
  if (!layouts.is_ok()) {
    if (!filter.disabled("XS000"))
      file.diags.push_back({"XS000", Severity::kError, file.rel,
                            "schema does not lay out: " +
                                layouts.status().to_string(),
                            "fix or remove the file; the rest of the set "
                            "was still analyzed"});
    return;
  }
  file.layouts = std::move(layouts).value();
  file.parsed = true;
  file.usable = true;

  std::vector<Diagnostic> findings =
      lint_schema(file.schema, file.layouts, options.lint);
  filter.keep_enabled(findings);
  for (Diagnostic& diagnostic : findings)
    file.diags.push_back(std::move(diagnostic));
  file.sigs = signatures_for(file.schema, file.layouts, options.lint.arch);
}

// Re-parse a cache-hit file because its family has dirty pairs. Diags and
// sigs stay as the cache delivered them.
void reparse_file(FileState& file, const SetLintOptions& options) {
  auto schema = xsd::parse_schema_text(file.text, DecodeLimits::defaults());
  if (!schema.is_ok()) return;
  file.schema = std::move(schema).value();
  auto layouts = toolkit::layout_schema(file.schema, options.lint.arch);
  if (!layouts.is_ok()) return;
  file.layouts = std::move(layouts).value();
  file.parsed = true;
}

const pbio::IOField* field_named(const std::vector<pbio::IOField>& fields,
                                 std::string_view name) {
  for (const pbio::IOField& field : fields)
    if (field.name == name) return &field;
  return nullptr;
}

const TypeLayout* layout_named(const std::vector<TypeLayout>& layouts,
                               std::string_view name) {
  for (const TypeLayout& layout : layouts)
    if (layout.name == name) return &layout;
  return nullptr;
}

// XS004: one version step removed field `r` and added field `a` at the
// identical offset and size — bytes silently change meaning.
void check_renamed_in_place(const FileState& old_file,
                            const FileState& new_file, DiagnosticSink& sink) {
  for (const xsd::ComplexType& old_type : old_file.schema.types()) {
    const xsd::ComplexType* new_type =
        new_file.schema.type_named(old_type.name);
    if (new_type == nullptr) continue;
    const TypeLayout* old_layout =
        layout_named(old_file.layouts, old_type.name);
    const TypeLayout* new_layout =
        layout_named(new_file.layouts, old_type.name);
    if (old_layout == nullptr || new_layout == nullptr) continue;
    for (const xsd::ElementDecl& removed : old_type.elements) {
      if (new_type->element_named(removed.name) != nullptr) continue;
      const pbio::IOField* old_field =
          field_named(old_layout->fields, removed.name);
      if (old_field == nullptr) continue;
      for (const xsd::ElementDecl& added : new_type->elements) {
        if (old_type.element_named(added.name) != nullptr) continue;
        const pbio::IOField* new_field =
            field_named(new_layout->fields, added.name);
        if (new_field == nullptr) continue;
        if (new_field->offset == old_field->offset &&
            new_field->size == old_field->size) {
          sink.add("XS004", Severity::kWarning,
                   old_type.name + "." + removed.name,
                   "field removed and '" + added.name +
                       "' added at the identical offset " +
                       std::to_string(old_field->offset) + " and size " +
                       std::to_string(old_field->size) +
                       " — looks renamed in place",
                   "receivers match fields by name: the bytes silently "
                   "change meaning; keep the old name or add the new field "
                   "at a new offset");
        }
      }
    }
  }
}

// XS005: a dynamic array keeps its dimension name across versions but the
// count field it resolves to changed width or integer kind.
void check_count_resolution(const FileState& old_file,
                            const FileState& new_file, DiagnosticSink& sink) {
  for (const xsd::ComplexType& old_type : old_file.schema.types()) {
    const xsd::ComplexType* new_type =
        new_file.schema.type_named(old_type.name);
    if (new_type == nullptr) continue;
    const TypeLayout* old_layout =
        layout_named(old_file.layouts, old_type.name);
    const TypeLayout* new_layout =
        layout_named(new_file.layouts, old_type.name);
    if (old_layout == nullptr || new_layout == nullptr) continue;
    for (const xsd::ElementDecl& old_decl : old_type.elements) {
      if (old_decl.occurs != xsd::OccursMode::kDynamic) continue;
      const xsd::ElementDecl* new_decl =
          new_type->element_named(old_decl.name);
      if (new_decl == nullptr ||
          new_decl->occurs != xsd::OccursMode::kDynamic ||
          new_decl->dimension_name != old_decl.dimension_name)
        continue;  // rename is XL014's business
      const pbio::IOField* old_count =
          field_named(old_layout->fields, old_decl.dimension_name);
      const pbio::IOField* new_count =
          field_named(new_layout->fields, old_decl.dimension_name);
      if (old_count == nullptr || new_count == nullptr) continue;
      auto old_type_parsed = pbio::parse_field_type(old_count->type_name);
      auto new_type_parsed = pbio::parse_field_type(new_count->type_name);
      const bool kind_changed =
          old_type_parsed.is_ok() && new_type_parsed.is_ok() &&
          old_type_parsed.value().kind != new_type_parsed.value().kind;
      if (old_count->size != new_count->size || kind_changed) {
        sink.add("XS005", Severity::kError,
                 old_type.name + "." + old_decl.name,
                 "count field '" + old_decl.dimension_name +
                     "' resolves differently across versions (" +
                     old_count->type_name + ":" +
                     std::to_string(old_count->size) + " -> " +
                     new_count->type_name + ":" +
                     std::to_string(new_count->size) + ")",
                 "the count's shape is part of the wire contract; widen or "
                 "change it only by introducing a new dimension field");
      }
    }
  }
}

// Family analysis: adjacent evolution lint + XS004/XS005, chain
// transitivity (XS003), and the pairwise plan matrix.
void analyze_family(FamilyState& family, std::vector<FileState>& files,
                    const SetLintOptions& options, const CodeFilter& filter) {
  std::vector<std::size_t> chain;
  for (std::size_t index : family.members)
    if (files[index].parsed) chain.push_back(index);

  // Adjacent steps: full evolution lint, reported; remember error'ness
  // for the chain check below.
  std::vector<bool> adjacent_clean(chain.size() > 0 ? chain.size() - 1 : 0,
                                   true);
  for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
    const FileState& old_file = files[chain[k]];
    const FileState& new_file = files[chain[k + 1]];
    const std::string pair = old_file.rel + " -> " + new_file.rel;
    std::vector<Diagnostic> findings =
        lint_evolution(old_file.schema, new_file.schema);
    adjacent_clean[k] = !has_errors(findings);
    DiagnosticSink extra;
    if (!filter.disabled("XS004"))
      check_renamed_in_place(old_file, new_file, extra);
    if (!filter.disabled("XS005"))
      check_count_resolution(old_file, new_file, extra);
    for (const Diagnostic& diagnostic : extra.items())
      findings.push_back(diagnostic);
    if (has_errors(extra.items())) adjacent_clean[k] = false;
    filter.keep_enabled(findings);
    for (Diagnostic& diagnostic : findings)
      family.findings.push_back({pair, std::move(diagnostic)});
  }

  // XS003: every adjacent step between v_i and v_j is clean, yet the
  // direct hop breaks — the classic remove-then-readd-incompatibly.
  if (!filter.disabled("XS003")) {
    for (std::size_t i = 0; i + 2 < chain.size(); ++i) {
      for (std::size_t j = i + 2; j < chain.size(); ++j) {
        bool steps_clean = true;
        for (std::size_t k = i; k < j; ++k)
          if (!adjacent_clean[k]) steps_clean = false;
        if (!steps_clean) continue;
        std::vector<Diagnostic> hop =
            lint_evolution(files[chain[i]].schema, files[chain[j]].schema);
        if (!has_errors(hop)) continue;
        std::string first_code = "?";
        std::string first_location;
        for (const Diagnostic& diagnostic : hop) {
          if (diagnostic.severity != Severity::kError) continue;
          first_code = diagnostic.code;
          first_location = diagnostic.location;
          break;
        }
        family.findings.push_back(
            {files[chain[i]].rel + " -> " + files[chain[j]].rel,
             {"XS003", Severity::kError, first_location,
              "evolution chain break: every adjacent step is compatible "
              "but this hop fails (" +
                  first_code + ")",
              "peers more than one version apart still interoperate "
              "directly; an intermediate version hid an incompatible "
              "change (e.g. a type removed and re-added differently)"}});
      }
    }
  }

  if (options.matrix) {
    MatrixOptions matrix_options;
    matrix_options.sender_arch = options.matrix_sender_arch;
    std::vector<VersionLayouts> versions;
    for (std::size_t index : chain) {
      auto version = layout_version(files[index].rel, files[index].schema,
                                    matrix_options);
      if (!version.is_ok()) {
        if (!filter.disabled("XS008"))
          family.findings.push_back(
              {files[index].rel,
               {"XS008", Severity::kError, files[index].rel,
                "matrix layout failed: " + version.status().to_string(),
                ""}});
        continue;
      }
      versions.push_back(std::move(version).value());
    }
    MatrixResult matrix = verify_plan_matrix(versions, matrix_options);
    family.pairs_verified = matrix.pairs_verified;
    family.pairs_rejected = matrix.pairs_rejected;
    filter.keep_enabled(matrix.findings);
    for (Diagnostic& diagnostic : matrix.findings)
      family.findings.push_back({family.name, std::move(diagnostic)});
  }
}

Result<SetLintReport> run_set_lint(std::vector<FileState> files,
                                   const SetLintOptions& options) {
  const CodeFilter filter(options.disabled_codes);
  Cache cache(options.cache_dir, options_fingerprint(options));
  SetLintReport report;
  report.stats.files = files.size();

  std::sort(files.begin(), files.end(),
            [](const FileState& a, const FileState& b) { return a.rel < b.rel; });

  // Stage 1 — per-file: read, digest, probe cache, analyze on miss.
  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> misses{0};
  parallel_for(files.size(), options.jobs, [&](std::size_t i) {
    FileState& file = files[i];
    auto text = net::read_file(file.path);
    if (!text.is_ok()) {
      if (!filter.disabled("XS000"))
        file.diags.push_back({"XS000", Severity::kError, file.rel,
                              "unreadable: " + text.status().to_string(),
                              ""});
      return;
    }
    file.text = std::move(text).value();
    file.have_text = true;
    file.digest = fnv64(file.text);
    if (cache.enabled()) {
      std::vector<std::string> lines;
      if (cache.load(cache.file_key(file), &lines) &&
          decode_file_entry(lines, &file)) {
        file.cache_hit = true;
        file.usable = true;  // entries are only written for loadable files
        hits.fetch_add(1);
        return;
      }
    }
    analyze_file(file, options, filter);
    if (cache.enabled() && file.usable) {
      misses.fetch_add(1);
      cache.store(cache.file_key(file), encode_file_entry(file));
    }
  });

  // Group families; members ascend by (version, rel).
  std::map<std::string, FamilyState> families;
  for (std::size_t i = 0; i < files.size(); ++i) {
    FamilyState& family = families[files[i].key.family];
    family.name = files[i].key.family;
    family.members.push_back(i);
  }
  for (auto& [name, family] : families) {
    std::sort(family.members.begin(), family.members.end(),
              [&](std::size_t a, std::size_t b) {
                if (files[a].key.version != files[b].key.version)
                  return files[a].key.version < files[b].key.version;
                return files[a].rel < files[b].rel;
              });
  }
  report.stats.families = families.size();

  // Stage 2 — family cache probe; a miss requires every member parsed.
  std::vector<FamilyState*> family_list;
  family_list.reserve(families.size());
  for (auto& [name, family] : families) family_list.push_back(&family);

  std::vector<std::size_t> need_parse;
  for (FamilyState* family : family_list) {
    bool all_usable = true;
    for (std::size_t index : family->members)
      if (!files[index].usable) all_usable = false;
    if (cache.enabled() && all_usable) {
      std::vector<std::string> lines;
      if (cache.load(cache.family_key(*family, files), &lines) &&
          decode_family_entry(lines, family)) {
        family->cache_hit = true;
        hits.fetch_add(1);
        continue;
      }
      misses.fetch_add(1);
    }
    for (std::size_t index : family->members)
      if (files[index].usable && !files[index].parsed)
        need_parse.push_back(index);
  }
  parallel_for(need_parse.size(), options.jobs, [&](std::size_t i) {
    reparse_file(files[need_parse[i]], options);
  });

  // Stage 3 — family analysis for cache misses.
  parallel_for(family_list.size(), options.jobs, [&](std::size_t i) {
    FamilyState* family = family_list[i];
    if (family->cache_hit) return;
    analyze_family(*family, files, options, filter);
    if (cache.enabled()) {
      bool all_usable = true;
      for (std::size_t index : family->members)
        if (!files[index].usable) all_usable = false;
      if (all_usable)
        cache.store(cache.family_key(*family, files),
                    encode_family_entry(*family));
    }
  });
  report.stats.cache_hits = hits.load();
  report.stats.cache_misses = misses.load();

  // Stage 4 — assemble deterministically: files, families, set-wide.
  for (const FileState& file : files)
    for (const Diagnostic& diagnostic : file.diags)
      report.findings.push_back({file.rel, diagnostic});
  for (const FamilyState* family : family_list) {
    report.stats.pairs_verified += family->pairs_verified;
    report.stats.pairs_rejected += family->pairs_rejected;
    for (const FileFinding& finding : family->findings)
      report.findings.push_back(finding);
  }

  std::vector<TypeSig> sigs;
  for (FileState& file : files) {
    for (TypeSig& sig : file.sigs) {
      sig.file = file.rel;
      sig.family = file.key.family;
      sig.version = file.key.version;
      sigs.push_back(sig);
    }
  }
  report.stats.types = sigs.size();
  for (const Diagnostic& diagnostic :
       cross_check_signatures(sigs, options.disabled_codes))
    report.findings.push_back({"<set>", diagnostic});

  for (const TypeSig& sig : sigs) {
    report.stats.set_swap_bytes += sig.swap_bytes;
    if (sig.struct_size > report.stats.widest_struct ||
        (sig.struct_size == report.stats.widest_struct &&
         report.stats.widest_type.empty())) {
      report.stats.widest_struct = sig.struct_size;
      report.stats.widest_type = sig.type + " (" + sig.file + ")";
    }
  }
  if (!sigs.empty() && !filter.disabled("XS006"))
    report.findings.push_back(
        {"<set>",
         {"XS006", Severity::kNote, "<set>",
          "cross-endian decode swaps " +
              std::to_string(report.stats.set_swap_bytes) +
              " bytes across " + std::to_string(sigs.size()) +
              " record types",
          ""}});
  if (!sigs.empty() && !filter.disabled("XS007"))
    report.findings.push_back(
        {"<set>",
         {"XS007", Severity::kNote, "<set>",
          "widest record: " + report.stats.widest_type + ", " +
              std::to_string(report.stats.widest_struct) + " bytes",
          ""}});
  return report;
}

FileState make_file_state(std::string path, std::string rel) {
  FileState file;
  file.key = family_of(fs::path(rel).stem().string());
  // Distinguish same-stem files in different sub-directories.
  const std::string parent = fs::path(rel).parent_path().string();
  if (!parent.empty()) file.key.family = parent + "/" + file.key.family;
  file.path = std::move(path);
  file.rel = std::move(rel);
  return file;
}

}  // namespace

std::size_t SetLintReport::error_count() const {
  std::size_t count = 0;
  for (const FileFinding& finding : findings)
    if (finding.diagnostic.severity == Severity::kError) ++count;
  return count;
}

std::size_t SetLintReport::warning_count() const {
  std::size_t count = 0;
  for (const FileFinding& finding : findings)
    if (finding.diagnostic.severity == Severity::kWarning) ++count;
  return count;
}

FamilyKey family_of(std::string_view stem) {
  FamilyKey key;
  key.family = std::string(stem);
  const std::size_t at = stem.rfind("_v");
  if (at == std::string_view::npos || at + 2 >= stem.size()) return key;
  std::uint64_t version = 0;
  for (std::size_t i = at + 2; i < stem.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(stem[i]))) return key;
    version = version * 10 + static_cast<std::uint64_t>(stem[i] - '0');
    if (version > UINT32_MAX) return key;
  }
  key.family = std::string(stem.substr(0, at));
  key.version = static_cast<std::uint32_t>(version);
  key.versioned = true;
  return key;
}

Result<SetLintReport> lint_schema_set(const std::string& dir,
                                      const SetLintOptions& options) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    return Status(ErrorCode::kNotFound, "not a directory: " + dir);
  std::vector<FileState> files;
  for (fs::recursive_directory_iterator it(dir, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file() || it->path().extension() != ".xsd") continue;
    files.push_back(make_file_state(
        it->path().string(),
        it->path().lexically_relative(dir).generic_string()));
  }
  if (ec)
    return Status(ErrorCode::kIoError,
                  "scanning " + dir + ": " + ec.message());
  return run_set_lint(std::move(files), options);
}

Result<SetLintReport> lint_schema_files(const std::vector<std::string>& paths,
                                        const SetLintOptions& options) {
  std::vector<FileState> files;
  files.reserve(paths.size());
  for (const std::string& path : paths)
    files.push_back(make_file_state(path, path));
  return run_set_lint(std::move(files), options);
}

std::vector<Diagnostic> cross_check_signatures(
    const std::vector<TypeSig>& sigs,
    const std::vector<std::string>& disabled_codes) {
  const CodeFilter filter(disabled_codes);
  DiagnosticSink sink;

  // XS001 — same type name, conflicting layouts, in families that share
  // no identical version of the type (sharing one means the declarations
  // are a single evolution lineage spread over files, not a collision).
  if (!filter.disabled("XS001")) {
    std::map<std::string, std::map<std::string, std::set<pbio::FormatId>>>
        by_type;
    std::map<std::string, std::map<std::string, std::string>> first_file;
    for (const TypeSig& sig : sigs) {
      by_type[sig.type][sig.family].insert(sig.id);
      first_file[sig.type].emplace(sig.family, sig.file);
    }
    for (const auto& [type, families] : by_type) {
      if (families.size() < 2) continue;
      std::set<std::string> conflicting;
      for (auto a = families.begin(); a != families.end(); ++a) {
        for (auto b = std::next(a); b != families.end(); ++b) {
          bool linked = false;
          for (pbio::FormatId id : a->second)
            if (b->second.count(id) > 0) linked = true;
          if (!linked && !(a->second == b->second)) {
            conflicting.insert(a->first);
            conflicting.insert(b->first);
          }
        }
      }
      if (conflicting.empty()) continue;
      std::string message =
          "declared with conflicting layouts in unrelated schema families:";
      std::size_t listed = 0;
      for (const std::string& family : conflicting) {
        if (listed == 4) {
          message += " ... +" + std::to_string(conflicting.size() - listed);
          break;
        }
        message += std::string(listed == 0 ? " " : ", ") + family + " (" +
                   first_file[type][family] + ")";
        ++listed;
      }
      sink.add("XS001", Severity::kError, type, message,
               "whichever file a process loads last silently wins the "
               "registry's current-format slot for this name; rename one "
               "type or align the layouts");
    }
  }

  // XS002 — two different canonical layouts hash to the same FormatId.
  if (!filter.disabled("XS002")) {
    std::map<pbio::FormatId, std::map<std::string, const TypeSig*>> by_id;
    for (const TypeSig& sig : sigs)
      by_id[sig.id].emplace(sig.description, &sig);
    for (const auto& [id, descriptions] : by_id) {
      if (descriptions.size() < 2) continue;
      const TypeSig* a = descriptions.begin()->second;
      const TypeSig* b = std::next(descriptions.begin())->second;
      sink.add("XS002", Severity::kError,
               a->type + " / " + b->type,
               "wire format-ID collision: 0x" + hex64(id) + " identifies " +
                   a->type + " (" + a->file + ") and " + b->type + " (" +
                   b->file + ") with different layouts",
               "a by-id metadata lookup is ambiguous; rename a type or "
               "field to re-roll the hash");
    }
  }
  return sink.items();
}

void attach_set_lint(toolkit::Xmit& xmit, LintPolicy policy,
                     SetLintOptions options, std::ostream* out) {
  options.lint.arch = xmit.target_arch();

  struct AcceptedDoc {
    xsd::Schema schema;
    std::vector<TypeLayout> layouts;
    std::vector<TypeSig> sigs;
  };
  struct State {
    std::mutex mutex;
    std::map<std::string, AcceptedDoc> docs;
    std::set<std::string> reported;  // cross-check findings already shown
  };
  auto state = std::make_shared<State>();

  xmit.set_schema_lint_hook(
      [state, policy, options, out](
          const xsd::Schema& schema, const std::vector<TypeLayout>& layouts,
          std::string_view source) -> Status {
        const CodeFilter filter(options.disabled_codes);
        const std::string name(source);
        const FamilyKey key = family_of(fs::path(name).stem().string());

        std::vector<Diagnostic> findings =
            lint_schema(schema, layouts, options.lint);
        filter.keep_enabled(findings);

        AcceptedDoc doc;
        doc.schema = schema;
        doc.layouts = layouts;
        doc.sigs = signatures_for(schema, layouts, options.lint.arch);
        for (TypeSig& sig : doc.sigs) {
          sig.file = name;
          sig.family = key.family;
          sig.version = key.version;
        }

        std::lock_guard<std::mutex> lock(state->mutex);

        // Re-install of a known source: evolution-check old vs new.
        auto previous = state->docs.find(name);
        if (previous != state->docs.end()) {
          std::vector<Diagnostic> evolution =
              lint_evolution(previous->second.schema, schema);
          DiagnosticSink extra;
          // check_* helpers want FileStates; inline equivalents here.
          FileState old_state;
          old_state.rel = name + " (previous)";
          old_state.schema = previous->second.schema;
          old_state.layouts = previous->second.layouts;
          FileState new_state;
          new_state.rel = name;
          new_state.schema = schema;
          new_state.layouts = layouts;
          if (!filter.disabled("XS004"))
            check_renamed_in_place(old_state, new_state, extra);
          if (!filter.disabled("XS005"))
            check_count_resolution(old_state, new_state, extra);
          for (const Diagnostic& diagnostic : extra.items())
            evolution.push_back(diagnostic);
          filter.keep_enabled(evolution);
          for (Diagnostic& diagnostic : evolution)
            findings.push_back(std::move(diagnostic));
        }

        // Cross-document checks over the accepted set plus this document.
        std::vector<TypeSig> sigs;
        for (const auto& [doc_name, accepted] : state->docs) {
          if (doc_name == name) continue;
          for (const TypeSig& sig : accepted.sigs) sigs.push_back(sig);
        }
        for (const TypeSig& sig : doc.sigs) sigs.push_back(sig);
        std::vector<std::string> fresh;
        for (Diagnostic& diagnostic :
             cross_check_signatures(sigs, options.disabled_codes)) {
          std::string fingerprint = diagnostic.to_string();
          if (state->reported.count(fingerprint) > 0) continue;
          fresh.push_back(fingerprint);
          findings.push_back(std::move(diagnostic));
        }

        if (!findings.empty()) {
          std::ostream& stream = out != nullptr ? *out : std::cerr;
          for (const Diagnostic& diagnostic : findings)
            stream << source << ": " << diagnostic.to_string() << '\n';
        }

        if (policy == LintPolicy::kDeny && has_errors(findings)) {
          DiagnosticSink sink;
          for (Diagnostic& diagnostic : findings)
            sink.add(std::move(diagnostic.code), diagnostic.severity,
                     std::move(diagnostic.location),
                     std::move(diagnostic.message),
                     std::move(diagnostic.hint));
          return sink.as_status(ErrorCode::kInvalidArgument);
        }

        state->docs[name] = std::move(doc);
        for (std::string& fingerprint : fresh)
          state->reported.insert(std::move(fingerprint));
        return Status::ok();
      });
}

}  // namespace xmit::analysis
