#include "analysis/schema_corpus.hpp"

#include <cstdio>
#include <filesystem>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "net/fetch.hpp"

namespace xmit::analysis {
namespace {

namespace fs = std::filesystem;

// Injected defect kinds, cycled over defect families in this order.
constexpr const char* kDefectCycle[] = {"XL003", "XS003", "XS004", "XS005",
                                        "XS001", "XL011", "XS008"};

// Extras stay 8-byte so clean families lay out without padding noise.
constexpr const char* kExtraTypes[] = {"unsignedLong", "long", "double"};

std::string pad4(std::size_t value) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04zu", value);
  return buffer;
}

void element(std::string& out, std::string_view name, std::string_view type,
             std::string_view occurs = "") {
  out += "  <xsd:element name=\"";
  out += name;
  out += "\" type=\"xsd:";
  out += type;
  out += "\"";
  if (!occurs.empty()) {
    out += " maxOccurs=\"";
    out += occurs;
    out += "\"";
  }
  out += " />\n";
}

// One version file of one family. `defect` is the family's injected
// defect code (empty = clean); most kinds only distort the last version.
std::string render_version(std::size_t family, std::size_t version,
                           std::size_t versions, std::string_view defect,
                           std::size_t defect_occurrence, Rng& family_rng) {
  const bool last = version == versions;
  std::string out = "<?xml version=\"1.0\"?>\n";
  out += "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\n";

  // Header shared verbatim by every family: exercises the XS001
  // linked-lineage suppression at corpus scale.
  out += "<xsd:complexType name=\"SharedHeader\">\n";
  element(out, "seq", "unsignedLong");
  element(out, "stamp", "unsignedLong");
  out += "</xsd:complexType>\n";

  out += "<xsd:complexType name=\"Rec" + pad4(family) + "\">\n";
  element(out, "id", "unsignedLong");
  if (defect == "XS004" && last) {
    element(out, "style", "int");  // `kind` renamed in place
  } else if (!(defect == "XL011" && last)) {
    element(out, "kind", "int");
  }
  element(out, "n", defect == "XS005" && last ? "short" : "int");
  for (std::size_t u = 2; u <= version; ++u) {
    // The extra's type depends only on the family stream + index, so the
    // same field keeps its type in every later version.
    const std::size_t pick =
        (family_rng.next_u64() + u) % (sizeof(kExtraTypes) / sizeof(char*));
    element(out, "extra" + std::to_string(u), kExtraTypes[pick]);
  }
  element(out, "tag", defect == "XS008" && last ? "unsignedLong" : "string");
  element(out, "samples", "double", "n");
  if (defect == "XL003" && last)
    element(out, "ghost", "double", "missing");
  out += "</xsd:complexType>\n";

  // XS003: a side type exists in v1, vanishes mid-chain (a warning per
  // step), and returns at the end with a field dropped — every adjacent
  // step passes, the v1 -> vN hop does not.
  if (defect == "XS003" && (version == 1 || last)) {
    out += "<xsd:complexType name=\"Side" + pad4(family) + "\">\n";
    element(out, "a", "unsignedLong");
    if (version == 1) element(out, "b", "unsignedLong");
    out += "</xsd:complexType>\n";
  }

  // XS001: the same type name with alternating layouts across otherwise
  // unrelated defect families.
  if (defect == "XS001") {
    out += "<xsd:complexType name=\"CommonBlob\">\n";
    if (defect_occurrence % 2 == 0) {
      element(out, "x", "unsignedLong");
      element(out, "y", "unsignedLong");
    } else {
      element(out, "x", "double");
      element(out, "y", "double");
      element(out, "z", "double");
    }
    out += "</xsd:complexType>\n";
  }

  out += "</xsd:schema>\n";
  return out;
}

}  // namespace

Result<CorpusManifest> generate_schema_corpus(const std::string& dir,
                                              const CorpusOptions& options) {
  if (options.families == 0 || options.versions == 0)
    return Status(ErrorCode::kInvalidArgument,
                  "corpus needs at least one family and one version");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return Status(ErrorCode::kIoError, "mkdir " + dir + ": " + ec.message());

  CorpusManifest manifest;
  std::string manifest_text;
  std::map<std::string, std::size_t> occurrences;  // defect code -> seen

  for (std::size_t f = 0; f < options.families; ++f) {
    std::string defect;
    std::size_t occurrence = 0;
    if (options.defect_every != 0 &&
        (f + 1) % options.defect_every == 0) {
      std::size_t kind = (f / options.defect_every) %
                         (sizeof(kDefectCycle) / sizeof(char*));
      defect = kDefectCycle[kind];
      // XS003 needs a gap version for the type to vanish into.
      if (defect == "XS003" && options.versions < 3) defect = "XL011";
      occurrence = occurrences[defect]++;
      ++manifest.defects;
      ++manifest.defect_counts[defect];
    }

    const std::string family_dir = dir + "/fam_" + pad4(f);
    fs::create_directories(family_dir, ec);
    if (ec)
      return Status(ErrorCode::kIoError,
                    "mkdir " + family_dir + ": " + ec.message());
    manifest_text +=
        "fam_" + pad4(f) + " " + (defect.empty() ? "clean" : defect) + "\n";

    for (std::size_t v = 1; v <= options.versions; ++v) {
      // Reseed per file so a version's content never depends on how many
      // earlier versions were rendered.
      Rng rng(options.seed * 0x9E3779B97F4A7C15ull + f);
      const std::string path =
          family_dir + "/rec_v" + std::to_string(v) + ".xsd";
      XMIT_RETURN_IF_ERROR(net::write_file(
          path,
          render_version(f, v, options.versions, defect, occurrence, rng)));
      ++manifest.files;
    }
  }
  XMIT_RETURN_IF_ERROR(
      net::write_file(dir + "/MANIFEST.txt", manifest_text));
  return manifest;
}

}  // namespace xmit::analysis
