#include "analysis/diagnostics.hpp"

#include <cstdio>

namespace xmit::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out = location;
  out += ": ";
  out += severity_name(severity);
  out += ' ';
  out += code;
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " (hint: ";
    out += hint;
    out += ')';
  }
  return out;
}

void DiagnosticSink::add(std::string code, Severity severity,
                         std::string location, std::string message,
                         std::string hint) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  items_.push_back(Diagnostic{std::move(code), severity, std::move(location),
                              std::move(message), std::move(hint)});
}

std::string DiagnosticSink::render() const {
  std::string out;
  for (const Diagnostic& diagnostic : items_) {
    out += diagnostic.to_string();
    out += '\n';
  }
  return out;
}

Status DiagnosticSink::as_status(ErrorCode code) const {
  if (!has_errors()) return Status::ok();
  std::string message =
      std::to_string(errors_) + " static-analysis error(s)";
  std::size_t shown = 0;
  for (const Diagnostic& diagnostic : items_) {
    if (diagnostic.severity != Severity::kError) continue;
    message += "; ";
    message += diagnostic.to_string();
    if (++shown == 3) break;
  }
  if (errors_ > shown) message += "; ...";
  return Status(code, std::move(message));
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& diagnostic : diagnostics)
    if (diagnostic.severity == Severity::kError) return true;
  return false;
}

std::string render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics) {
    out += diagnostic.to_string();
    out += '\n';
  }
  return out;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string to_json(const Diagnostic& diagnostic, std::string_view file) {
  std::string out = "{\"code\":\"";
  append_json_escaped(out, diagnostic.code);
  out += "\",\"severity\":\"";
  out += severity_name(diagnostic.severity);
  out += "\",\"file\":\"";
  append_json_escaped(out, file);
  out += "\",\"location\":\"";
  append_json_escaped(out, diagnostic.location);
  out += "\",\"message\":\"";
  append_json_escaped(out, diagnostic.message);
  out += "\",\"hint\":\"";
  append_json_escaped(out, diagnostic.hint);
  out += "\"}";
  return out;
}

}  // namespace xmit::analysis
