#include "analysis/plan_verify.hpp"

#include <cstring>

#include "common/limits.hpp"
#include "pbio/field.hpp"
#include "pbio/kernels.hpp"

namespace xmit::analysis {
namespace {

using pbio::FieldKind;
using pbio::PlanOp;
using pbio::PlanView;

bool int_like(FieldKind kind) {
  return kind == FieldKind::kInteger || kind == FieldKind::kUnsigned;
}

bool element_kind(FieldKind kind) {
  return kind != FieldKind::kString && kind != FieldKind::kNested;
}

std::string op_location(std::size_t index, const PlanOp& op) {
  return "op #" + std::to_string(index) + " (" + op.path + ")";
}

std::string span_text(std::uint64_t offset, std::uint64_t bytes) {
  return "[" + std::to_string(offset) + ", " +
         std::to_string(offset + bytes) + ")";
}

// Destination-byte ownership for the overlap/hole analysis.
enum : std::uint8_t {
  kUntouched = 0,
  kBaseCopy = 1,   // identity plans: the whole-struct memcpy
  kOpWritten = 2,  // any other op
};

class Verifier {
 public:
  Verifier(const PlanView& plan, const pbio::Format& sender,
           const pbio::Format& receiver)
      : plan_(plan), sender_(sender), receiver_(receiver) {}

  std::vector<Diagnostic> run() {
    check_shape();
    coverage_.assign(plan_.receiver_struct_size, kUntouched);
    for (std::size_t i = 0; i < plan_.ops.size(); ++i) check_op(i);
    check_holes();
    return sink_.items();
  }

 private:
  void error(std::string code, std::string location, std::string message,
             std::string hint = "") {
    sink_.add(std::move(code), Severity::kError, std::move(location),
              std::move(message), std::move(hint));
  }

  // PV011 / PV012: the plan header must agree with the two formats it
  // claims to mediate; everything later keys off these sizes.
  void check_shape() {
    if (plan_.sender_struct_size != sender_.struct_size())
      error("PV011", "plan",
            "plan records sender struct size " +
                std::to_string(plan_.sender_struct_size) + " but format '" +
                sender_.name() + "' is " +
                std::to_string(sender_.struct_size()) + " bytes");
    if (plan_.receiver_struct_size != receiver_.struct_size())
      error("PV011", "plan",
            "plan records receiver struct size " +
                std::to_string(plan_.receiver_struct_size) +
                " but format '" + receiver_.name() + "' is " +
                std::to_string(receiver_.struct_size()) + " bytes");
    if (plan_.src_pointer_size != 4 && plan_.src_pointer_size != 8)
      error("PV012", "plan",
            "sender pointer size " + std::to_string(plan_.src_pointer_size) +
                " is not 4 or 8");
  }

  // True when the source interval fits the sender fixed section. `code`
  // distinguishes scalar reads (PV001) from pointer-slot reads (PV010).
  bool check_read(const char* code, std::size_t index, const PlanOp& op,
                  std::uint64_t offset, std::uint64_t bytes) {
    if (fits_within(offset, bytes, plan_.sender_struct_size)) return true;
    error(code, op_location(index, op),
          "reads source bytes " + span_text(offset, bytes) +
              " outside the sender fixed section of " +
              std::to_string(plan_.sender_struct_size) + " bytes");
    return false;
  }

  // Marks [offset, offset+bytes) written; reports PV002 out-of-bounds and
  // PV003 double-writes. `fixup` marks identity-plan slot fix-ups, which
  // may overwrite the base copy (and only the base copy).
  void write_span(std::size_t index, const PlanOp& op, std::uint64_t offset,
                  std::uint64_t bytes, bool fixup) {
    if (!fits_within(offset, bytes, plan_.receiver_struct_size)) {
      error("PV002", op_location(index, op),
            "writes destination bytes " + span_text(offset, bytes) +
                " outside the receiver struct of " +
                std::to_string(plan_.receiver_struct_size) + " bytes");
      return;
    }
    const bool base =
        plan_.identity && index == 0 && op.kind == PlanOp::Kind::kCopy;
    bool reported = false;
    for (std::uint64_t at = offset; at < offset + bytes; ++at) {
      std::uint8_t& state = coverage_[static_cast<std::size_t>(at)];
      if (state == kOpWritten || (state == kBaseCopy && !fixup)) {
        if (!reported)
          error("PV003", op_location(index, op),
                "writes destination byte " + std::to_string(at) +
                    " already written by an earlier op",
                "coalesced spans must not overlap");
        reported = true;
      }
      state = base ? kBaseCopy : kOpWritten;
    }
  }

  // PV005/PV006/PV007: the run-time count of a dyn op must be read from a
  // real, declared, integer-shaped sender field before the payload moves.
  void check_count_field(std::size_t index, const PlanOp& op) {
    if (!fits_within(op.count_offset, op.count_size,
                     plan_.sender_struct_size)) {
      error("PV005", op_location(index, op),
            "count field " + span_text(op.count_offset, op.count_size) +
                " lies outside the sender fixed section");
      return;
    }
    if ((op.count_size != 1 && op.count_size != 2 && op.count_size != 4 &&
         op.count_size != 8) ||
        !int_like(op.count_kind)) {
      error("PV006", op_location(index, op),
            "count field has no machine-representable integer shape (kind " +
                std::string(pbio::field_kind_name(op.count_kind)) +
                ", size " + std::to_string(op.count_size) + ")");
      return;
    }
    for (const pbio::FlatField& field : sender_.flat_fields()) {
      if (field.offset == op.count_offset && field.size == op.count_size &&
          int_like(field.kind) && field.array_mode == pbio::ArrayMode::kNone)
        return;
    }
    error("PV007", op_location(index, op),
          "count field at offset " + std::to_string(op.count_offset) +
              " does not correspond to any scalar integer field the sender "
              "declared",
          "the op would read bytes of an unrelated field as an array count");
  }

  void check_op(std::size_t index) {
    const PlanOp& op = plan_.ops[index];
    std::uint64_t bytes = 0;
    switch (op.kind) {
      case PlanOp::Kind::kCopy:
        if (check_read("PV001", index, op, op.src_offset, op.count))
          write_span(index, op, op.dst_offset, op.count, /*fixup=*/false);
        break;
      case PlanOp::Kind::kSwap:
        if (op.src_size != op.dst_size ||
            (op.src_size != 2 && op.src_size != 4 && op.src_size != 8)) {
          error("PV008", op_location(index, op),
                "byte-swap of " + std::to_string(op.src_size) + "->" +
                    std::to_string(op.dst_size) +
                    "-byte elements has no kernel");
          break;
        }
        if (!checked_mul(op.count, op.src_size, &bytes)) {
          error("PV009", op_location(index, op), "element span overflows");
          break;
        }
        if (check_read("PV001", index, op, op.src_offset, bytes))
          write_span(index, op, op.dst_offset, bytes, /*fixup=*/false);
        break;
      case PlanOp::Kind::kConvert: {
        if (!element_kind(op.src_kind) || !element_kind(op.dst_kind) ||
            !pbio::valid_size_for_kind(op.src_kind, op.src_size) ||
            !pbio::valid_size_for_kind(op.dst_kind, op.dst_size)) {
          error("PV008", op_location(index, op),
                "conversion between illegal element shapes (" +
                    std::string(pbio::field_kind_name(op.src_kind)) + ":" +
                    std::to_string(op.src_size) + " -> " +
                    pbio::field_kind_name(op.dst_kind) + ":" +
                    std::to_string(op.dst_size) + ")");
          break;
        }
        std::uint64_t src_bytes = 0;
        std::uint64_t dst_bytes = 0;
        if (!checked_mul(op.count, op.src_size, &src_bytes) ||
            !checked_mul(op.count, op.dst_size, &dst_bytes)) {
          error("PV009", op_location(index, op), "element span overflows");
          break;
        }
        if (check_read("PV001", index, op, op.src_offset, src_bytes))
          write_span(index, op, op.dst_offset, dst_bytes, /*fixup=*/false);
        break;
      }
      case PlanOp::Kind::kFusedConvert: {
        pbio::FusedKind fused;
        if (!pbio::fused_shape(op.src_kind, op.src_size, op.dst_kind,
                               op.dst_size, &fused)) {
          error("PV013", op_location(index, op),
                "fused conversion between shapes with no fused kernel (" +
                    std::string(pbio::field_kind_name(op.src_kind)) + ":" +
                    std::to_string(op.src_size) + " -> " +
                    pbio::field_kind_name(op.dst_kind) + ":" +
                    std::to_string(op.dst_size) + ")",
                "fused kernels exist only for int32<->int64 and "
                "float<->double moves");
          break;
        }
        if (op.count == 0) {
          error("PV015", op_location(index, op),
                "fused op moves zero elements",
                "the coalescer must emit exact element counts; an empty op "
                "means a tail was dropped");
          break;
        }
        std::uint64_t src_bytes = 0;
        std::uint64_t dst_bytes = 0;
        if (!checked_mul(op.count, op.src_size, &src_bytes) ||
            !checked_mul(op.count, op.dst_size, &dst_bytes)) {
          error("PV009", op_location(index, op), "element span overflows");
          break;
        }
        if (!fits_within(op.src_offset, src_bytes,
                         plan_.sender_struct_size)) {
          error("PV014", op_location(index, op),
                "fused op reads source bytes " +
                    span_text(op.src_offset, src_bytes) +
                    " outside the sender fixed section of " +
                    std::to_string(plan_.sender_struct_size) + " bytes");
          break;
        }
        if (!fits_within(op.dst_offset, dst_bytes,
                         plan_.receiver_struct_size)) {
          error("PV014", op_location(index, op),
                "fused op writes destination bytes " +
                    span_text(op.dst_offset, dst_bytes) +
                    " outside the receiver struct of " +
                    std::to_string(plan_.receiver_struct_size) + " bytes");
          break;
        }
        write_span(index, op, op.dst_offset, dst_bytes, /*fixup=*/false);
        break;
      }
      case PlanOp::Kind::kString: {
        std::uint64_t src_bytes = 0;
        std::uint64_t dst_bytes = 0;
        if (!checked_mul(op.count, plan_.src_pointer_size, &src_bytes) ||
            !checked_mul(op.count, sizeof(void*), &dst_bytes)) {
          error("PV009", op_location(index, op), "slot span overflows");
          break;
        }
        if (check_read("PV010", index, op, op.src_offset, src_bytes))
          write_span(index, op, op.dst_offset, dst_bytes,
                     /*fixup=*/plan_.identity);
        break;
      }
      case PlanOp::Kind::kDynCopy:
      case PlanOp::Kind::kDynSwap:
      case PlanOp::Kind::kDynConvert:
      case PlanOp::Kind::kDynFusedConvert: {
        check_count_field(index, op);
        if (op.kind == PlanOp::Kind::kDynFusedConvert &&
            !pbio::fused_shape(op.src_kind, op.src_size, op.dst_kind,
                               op.dst_size, nullptr))
          error("PV013", op_location(index, op),
                "dynamic fused conversion between shapes with no fused "
                "kernel (" +
                    std::string(pbio::field_kind_name(op.src_kind)) + ":" +
                    std::to_string(op.src_size) + " -> " +
                    pbio::field_kind_name(op.dst_kind) + ":" +
                    std::to_string(op.dst_size) + ")");
        if (op.kind == PlanOp::Kind::kDynSwap &&
            (op.src_size != op.dst_size ||
             (op.src_size != 2 && op.src_size != 4 && op.src_size != 8)))
          error("PV008", op_location(index, op),
                "dynamic byte-swap of " + std::to_string(op.src_size) +
                    "->" + std::to_string(op.dst_size) +
                    "-byte elements has no kernel");
        if (op.kind == PlanOp::Kind::kDynCopy && op.src_size != op.dst_size)
          error("PV008", op_location(index, op),
                "dynamic memcpy with differing element widths (" +
                    std::to_string(op.src_size) + " -> " +
                    std::to_string(op.dst_size) + ")");
        if (op.kind == PlanOp::Kind::kDynConvert &&
            (!element_kind(op.src_kind) || !element_kind(op.dst_kind) ||
             !pbio::valid_size_for_kind(op.src_kind, op.src_size) ||
             !pbio::valid_size_for_kind(op.dst_kind, op.dst_size)))
          error("PV008", op_location(index, op),
                "dynamic conversion between illegal element shapes");
        // The payload lives in the var section, bounds-checked per record
        // against data-dependent counts; statically only the pointer slot
        // reads/writes in the fixed sections are provable.
        if (check_read("PV010", index, op, op.src_offset,
                       plan_.src_pointer_size))
          write_span(index, op, op.dst_offset, sizeof(void*),
                     /*fixup=*/plan_.identity);
        break;
      }
    }
  }

  // PV004: a conversion plan memsets the struct first (zero_fill), so
  // uncovered bytes are defined zeros; any other plan must cover every
  // byte or the receiver reads stack garbage.
  void check_holes() {
    if (plan_.zero_fill) return;
    std::uint64_t begin = 0;
    bool in_hole = false;
    for (std::size_t at = 0; at <= coverage_.size(); ++at) {
      const bool hole = at < coverage_.size() && coverage_[at] == kUntouched;
      if (hole && !in_hole) {
        begin = at;
        in_hole = true;
      } else if (!hole && in_hole) {
        error("PV004", "plan",
              "destination bytes " + span_text(begin, at - begin) +
                  " are never written and the plan does not zero-fill",
              "receiver would read uninitialized memory");
        in_hole = false;
      }
    }
  }

  const PlanView& plan_;
  const pbio::Format& sender_;
  const pbio::Format& receiver_;
  std::vector<std::uint8_t> coverage_;
  DiagnosticSink sink_;
};

}  // namespace

std::vector<Diagnostic> verify_plan(const PlanView& plan,
                                    const pbio::Format& sender,
                                    const pbio::Format& receiver) {
  return Verifier(plan, sender, receiver).run();
}

Status verify_plan_status(const PlanView& plan, const pbio::Format& sender,
                          const pbio::Format& receiver) {
  std::vector<Diagnostic> findings = verify_plan(plan, sender, receiver);
  if (!has_errors(findings)) return Status::ok();
  DiagnosticSink sink;
  for (Diagnostic& diagnostic : findings)
    sink.add(std::move(diagnostic.code), diagnostic.severity,
             std::move(diagnostic.location), std::move(diagnostic.message),
             std::move(diagnostic.hint));
  return sink.as_status(ErrorCode::kMalformedInput);
}

void register_plan_verifier() {
  pbio::set_global_plan_verifier(
      [](const PlanView& plan, const pbio::Format& sender,
         const pbio::Format& receiver) {
        return verify_plan_status(plan, sender, receiver);
      });
}

}  // namespace xmit::analysis
