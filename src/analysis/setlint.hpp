// Whole-set static analysis (DESIGN.md §5j) — cross-schema, cross-version
// reasoning over a *directory* of schemas, the layer above the single-file
// linter in lint.hpp.
//
// Real deployments carry schema sets far bigger than one file: versioned
// families (sensor_v1.xsd .. sensor_v9.xsd), types shared across files,
// thousands of live formats. Facts that are only provable across the set
// get the XS0xx code family:
//
//   XS000 error    a file in the set does not parse / lay out at all
//   XS001 error    the same type name is declared with conflicting layouts
//                  in unrelated families (no version of either family
//                  matches any version of the other — a registry loading
//                  both has an ambiguous "current" format for that name)
//   XS002 error    wire format-ID collision: two *different* canonical
//                  layouts hash to the same 64-bit FormatId (a by-id
//                  lookup would be ambiguous; astronomically unlikely and
//                  not expressible as a schema fixture — unit-tested via
//                  cross_check_signatures)
//   XS003 error    evolution chain break: every adjacent version step is
//                  compatible but a longer hop (v_i -> v_j, j > i+1) has
//                  error-severity evolution findings — e.g. a type removed
//                  in one step (warning) and re-added incompatibly later
//   XS004 warning  field renamed in place: one version step removes a
//                  field and adds another at the identical offset & size —
//                  receivers silently reinterpret the bytes
//   XS005 error    a dynamic array's count field resolves differently
//                  across versions: same dimension name, but its width or
//                  integer kind changed
//   XS006 note     set-wide swap-hotspot total: bytes a cross-endian
//                  decode would swap across every record type in the set
//   XS007 note     widest record in the set (struct size high-water mark)
//   XS008 error    a (sender version, receiver version) pair's decode
//                  plan does not compile (see plan_matrix.hpp)
//
// Version families are derived from file names: "<family>_v<N>.xsd" forms
// the chain of family "<family>" ordered by N; any other stem is a
// single-version family. The analyzer also runs the per-file linter
// (XL codes) on every schema and — with `matrix` enabled — the offline
// pairwise plan pre-verification matrix (PV codes / XS008).
//
// Incremental cache: with `cache_dir` set, per-file results are keyed by
// (tool version, options fingerprint, file content digest) and per-family
// pair results by the digests of every member, so a warm re-lint of a
// 5-10k corpus re-analyzes only what changed. Analysis fans out over a
// worker pool (`jobs`); output order is deterministic regardless of
// worker count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "common/error.hpp"
#include "pbio/arch.hpp"
#include "pbio/format.hpp"
#include "xmit/xmit.hpp"

namespace xmit::analysis {

// Identity of one type declaration inside the set — everything the
// cross-file checks (XS001/XS002/XS006/XS007) need, cheap enough to cache
// so a warm run never re-parses unchanged files.
struct TypeSig {
  std::string type;         // complexType name
  std::string family;       // version-family stem ("sensor" for sensor_v3)
  std::uint32_t version = 0;
  std::string file;         // path relative to the set root
  pbio::FormatId id = 0;    // canonical-description hash at the lint arch
  std::string description;  // canonical description (XS002 cross-check)
  std::uint32_t struct_size = 0;
  std::uint64_t swap_bytes = 0;  // cross-endian swap volume per record
};

struct SetLintOptions {
  LintOptions lint;  // per-schema rules; lint.arch also keys the TypeSigs

  // Diagnostic codes ("XS004", "XL011", ...) to suppress entirely. The
  // mutation tests flip each XS check off this way and assert the defect
  // corpus is then accepted.
  std::vector<std::string> disabled_codes;

  std::size_t jobs = 0;   // worker threads; 0 = hardware concurrency
  std::string cache_dir;  // empty = no cache

  bool matrix = false;  // run the pairwise plan pre-verification matrix
  pbio::ArchInfo matrix_sender_arch = pbio::ArchInfo::host();
};

// One finding plus the set member(s) it belongs to. `file` is a relative
// path for per-file findings, "old.xsd -> new.xsd" for pair findings and
// "<set>" for set-wide findings.
struct FileFinding {
  std::string file;
  Diagnostic diagnostic;
};

struct SetLintStats {
  std::size_t files = 0;
  std::size_t families = 0;
  std::size_t types = 0;           // type declarations across the set
  std::size_t pairs_verified = 0;  // matrix pairs that verified clean
  std::size_t pairs_rejected = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::uint64_t set_swap_bytes = 0;  // XS006 total
  std::uint32_t widest_struct = 0;   // XS007
  std::string widest_type;
};

struct SetLintReport {
  std::vector<FileFinding> findings;  // deterministic order
  SetLintStats stats;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool has_errors() const { return error_count() > 0; }
};

// Lints every *.xsd under `dir` (recursive). Fails only when the
// directory itself is unreadable; unusable member files become XS000
// findings instead, so one broken schema cannot hide the rest of a
// 5k-file report.
Result<SetLintReport> lint_schema_set(const std::string& dir,
                                      const SetLintOptions& options = {});

// Same analysis over an explicit file list (labels = the paths as given).
Result<SetLintReport> lint_schema_files(const std::vector<std::string>& files,
                                        const SetLintOptions& options = {});

// The pure cross-file half (XS001/XS002) over per-type signatures —
// exposed so registry-shaped callers and the unit tests can run it
// without any files on disk.
std::vector<Diagnostic> cross_check_signatures(
    const std::vector<TypeSig>& sigs,
    const std::vector<std::string>& disabled_codes = {});

// "<family>_v<N>" decomposition of a file stem; versioned == false means
// the stem had no _v<N> suffix and forms a single-version family.
struct FamilyKey {
  std::string family;
  std::uint32_t version = 0;
  bool versioned = false;
};
FamilyKey family_of(std::string_view stem);

// Lint-on-register *set* hook for toolkit::Xmit: every installed document
// is linted individually (lint.hpp rules), checked against every document
// the process accepted before it (XS001/XS002), and — when a document is
// re-installed under the same source, e.g. by refresh() — evolution-
// checked against its previous version (XL010-XL016, XS004, XS005).
// Under LintPolicy::kDeny a document with error-severity findings is
// refused and does not join the accepted set. Diagnostics stream to
// `out` (nullptr -> std::cerr). Supersedes attach_lint.
void attach_set_lint(toolkit::Xmit& xmit, LintPolicy policy,
                     SetLintOptions options = {},
                     std::ostream* out = nullptr);

}  // namespace xmit::analysis
