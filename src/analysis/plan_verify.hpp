// Static verifier for compiled marshal plans (DESIGN.md §5e).
//
// Abstract-interprets a pbio::PlanView — the flat op program the decoder
// compiled for one (sender, receiver) format pair — without executing a
// single op. The abstract domain is byte intervals: every op is reduced
// to the source interval it reads inside the sender's fixed section and
// the destination interval it writes inside the receiver struct, plus,
// for str/dyn ops, the count-field interval it reads before use. The
// verifier proves:
//
//   - every read stays inside [0, sender_struct_size)          (PV001)
//   - every write stays inside [0, receiver_struct_size)       (PV002)
//   - no destination byte is written twice (conversion plans;
//     identity fix-ups may only overwrite the base copy)        (PV003)
//   - no destination byte is left uninitialized when the plan
//     does not zero-fill                                       (PV004)
//   - str/dyn count fields live inside the fixed section       (PV005),
//     have a machine-representable integer shape               (PV006),
//     and name a field the sender actually declared            (PV007)
//   - element widths are legal for their kernels               (PV008)
//   - no span computation overflows 64-bit arithmetic          (PV009)
//   - pointer-slot spans are in bounds                         (PV010)
//   - the plan's recorded struct sizes match the formats       (PV011)
//   - the sender pointer size is 4 or 8                        (PV012)
//   - fused ops name a shape the fused kernels implement
//     (vector element width and kind class)                    (PV013)
//   - fused-op source/destination extents are fully covered
//     by both fixed sections                                   (PV014)
//   - fixed fused ops move at least one element: an empty op
//     means the coalescer dropped a tail                       (PV015)
//
// Registered into pbio::Decoder via register_plan_verifier() so plans
// built from hostile or buggy metadata are rejected at admission, not at
// segfault time. MessageSession verifies unconditionally; elsewhere the
// XMIT_VERIFY_PLANS environment toggle turns it on.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "common/error.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"

namespace xmit::analysis {

// Full findings, in op order. Empty means the plan is provably safe
// under the abstract domain above.
std::vector<Diagnostic> verify_plan(const pbio::PlanView& plan,
                                    const pbio::Format& sender,
                                    const pbio::Format& receiver);

// OK / first errors wrapped in kMalformedInput — the shape plan_for()
// wants from a PlanVerifier.
Status verify_plan_status(const pbio::PlanView& plan,
                          const pbio::Format& sender,
                          const pbio::Format& receiver);

// Installs verify_plan_status as the process-wide pbio plan verifier.
// Idempotent; cheap enough to call from every entry point that decodes
// peer-supplied metadata.
void register_plan_verifier();

}  // namespace xmit::analysis
