#include "analysis/plan_matrix.hpp"

#include <utility>

#include "analysis/plan_verify.hpp"
#include "pbio/decode.hpp"
#include "pbio/registry.hpp"

namespace xmit::analysis {
namespace {

using pbio::FormatPtr;
using toolkit::TypeLayout;

// One version's layouts registered as live formats, sender and receiver
// side. Registration happens in layout order (dependencies first), so
// nested type references resolve within the same version.
struct RegisteredVersion {
  const VersionLayouts* layouts = nullptr;
  pbio::FormatRegistry senders;
  pbio::FormatRegistry receivers;
  // Parallel to layouts->sender / ->receiver; null where registration
  // failed (already reported).
  std::vector<FormatPtr> sender_formats;
  std::vector<FormatPtr> receiver_formats;
};

const TypeLayout* layout_named(const std::vector<TypeLayout>& layouts,
                               std::string_view name) {
  for (const TypeLayout& layout : layouts)
    if (layout.name == name) return &layout;
  return nullptr;
}

void register_side(const std::vector<TypeLayout>& layouts,
                   const pbio::ArchInfo& arch, const std::string& label,
                   pbio::FormatRegistry& registry,
                   std::vector<FormatPtr>& formats, DiagnosticSink& sink) {
  formats.reserve(layouts.size());
  for (const TypeLayout& layout : layouts) {
    auto registered = registry.register_format(layout.name, layout.fields,
                                               layout.struct_size, arch);
    if (!registered.is_ok()) {
      sink.add("XS008", Severity::kError, label + " " + layout.name,
               "format registration failed: " +
                   registered.status().to_string(),
               "the layout cannot become a live wire format at all");
      formats.push_back(nullptr);
      continue;
    }
    formats.push_back(std::move(registered).value());
  }
}

}  // namespace

Result<VersionLayouts> layout_version(std::string label,
                                      const xsd::Schema& schema,
                                      const MatrixOptions& options) {
  VersionLayouts version;
  version.label = std::move(label);
  XMIT_ASSIGN_OR_RETURN(
      version.sender, toolkit::layout_schema(schema, options.sender_arch));
  XMIT_ASSIGN_OR_RETURN(
      version.receiver,
      toolkit::layout_schema(schema, pbio::ArchInfo::host()));
  return version;
}

MatrixResult verify_plan_matrix(const std::vector<VersionLayouts>& versions,
                                const MatrixOptions& options) {
  MatrixResult result;
  DiagnosticSink sink;

  std::vector<RegisteredVersion> registered(versions.size());
  for (std::size_t i = 0; i < versions.size(); ++i) {
    registered[i].layouts = &versions[i];
    register_side(versions[i].sender, options.sender_arch, versions[i].label,
                  registered[i].senders, registered[i].sender_formats, sink);
    register_side(versions[i].receiver, pbio::ArchInfo::host(),
                  versions[i].label, registered[i].receivers,
                  registered[i].receiver_formats, sink);
  }

  for (std::size_t i = 0; i < registered.size(); ++i) {
    // One decoder per sender version: its plan cache is keyed by
    // (sender id, receiver id), so every receiver version below reuses it.
    pbio::Decoder decoder(registered[i].senders);
    decoder.set_verify_plans(false);  // the matrix *is* the verifier
    for (std::size_t s = 0; s < registered[i].sender_formats.size(); ++s) {
      const FormatPtr& sender = registered[i].sender_formats[s];
      if (sender == nullptr) continue;
      const std::string& type = registered[i].layouts->sender[s].name;
      for (std::size_t j = 0; j < registered.size(); ++j) {
        const TypeLayout* receiver_layout =
            layout_named(registered[j].layouts->receiver, type);
        if (receiver_layout == nullptr) continue;  // type absent in j
        FormatPtr receiver;
        for (std::size_t r = 0; r < registered[j].receiver_formats.size();
             ++r) {
          if (registered[j].layouts->receiver[r].name == type)
            receiver = registered[j].receiver_formats[r];
        }
        if (receiver == nullptr) continue;  // registration already reported

        const std::string pair = registered[i].layouts->label + " -> " +
                                 registered[j].layouts->label;
        auto plan = decoder.plan_view(sender, *receiver);
        if (!plan.is_ok()) {
          sink.add("XS008", Severity::kError, pair + " " + type,
                   "decode plan does not compile: " +
                       plan.status().to_string(),
                   "records sent by one version cannot be decoded by the "
                   "other; this pair cannot interoperate");
          ++result.pairs_rejected;
          continue;
        }
        std::vector<Diagnostic> findings =
            verify_plan(plan.value(), *sender, *receiver);
        if (findings.empty()) {
          ++result.pairs_verified;
          continue;
        }
        ++result.pairs_rejected;
        for (Diagnostic& diagnostic : findings)
          sink.add(std::move(diagnostic.code), diagnostic.severity,
                   pair + " " + type + " " + diagnostic.location,
                   std::move(diagnostic.message), std::move(diagnostic.hint));
      }
    }
  }

  result.findings = sink.items();
  return result;
}

}  // namespace xmit::analysis
