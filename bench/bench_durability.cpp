// Durability-cost harness for the crash-safe record log.
//
// The write-ahead log buys crash safety at the price of a disk write
// (and, depending on policy, an fsync) in front of every transmit. This
// harness prices that trade on the actual storage the process runs on:
//
//   append_throughput      records/s appended per fsync policy — `none`
//                          (OS page cache absorbs everything), `interval`
//                          (one fsync per 64 records), `always` (one
//                          fsync per record: the exactly-once-after-
//                          power-loss configuration)
//   recovery_open          time for RecordLog::open to scan, verify and
//                          heal a populated directory — the cost a
//                          restarted sender pays before its first append
//   recovery_full_replay   time to CRC-verify and stream every record
//                          back out of the reopened log — the cost of
//                          serving a subscriber the whole history
//
// Single-threaded and deterministic; directories live under /tmp and are
// removed on exit.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "storage/log.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

constexpr std::size_t kPayloadBytes = 256;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xmit_bench_dur_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

storage::LogOptions options_for(storage::FsyncPolicy policy) {
  storage::LogOptions options;
  options.fsync = policy;
  options.fsync_interval_records = 64;
  return options;
}

void append_records(storage::RecordLog& log, std::uint64_t from,
                    std::uint64_t count) {
  std::uint8_t payload[kPayloadBytes];
  for (std::uint64_t seq = from; seq < from + count; ++seq) {
    std::memset(payload, static_cast<int>(seq & 0xFF), sizeof(payload));
    check(log.append(seq, seq % 3 + 1,
                     std::span<const std::uint8_t>(payload, sizeof(payload))),
          "append");
  }
}

// Appends `count` records into a fresh directory; returns records/s.
double append_throughput(storage::FsyncPolicy policy, std::uint64_t count) {
  TempDir dir;
  auto log = expect(storage::RecordLog::open(dir.path(), options_for(policy),
                                             DecodeLimits::defaults()),
                    "open log");
  Stopwatch watch;
  append_records(log, 1, count);
  check(log.sync(), "final sync");
  return static_cast<double>(count) / watch.elapsed_s();
}

struct RecoveryCost {
  double open_ms;
  double replay_ms;
};

// Populates a multi-segment directory, then times the two halves of a
// restart: reopening the log (tail scan + heal) and streaming the whole
// history back out through a verifying cursor.
RecoveryCost recovery_cost(std::uint64_t count) {
  TempDir dir;
  storage::LogOptions options = options_for(storage::FsyncPolicy::kNone);
  options.segment_bytes = 1u << 20;  // force several segments
  options.index_every_bytes = 16u << 10;
  {
    auto log = expect(storage::RecordLog::open(dir.path(), options,
                                               DecodeLimits::defaults()),
                      "open log");
    append_records(log, 1, count);
    check(log.sync(), "sync");
  }
  RecoveryCost cost{};
  Stopwatch watch;
  auto reopened = expect(storage::RecordLog::open(dir.path(), options,
                                                  DecodeLimits::defaults()),
                         "reopen log");
  cost.open_ms = watch.elapsed_ms();
  if (reopened.last_seq() != count) {
    std::fprintf(stderr, "FATAL recovery lost records: last_seq %llu\n",
                 static_cast<unsigned long long>(reopened.last_seq()));
    std::abort();
  }
  watch.reset();
  auto cursor = reopened.read_from(1);
  storage::RecordLog::Item item;
  std::uint64_t replayed = 0;
  while (expect(cursor.next(&item), "cursor")) ++replayed;
  cost.replay_ms = watch.elapsed_ms();
  if (replayed != count) {
    std::fprintf(stderr, "FATAL replay returned %llu of %llu records\n",
                 static_cast<unsigned long long>(replayed),
                 static_cast<unsigned long long>(count));
    std::abort();
  }
  return cost;
}

// Best-of for throughput: keep the highest rate (the least-disturbed run).
template <typename Fn>
double best_of(Fn&& fn, int repeats) {
  double best = fn();
  for (int i = 1; i < repeats; ++i) best = std::max(best, fn());
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Durability: append throughput and restart recovery",
      "What the write-ahead log costs per fsync policy, and what a "
      "restart pays to recover");

  const bool smoke = bench::smoke();
  const std::uint64_t append_count = smoke ? 64 : 20000;
  const std::uint64_t always_count = smoke ? 32 : 2000;
  const std::uint64_t recovery_count = smoke ? 128 : 40000;
  const int repeats = smoke ? 1 : 5;

  bench::Reporter reporter("durability");

  struct PolicyRun {
    storage::FsyncPolicy policy;
    std::uint64_t count;
  };
  const PolicyRun runs[] = {
      {storage::FsyncPolicy::kNone, append_count},
      {storage::FsyncPolicy::kInterval, append_count},
      {storage::FsyncPolicy::kAlways, always_count},
  };
  for (const PolicyRun& run : runs) {
    const double rate = best_of(
        [&] { return append_throughput(run.policy, run.count); }, repeats);
    std::printf("append fsync=%-9s %12.0f records/s  (%.1f MB/s)\n",
                storage::fsync_policy_name(run.policy), rate,
                rate * kPayloadBytes / 1e6);
    reporter.add(std::string("fsync-") +
                     storage::fsync_policy_name(run.policy),
                 "append_records_per_s", rate, "records/s");
  }

  double open_ms = 0, replay_ms = 0;
  for (int i = 0; i < repeats; ++i) {
    const RecoveryCost cost = recovery_cost(recovery_count);
    open_ms = i == 0 ? cost.open_ms : std::min(open_ms, cost.open_ms);
    replay_ms = i == 0 ? cost.replay_ms : std::min(replay_ms, cost.replay_ms);
  }
  std::printf("%-28s %10.3f ms  (%llu records)\n", "recovery_open", open_ms,
              static_cast<unsigned long long>(recovery_count));
  std::printf("%-28s %10.3f ms  (CRC-verified readback)\n",
              "recovery_full_replay", replay_ms);
  bench::print_note(
      "append is WAL cost only (no wire); recovery_open is what a restart "
      "pays before its first append, recovery_full_replay what serving a "
      "subscriber the whole history costs");

  reporter.add("restart", "recovery_open", open_ms);
  reporter.add("restart", "recovery_full_replay", replay_ms);
  return 0;
}
