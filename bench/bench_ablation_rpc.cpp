// Ablation A4 (extension): what does a text control plane cost?
//
// The same logical request/response exchanged three ways on one machine:
//   XML-RPC           HTTP POST + XML envelopes (connection per call,
//                     as the protocol prescribes)
//   PBIO / channel    binary records over a persistent TCP channel
//   PBIO / pipe       binary records over a socketpair (co-resident)
// This quantifies the paper's position: fine to spend text-protocol costs
// on low-rate control traffic, never on the data path.
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/arena.hpp"
#include "net/channel.hpp"
#include "net/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "rpc/xmlrpc.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

// The request/response pair: "give me stats for sensor <id>" -> 4 numbers.
struct StatsRequest {
  std::int32_t sensor;
};
struct StatsReply {
  std::int32_t sensor;
  double minimum, maximum, mean;
};

StatsReply compute_reply(std::int32_t sensor) {
  return {sensor, sensor * 0.5, sensor * 2.0, sensor * 1.1};
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A4 — control-plane exchange cost: XML-RPC vs PBIO",
      "round-trip time for one request/reply pair, same machine");

  // --- XML-RPC arm ------------------------------------------------------
  auto http = expect(net::HttpServer::start(), "http");
  rpc::XmlRpcServer rpc_server(*http);
  rpc_server.register_method(
      "stats.get", [](const std::vector<rpc::Value>& params) -> Result<rpc::Value> {
        XMIT_ASSIGN_OR_RETURN(auto sensor, params[0].as_int());
        StatsReply reply = compute_reply(sensor);
        return rpc::Value::structure({
            {"sensor", rpc::Value::from_int(reply.sensor)},
            {"min", rpc::Value::from_double(reply.minimum)},
            {"max", rpc::Value::from_double(reply.maximum)},
            {"mean", rpc::Value::from_double(reply.mean)},
        });
      });
  rpc::XmlRpcClient rpc_client("127.0.0.1", http->port());

  double rpc_ms = bench::encode_ms(
      [&] {
        auto reply = rpc_client.call("stats.get", {rpc::Value::from_int(7)});
        check(reply.status(), "rpc call");
      },
      32);

  // --- PBIO arms ---------------------------------------------------------
  pbio::FormatRegistry registry;
  auto request_format = expect(
      registry.register_format(
          "StatsRequest",
          {{"sensor", "integer", 4, offsetof(StatsRequest, sensor)}},
          sizeof(StatsRequest)),
      "request format");
  auto reply_format = expect(
      registry.register_format(
          "StatsReply",
          {{"sensor", "integer", 4, offsetof(StatsReply, sensor)},
           {"minimum", "float", 8, offsetof(StatsReply, minimum)},
           {"maximum", "float", 8, offsetof(StatsReply, maximum)},
           {"mean", "float", 8, offsetof(StatsReply, mean)}},
          sizeof(StatsReply)),
      "reply format");
  auto request_encoder = expect(pbio::Encoder::make(request_format), "enc");
  auto reply_encoder = expect(pbio::Encoder::make(reply_format), "enc");

  auto serve_channel = [&](net::Channel channel) {
    pbio::Decoder decoder(registry);
    Arena arena;
    for (;;) {
      auto bytes = channel.receive(2000);
      if (!bytes.is_ok()) return;
      StatsRequest request{};
      arena.reset();
      if (!decoder.decode(bytes.value(), *request_format, &request, arena)
               .is_ok())
        return;
      StatsReply reply = compute_reply(request.sensor);
      auto encoded = reply_encoder.encode_to_vector(&reply);
      if (!encoded.is_ok() || !channel.send(encoded.value()).is_ok()) return;
    }
  };

  auto measure_channel = [&](net::Channel& client) {
    pbio::Decoder decoder(registry);
    Arena arena;
    return bench::encode_ms(
        [&] {
          StatsRequest request{7};
          auto bytes = expect(request_encoder.encode_to_vector(&request), "enc");
          check(client.send(bytes), "send");
          auto reply_bytes = client.receive(2000);
          check(reply_bytes.status(), "recv");
          StatsReply reply{};
          arena.reset();
          check(decoder.decode(reply_bytes.value(), *reply_format, &reply,
                               arena),
                "decode");
        },
        128);
  };

  // TCP channel arm.
  auto listener = expect(net::ChannelListener::listen(), "listen");
  net::Channel tcp_client;
  std::thread tcp_connect([&] {
    auto connected = net::Channel::connect(listener.port());
    if (connected.is_ok()) tcp_client = std::move(connected).value();
  });
  auto tcp_served = expect(listener.accept(), "accept");
  tcp_connect.join();
  std::thread tcp_server(serve_channel, std::move(tcp_served));
  double tcp_ms = measure_channel(tcp_client);
  tcp_client.close();
  tcp_server.join();

  // Socketpair arm.
  auto [pipe_client, pipe_served] = expect(net::Channel::pipe(), "pipe");
  std::thread pipe_server(serve_channel, std::move(pipe_served));
  double pipe_ms = measure_channel(pipe_client);
  pipe_client.close();
  pipe_server.join();

  std::printf("\n%-24s %12s %10s\n", "mechanism", "ms/exchange", "vs pipe");
  std::printf("%-24s %12.4f %10.1fx\n", "XML-RPC over HTTP", rpc_ms,
              rpc_ms / pipe_ms);
  std::printf("%-24s %12.4f %10.1fx\n", "PBIO over TCP channel", tcp_ms,
              tcp_ms / pipe_ms);
  std::printf("%-24s %12.4f %10.1fx\n", "PBIO over socketpair", pipe_ms, 1.0);
  bench::Reporter reporter("ablation_rpc");
  reporter.add("exchange", "xml-rpc over http", rpc_ms);
  reporter.add("exchange", "pbio over tcp", tcp_ms);
  reporter.add("exchange", "pbio over socketpair", pipe_ms);
  std::printf(
      "\ninterpretation: per-call connection setup + XML envelopes cost\n"
      "several times a persistent binary channel even on loopback; on a\n"
      "real network the handshakes and 3-8x message expansion widen the\n"
      "gap further. Acceptable at control rates, ruinous on the data path\n"
      "(Figure 8).\n");
  return 0;
}
