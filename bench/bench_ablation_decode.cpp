// Ablation A3 (DESIGN.md §5): decode-path costs in the PBIO receiver.
//
// PBIO is "reader makes right": the decode cost depends on how wrong the
// record is for the receiver. Four rungs, same logical record:
//   in-place    identical layout, pointers patched into the buffer
//   identity    identical layout, copied out (fixed memcpy + var copies)
//   byte-swap   foreign byte order, same layout shape (per-field convert)
//   relayout    foreign pointer size AND byte order (full conversion)
#include <vector>

#include "bench_common.hpp"
#include "common/arena.hpp"
#include "pbio/decode.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "xmit/layout.hpp"
#include "xsd/parse.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct Sample {
  std::int32_t id;
  double value;
  char* label;
  std::int32_t n;
  float* series;
};

constexpr const char* kSchema = R"(
<xsd:complexType name="Sample">
  <xsd:element name="id" type="xsd:integer" />
  <xsd:element name="value" type="xsd:double" />
  <xsd:element name="label" type="xsd:string" />
  <xsd:element name="series" type="xsd:float" maxOccurs="*"
               dimensionName="n" dimensionPlacement="before" />
</xsd:complexType>)";

// Lay the schema out for `arch` and register the result.
pbio::FormatPtr format_for(pbio::FormatRegistry& registry,
                           const pbio::ArchInfo& arch) {
  auto schema = expect(xsd::parse_schema_text(kSchema), "schema");
  auto layouts = expect(toolkit::layout_schema(schema, arch), "layout");
  auto format = expect(pbio::Format::make(layouts[0].name, layouts[0].fields,
                                          layouts[0].struct_size, arch),
                       "format");
  return expect(registry.adopt(format), "adopt");
}

// Builds a wire record under `arch` with a payload of `n` floats.
std::vector<std::uint8_t> forge_record(const pbio::FormatPtr& format, int n) {
  pbio::RecordBuilder builder(format);
  check(builder.set_int("id", 42), "set");
  check(builder.set_float("value", 0.5), "set");
  check(builder.set_string("label", "sensor-alpha"), "set");
  std::vector<double> series(n);
  for (int i = 0; i < n; ++i) series[i] = i * 0.25;
  check(builder.set_float_array("series", series), "set");
  return expect(builder.build(), "build");
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A3 — receiver decode paths (reader makes right)",
      "per-decode wall time (ms) by conversion rung and payload size");

  pbio::FormatRegistry registry;
  auto host = format_for(registry, pbio::ArchInfo::host());
  // Foreign profiles. Note big_endian_64 shares layout *shape* with the
  // host but flips byte order; little_endian_32 changes pointer size too.
  auto swapped = format_for(registry, pbio::ArchInfo::big_endian_64());
  auto relayout = format_for(registry, pbio::ArchInfo::little_endian_32());

  pbio::Decoder decoder(registry);

  bench::Reporter reporter("ablation_decode");
  std::printf("\n%-10s %12s %12s %12s %12s\n", "payload", "in-place",
              "identity", "byte-swap", "relayout");

  for (int n : {16, 256, 4096, 65536}) {
    auto native_record = forge_record(host, n);
    auto swapped_record = forge_record(swapped, n);
    auto relaid_record = forge_record(relayout, n);

    Sample out{};
    Arena arena;

    // in-place needs a mutable copy each run; measure patch time over a
    // reused buffer (re-patching is idempotent byte-wise: slots get
    // absolute pointers; so refresh the buffer each iteration).
    std::vector<std::uint8_t> scratch = native_record;
    double in_place_ms = bench::encode_ms([&] {
      std::copy(native_record.begin(), native_record.end(), scratch.begin());
      (void)expect(decoder.decode_in_place(scratch, *host), "in-place");
    });

    double identity_ms = bench::encode_ms([&] {
      arena.reset();
      check(decoder.decode(native_record, *host, &out, arena), "identity");
    });

    double swap_ms = bench::encode_ms([&] {
      arena.reset();
      check(decoder.decode(swapped_record, *host, &out, arena), "swap");
    });

    double relayout_ms = bench::encode_ms([&] {
      arena.reset();
      check(decoder.decode(relaid_record, *host, &out, arena), "relayout");
    });

    char label[32];
    std::snprintf(label, sizeof(label), "%d floats", n);
    std::printf("%-10s %12.6f %12.6f %12.6f %12.6f\n", label, in_place_ms,
                identity_ms, swap_ms, relayout_ms);
    reporter.add("in-place", label, in_place_ms);
    reporter.add("identity", label, identity_ms);
    reporter.add("byte-swap", label, swap_ms);
    reporter.add("relayout", label, relayout_ms);
  }

  std::printf(
      "\ninterpretation: the homogeneous fast paths stay flat-ish (memcpy\n"
      "bound; in-place excludes even that for the payload), while the\n"
      "conversion rungs grow with element count — the cost a homogeneous\n"
      "cluster never pays, which is why PBIO wins Figure 8.\n");
  return 0;
}
