// Figure 8: send-side encoding times for various message sizes and binary
// communication mechanisms — XML (text wire format), MPICH-style packing,
// CORBA/CDR, and PBIO.
//
// Paper series: binary data sizes of 100 b, 1 Kb, 10 Kb, 100 Kb on a log
// scale; expected ordering XML >> MPICH > CORBA > PBIO, with XML 2-4
// orders of magnitude above PBIO (string conversion costs) and MPI ~10x
// PBIO for ~100-byte structures (per-element typemap walk vs memcpy).
#include <vector>

#include "baseline/cdr.hpp"
#include "baseline/mpilite.hpp"
#include "pbio/decode.hpp"
#include "baseline/xmlwire.hpp"
#include "bench_common.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct Message {
  std::int32_t timestep;
  std::int32_t size;
  float* data;
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 8 — Send-side encode times across wire formats",
      "per-encode wall time (ms, log-scale in the paper); ratios vs PBIO");

  bench::Reporter reporter("fig8_wire_formats");
  pbio::FormatRegistry registry;
  auto format = expect(
      registry.register_format(
          "Message",
          {{"timestep", "integer", 4, offsetof(Message, timestep)},
           {"size", "integer", 4, offsetof(Message, size)},
           {"data", "float[size]", 4, offsetof(Message, data)}},
          sizeof(Message)),
      "register");

  auto pbio_encoder = expect(pbio::Encoder::make(format), "pbio");
  auto xml_codec = expect(baseline::XmlWireCodec::make(format), "xml");
  auto cdr_codec = expect(baseline::CdrCodec::make(format), "cdr");

  // MPI arm: MPICH-1 usage for this message is a struct datatype for the
  // header plus a contiguous datatype for the payload, packed in sequence.
  auto header_type = expect(
      baseline::mpi::Datatype::create_struct(
          {{1, offsetof(Message, timestep),
            baseline::mpi::Datatype::basic(baseline::mpi::BasicType::kInt)},
           {1, offsetof(Message, size),
            baseline::mpi::Datatype::basic(baseline::mpi::BasicType::kInt)}}),
      "mpi header type");
  header_type.commit();

  std::printf("\n%-10s %12s %12s %12s %12s | %9s %9s %9s\n", "payload",
              "XML (ms)", "MPI (ms)", "CDR (ms)", "PBIO (ms)", "XML/PBIO",
              "MPI/PBIO", "CDR/PBIO");

  const struct {
    const char* label;
    std::size_t bytes;  // "binary data size" of the paper's x axis
  } kSizes[] = {{"100b", 100}, {"1Kb", 1000}, {"10Kb", 10000}, {"100Kb", 100000}};

  for (const auto& size : kSizes) {
    std::size_t n = (size.bytes - 8) / sizeof(float);
    std::vector<float> payload(n);
    for (std::size_t i = 0; i < n; ++i)
      payload[i] = 12.345f + static_cast<float>(i % 1000) * 0.001f;
    Message message{9999, static_cast<std::int32_t>(n), payload.data()};

    int iters = size.bytes >= 100000 ? 32 : 256;

    // XML text encode.
    std::string xml_out;
    double xml_ms = bench::encode_ms(
        [&] { check(xml_codec.encode(&message, xml_out), "xml encode"); },
        iters / 4 + 1);

    // MPI pack: header + payload into a preallocated pack buffer.
    auto float_type = baseline::mpi::Datatype::contiguous(
        n, baseline::mpi::Datatype::basic(baseline::mpi::BasicType::kFloat));
    float_type.commit();
    std::vector<std::uint8_t> pack_buffer(header_type.size() +
                                          float_type.size());
    double mpi_ms = bench::encode_ms(
        [&] {
          std::size_t position = 0;
          check(baseline::mpi::pack(&message, 1, header_type,
                                    pack_buffer.data(), pack_buffer.size(),
                                    position),
                "mpi pack header");
          check(baseline::mpi::pack(payload.data(), 1, float_type,
                                    pack_buffer.data(), pack_buffer.size(),
                                    position),
                "mpi pack data");
        },
        iters);

    // CDR encode.
    double cdr_ms = bench::encode_ms(
        [&] { (void)expect(cdr_codec.encode(&message), "cdr encode"); }, iters);

    // PBIO encode.
    ByteBuffer buffer;
    double pbio_ms = bench::encode_ms(
        [&] {
          buffer.clear();
          check(pbio_encoder.encode(&message, buffer), "pbio encode");
        },
        iters);

    std::printf("%-10s %12.6f %12.6f %12.6f %12.6f | %9.1f %9.2f %9.2f\n",
                size.label, xml_ms, mpi_ms, cdr_ms, pbio_ms, xml_ms / pbio_ms,
                mpi_ms / pbio_ms, cdr_ms / pbio_ms);
    reporter.add("encode-xml", size.label, xml_ms);
    reporter.add("encode-mpi", size.label, mpi_ms);
    reporter.add("encode-cdr", size.label, cdr_ms);
    reporter.add("encode-pbio", size.label, pbio_ms);
  }

  // Receive side (§4.1: "XML suffers from the necessity of performing
  // string conversions on BOTH sending and receiving ends").
  std::printf("\n%-10s %12s %12s %12s %12s | %9s\n", "payload",
              "XML (ms)", "MPI (ms)", "CDR (ms)", "PBIO (ms)", "XML/PBIO");
  pbio::Decoder decoder(registry);
  for (const auto& size : kSizes) {
    std::size_t n = (size.bytes - 8) / sizeof(float);
    std::vector<float> payload(n, 12.345f);
    Message message{9999, static_cast<std::int32_t>(n), payload.data()};
    int iters = size.bytes >= 100000 ? 32 : 256;

    auto xml_text = expect(xml_codec.encode(&message), "xml");
    auto cdr_bytes = expect(cdr_codec.encode(&message), "cdr");
    auto pbio_bytes = expect(pbio_encoder.encode_to_vector(&message), "pbio");
    auto float_type = baseline::mpi::Datatype::contiguous(
        n, baseline::mpi::Datatype::basic(baseline::mpi::BasicType::kFloat));
    float_type.commit();
    std::vector<std::uint8_t> pack_buffer(header_type.size() +
                                          float_type.size());
    {
      std::size_t position = 0;
      check(baseline::mpi::pack(&message, 1, header_type, pack_buffer.data(),
                                pack_buffer.size(), position),
            "pack");
      check(baseline::mpi::pack(payload.data(), 1, float_type,
                                pack_buffer.data(), pack_buffer.size(),
                                position),
            "pack");
    }

    Arena arena;
    Message out{};
    std::vector<float> sink(n);
    double xml_ms = bench::encode_ms(
        [&] {
          arena.reset();
          check(xml_codec.decode(xml_text, &out, arena), "xml decode");
        },
        iters / 4 + 1);
    double mpi_ms = bench::encode_ms(
        [&] {
          std::size_t position = 0;
          Message header{};
          check(baseline::mpi::unpack(pack_buffer.data(), pack_buffer.size(),
                                      position, &header, 1, header_type),
                "unpack");
          check(baseline::mpi::unpack(pack_buffer.data(), pack_buffer.size(),
                                      position, sink.data(), 1, float_type),
                "unpack");
        },
        iters);
    double cdr_ms = bench::encode_ms(
        [&] {
          arena.reset();
          check(cdr_codec.decode(cdr_bytes, &out, arena), "cdr decode");
        },
        iters);
    double pbio_ms = bench::encode_ms(
        [&] {
          arena.reset();
          check(decoder.decode(pbio_bytes, *format, &out, arena), "pbio decode");
        },
        iters);
    std::printf("%-10s %12.6f %12.6f %12.6f %12.6f | %9.1f\n", size.label,
                xml_ms, mpi_ms, cdr_ms, pbio_ms, xml_ms / pbio_ms);
    reporter.add("decode-xml", size.label, xml_ms);
    reporter.add("decode-mpi", size.label, mpi_ms);
    reporter.add("decode-cdr", size.label, cdr_ms);
    reporter.add("decode-pbio", size.label, pbio_ms);
  }
  std::printf("(receive side; PBIO decode here copies out — in-place decode"
              " is cheaper still, see bench_ablation_decode)\n");

  std::printf(
      "\npaper reference: XML sits 2-4 orders of magnitude above the binary\n"
      "mechanisms at every size; MPICH is ~10x PBIO near 100 bytes; the\n"
      "binary mechanisms converge at large sizes where memcpy dominates.\n"
      "known deviation: our mpilite baseline implements MPICH's dataloop\n"
      "*algorithm* but not its layering/interpreter constant overhead, so\n"
      "its small-message penalty vs PBIO is much smaller than the paper's\n"
      "~10x; the XML-vs-binary gap (the paper's headline claim) and the\n"
      "large-size convergence of the binary mechanisms are reproduced.\n");
  return 0;
}
