// SIMD data-path harness (DESIGN.md §5i): two curves into BENCH_simd.json.
//
// 1. Kernel throughput — the width-specialized swap kernels and the fused
//    swap+widen/narrow kernels, vector path vs the scalar fallback, MB/s
//    over a span large enough that dispatch cost vanishes. Outputs are
//    verified identical between the two paths before timing.
// 2. Batch-decode scaling — BatchDecoder over a window of cross-endian
//    records at 1/2/4/8 workers, records/s and speedup vs 1 worker. The
//    curve is honest for the machine it runs on: on a single-core host
//    the >1-worker rows measure scheduling overhead, not speedup, and the
//    printed core count says so.
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/arena.hpp"
#include "pbio/batch.hpp"
#include "pbio/decode.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/kernels.hpp"
#include "pbio/registry.hpp"
#include "pbio/simd.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct Telemetry {
  std::int32_t timestep;
  std::int32_t size;
  float* data;
};

// Kernel spans at three residency tiers: L1-resident (where the speedup
// is ALU-bound and the vector units show their real ratio), L2-resident,
// and streaming (where both paths converge on memory bandwidth).
constexpr std::size_t kSpanBytes = 1u << 20;  // largest working set
constexpr std::size_t kSpanSizes[] = {16u << 10, 256u << 10, 1u << 20};
constexpr const char* kSpanNames[] = {"16K", "256K", "1M"};

// Time one kernel invocation over the span, return MB/s. Iteration
// count scales inversely with span size so every tier accumulates
// comparable wall time.
template <typename Fn>
double kernel_mb_s(Fn&& fn, std::size_t bytes) {
  int iters = bench::smoke()
                  ? 2
                  : static_cast<int>(64 * (kSpanBytes / bytes));
  double ms = bench::encode_ms(fn, iters);
  return bytes / 1e6 / (ms / 1000.0);
}

}  // namespace

int main() {
  bench::print_header(
      "SIMD data path — kernel throughput and batch-decode scaling",
      "swap/fused kernels vector vs scalar (MB/s); BatchDecoder scaling\n"
      "at 1/2/4/8 workers over cross-endian records");

  bench::Reporter reporter("simd");
  const bool simd_on = pbio::simd::enabled();
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("simd backend: %s (%s), hardware threads: %u\n\n",
              pbio::simd::backend(), simd_on ? "enabled" : "disabled", cores);
  reporter.add("env", "hardware_threads", cores, "n");

  // --- 1. Kernel throughput -------------------------------------------
  std::vector<std::uint8_t> src(kSpanBytes);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  std::vector<std::uint8_t> dst_simd(2 * kSpanBytes);
  std::vector<std::uint8_t> dst_scalar(2 * kSpanBytes);

  struct KernelRow {
    const char* name;
    double dst_ratio;  // bytes written per byte read
    void (*run)(std::uint8_t*, const std::uint8_t*, std::size_t);
  };
  const KernelRow rows[] = {
      {"swap2", 1.0,
       [](std::uint8_t* d, const std::uint8_t* s, std::size_t bytes) {
         pbio::swap_elements(d, s, bytes / 2, 2);
       }},
      {"swap4", 1.0,
       [](std::uint8_t* d, const std::uint8_t* s, std::size_t bytes) {
         pbio::swap_elements(d, s, bytes / 4, 4);
       }},
      {"swap8", 1.0,
       [](std::uint8_t* d, const std::uint8_t* s, std::size_t bytes) {
         pbio::swap_elements(d, s, bytes / 8, 8);
       }},
      {"fuse_i32_i64", 2.0,
       [](std::uint8_t* d, const std::uint8_t* s, std::size_t bytes) {
         pbio::convert_fused(d, pbio::FusedKind::kWidenI32ToI64, s, bytes / 4,
                             /*swap_src=*/true);
       }},
      {"fuse_f32_f64", 2.0,
       [](std::uint8_t* d, const std::uint8_t* s, std::size_t bytes) {
         pbio::convert_fused(d, pbio::FusedKind::kWidenF32ToF64, s, bytes / 4,
                             /*swap_src=*/true);
       }},
      {"fuse_64_32", 0.5,
       [](std::uint8_t* d, const std::uint8_t* s, std::size_t bytes) {
         pbio::convert_fused(d, pbio::FusedKind::kNarrow64To32, s, bytes / 8,
                             /*swap_src=*/true);
       }},
  };

  std::printf("%-14s %6s %14s %14s %10s\n", "kernel", "span", "simd (MB/s)",
              "scalar (MB/s)", "speedup");
  for (const KernelRow& row : rows) {
    for (std::size_t si = 0; si < std::size(kSpanSizes); ++si) {
      const std::size_t span = kSpanSizes[si];
      const auto dst_bytes =
          static_cast<std::size_t>(span * row.dst_ratio);
      // Bit-identity first, then timing.
      pbio::simd::set_enabled(true);
      row.run(dst_simd.data(), src.data(), span);
      pbio::simd::set_enabled(false);
      row.run(dst_scalar.data(), src.data(), span);
      if (std::memcmp(dst_simd.data(), dst_scalar.data(), dst_bytes) != 0) {
        std::fprintf(stderr, "FATAL: %s simd/scalar outputs differ\n",
                     row.name);
        return 1;
      }

      pbio::simd::set_enabled(true);
      double simd_mb_s = kernel_mb_s(
          [&] { row.run(dst_simd.data(), src.data(), span); }, span);
      pbio::simd::set_enabled(false);
      double scalar_mb_s = kernel_mb_s(
          [&] { row.run(dst_scalar.data(), src.data(), span); }, span);
      pbio::simd::set_enabled(simd_on);

      char point[48];
      std::snprintf(point, sizeof(point), "%s/%s", row.name, kSpanNames[si]);
      std::printf("%-14s %6s %14.0f %14.0f %9.2fx\n", row.name,
                  kSpanNames[si], simd_mb_s, scalar_mb_s,
                  simd_mb_s / scalar_mb_s);
      reporter.add("kernel_simd", point, simd_mb_s, "MB/s");
      reporter.add("kernel_scalar", point, scalar_mb_s, "MB/s");
      reporter.add("kernel_speedup", point, simd_mb_s / scalar_mb_s, "x");
    }
  }

  // --- 2. Batch-decode scaling ----------------------------------------
  pbio::FormatRegistry registry;
  std::vector<pbio::IOField> fields = {
      {"timestep", "integer", 4, offsetof(Telemetry, timestep)},
      {"size", "integer", 4, offsetof(Telemetry, size)},
      {"data", "float[size]", 4, offsetof(Telemetry, data)},
  };
  auto receiver =
      expect(registry.register_format("Telemetry", fields, sizeof(Telemetry)),
             "receiver");
  auto sender = expect(
      registry.adopt(expect(pbio::Format::make("Telemetry", fields,
                                               sizeof(Telemetry),
                                               pbio::ArchInfo::big_endian_64()),
                            "sender format")),
      "adopt");
  pbio::Decoder decoder(registry);

  const int elems = bench::smoke() ? 64 : 4096;
  const std::size_t batch = bench::smoke() ? 32 : 256;
  std::vector<std::vector<std::uint8_t>> records;
  std::vector<std::span<const std::uint8_t>> spans;
  for (std::size_t r = 0; r < batch; ++r) {
    pbio::RecordBuilder builder(sender);
    check(builder.set_int("timestep", static_cast<int>(r)), "timestep");
    std::vector<double> payload(elems);
    for (int i = 0; i < elems; ++i) payload[i] = 0.25 * i - r;
    check(builder.set_float_array("data", payload), "payload");
    records.push_back(expect(builder.build(), "build"));
    spans.emplace_back(records.back().data(), records.back().size());
  }
  const double batch_mb =
      batch * (sizeof(Telemetry) + sizeof(float) * elems) / 1e6;

  const std::size_t stride =
      (sizeof(Telemetry) + alignof(std::max_align_t) - 1) /
      alignof(std::max_align_t) * alignof(std::max_align_t);
  std::vector<std::max_align_t> outs(
      (batch * stride + sizeof(std::max_align_t) - 1) /
      sizeof(std::max_align_t));

  std::printf("\n%-10s %14s %14s %10s\n", "workers", "batch (ms)",
              "MB/s", "speedup");
  double base_ms = 0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    pbio::BatchDecoder pool(decoder, workers);
    // Sequential-oracle proof on the first worker count only (decode
    // results are deterministic; one check covers them all).
    if (workers == 1) {
      Arena oracle_arena;
      Telemetry oracle{};
      check(decoder.decode(spans[0], *receiver, &oracle, oracle_arena),
            "oracle");
      check(pool.decode_batch(spans, *receiver, outs.data(), stride),
            "warm batch");
      const auto* first = reinterpret_cast<const Telemetry*>(outs.data());
      if (first->timestep != oracle.timestep || first->size != oracle.size) {
        std::fprintf(stderr, "FATAL: batch decode diverged from oracle\n");
        return 1;
      }
    }
    int iters = bench::smoke() ? 2 : 24;
    double ms = bench::encode_ms(
        [&] {
          check(pool.decode_batch(spans, *receiver, outs.data(), stride),
                "batch");
        },
        iters);
    if (workers == 1) base_ms = ms;
    char label[24];
    std::snprintf(label, sizeof(label), "workers=%zu", workers);
    std::printf("%-10zu %14.3f %14.0f %9.2fx\n", workers, ms,
                batch_mb / (ms / 1000.0), base_ms / ms);
    reporter.add("batch_decode_ms", label, ms);
    reporter.add("batch_decode_speedup", label, base_ms / ms, "x");
  }

  std::printf(
      "\ninterpretation: the kernel rows isolate the vector units (same\n"
      "plan, same bytes, only the inner loop changes); the worker curve\n"
      "shows how far frame-parallel decode scales on THIS machine — on a\n"
      "single hardware thread it can only measure pool overhead.\n");
  return 0;
}
