// Recovery-latency harness for resumable sessions.
//
// The resumption layer's pitch is that a transport death costs one
// reconnect handshake plus the replay of unacked frames — not a fresh
// metadata exchange. This harness measures both ends of that claim over
// real TCP on localhost:
//
//   connect_to_first_record    cold start: listen + dial + handshake +
//                              in-band announcement + first record
//   reconnect_to_first_record  established session, transport killed at
//                              byte 0 of the next send: redial +
//                              handshake + replay + first record after
//   reconnect_overhead_ratio   reconnect / connect — how much cheaper
//                              resuming is than starting over
//
// Everything is single-threaded and deterministic: localhost TCP connect
// completes against the listener backlog without a concurrent accept, so
// the harness dials, then accepts, then drains in sequence.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "net/faults.hpp"
#include "pbio/dynrecord.hpp"
#include "session/session.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct Sample {
  std::int32_t id;
  double value;
};

pbio::FormatPtr sample_format(pbio::FormatRegistry& registry) {
  return expect(registry.register_format(
                    "Sample",
                    {{"id", "integer", 4, offsetof(Sample, id)},
                     {"value", "float", 8, offsetof(Sample, value)}},
                    sizeof(Sample)),
                "register Sample");
}

session::SessionOptions bench_options() {
  session::SessionOptions options;
  options.resumable = true;
  options.heartbeat_interval_ms = 60000;
  options.liveness_deadline_ms = 60000;
  options.reconnect_backoff.initial_backoff_ms = 1;
  options.reconnect_backoff.max_backoff_ms = 5;
  return options;
}

void expect_record(session::MessageSession& receiver) {
  auto incoming = receiver.receive(10000);
  check(incoming.status(), "receive record");
}

// Cold path: everything from "no sockets exist" to the first decoded
// record on the receiving side.
double connect_to_first_record_ms() {
  Stopwatch watch;
  pbio::FormatRegistry registry_a, registry_b;
  auto pair = expect(
      session::make_session_tcp(registry_a, registry_b, bench_options()),
      "make_session_tcp");
  auto encoder =
      expect(pbio::Encoder::make(sample_format(registry_a)), "encoder");
  Sample record{1, 0.5};
  check(pair.a.send(encoder, &record), "send");
  expect_record(pair.b);
  return watch.elapsed_ms();
}

// Warm path: the session already carries the format; the transport dies
// at byte 0 of the next send and the clock runs until the record that
// died on the wire is delivered through the resumed transport.
double reconnect_to_first_record_ms() {
  pbio::FormatRegistry registry_a, registry_b;
  auto pair = expect(
      session::make_session_tcp(registry_a, registry_b, bench_options()),
      "make_session_tcp");
  auto encoder =
      expect(pbio::Encoder::make(sample_format(registry_a)), "encoder");
  Sample record{1, 0.5};
  check(pair.a.send(encoder, &record), "warm send");
  expect_record(pair.b);

  Stopwatch watch;
  net::arm_channel(pair.a.channel(), net::FaultAction::kill_after(0));
  record.id = 2;
  check(pair.a.send(encoder, &record), "send across the kill");
  auto resumed = expect(pair.listener.accept(5000), "re-accept");
  pair.b.attach(std::move(resumed));
  expect_record(pair.b);
  double elapsed = watch.elapsed_ms();

  if (pair.a.transport_losses() == 0) {
    std::fprintf(stderr, "FATAL injected kill never fired\n");
    std::abort();
  }
  return elapsed;
}

template <typename Fn>
double best_of(Fn&& fn, int repeats) {
  double best = fn();
  for (int i = 1; i < repeats; ++i) best = std::min(best, fn());
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Recovery: reconnect-to-first-record latency",
      "Resumable sessions: cold connect versus transparent resume");

  const int repeats = bench::smoke() ? 1 : 15;
  const double connect_ms = best_of(connect_to_first_record_ms, repeats);
  const double reconnect_ms = best_of(reconnect_to_first_record_ms, repeats);
  const double ratio = reconnect_ms / connect_ms;

  std::printf("%-28s %10.3f ms\n", "connect_to_first_record", connect_ms);
  std::printf("%-28s %10.3f ms\n", "reconnect_to_first_record", reconnect_ms);
  std::printf("%-28s %10.3f x\n", "reconnect_overhead_ratio", ratio);
  bench::print_note(
      "reconnect includes redial, resume handshake and frame replay; "
      "best-of-R over localhost TCP");

  bench::Reporter reporter("recovery");
  reporter.add("tcp-localhost", "connect_to_first_record", connect_ms);
  reporter.add("tcp-localhost", "reconnect_to_first_record", reconnect_ms);
  reporter.add("tcp-localhost", "reconnect_overhead_ratio", ratio, "ratio");
  return 0;
}
