// Backpressure harness for the flow-controlled session.
//
// A fast sender pushes records through a flow-controlled socketpair
// session at a receiver that drains at a controlled rate. The receiver's
// credit grants (tag 0x08) gate the sender's bounded queue, so a slow
// drain turns into sender-side overload and the configured
// SlowConsumerPolicy fires. The harness prices the outcome per policy:
//
//   throughput     sender-side records/s (time until the last send call
//                  returns) per policy x receiver drain rate — the cost a
//                  producer pays for a consumer that cannot keep up
//   queue-cost     the spill-to-log overhead: in-memory queue (block
//                  policy) vs durable spill (kSpillToLog) under the same
//                  overload — what keeping the producer unblocked costs
//                  when the overflow is paid to disk instead of to time
//   counters       records spilled/shed, time blocked, queue high-water —
//                  the bounded-memory evidence behind the rates
//
// Two threads (producer and drainer), deterministic policies; durable
// directories live under /tmp and are removed on exit. Spill runs use
// FsyncPolicy::kNone so the number prices the spill path, not the disk.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "session/session.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct Sample {
  std::int32_t id;
  std::int32_t n;
  float* series;
};

constexpr std::size_t kSeriesLength = 32;

pbio::FormatPtr sample_format(pbio::FormatRegistry& registry) {
  return registry
      .register_format(
          "Sample",
          {{"id", "integer", 4, offsetof(Sample, id)},
           {"n", "integer", 4, offsetof(Sample, n)},
           {"series", "float[n]", 4, offsetof(Sample, series)}},
          sizeof(Sample))
      .value();
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xmit_bench_bp_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

const char* policy_name(session::SlowConsumerPolicy policy) {
  switch (policy) {
    case session::SlowConsumerPolicy::kBlockWithDeadline: return "block";
    case session::SlowConsumerPolicy::kSpillToLog: return "spill";
    case session::SlowConsumerPolicy::kShedOldest: return "shed";
    case session::SlowConsumerPolicy::kDisconnect: return "disconnect";
  }
  return "?";
}

struct RunResult {
  double sender_records_per_s = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t received = 0;
  std::size_t spilled = 0;
  std::size_t shed = 0;
  double block_ms = 0;
  std::size_t queue_peak_records = 0;
  std::size_t queue_peak_bytes = 0;
};

// One overload run: `count` sends against a receiver that sleeps
// `drain_delay_us` per record. Throughput is sender-side — the clock
// stops when the last send() returns, not when the last record lands.
RunResult run_overload(session::SlowConsumerPolicy policy,
                       int drain_delay_us, std::uint64_t count) {
  pbio::FormatRegistry sender_registry, receiver_registry;
  auto pipe = expect(net::Channel::pipe(), "socketpair");

  TempDir dir;
  session::SessionOptions sender_options;
  sender_options.flow_control = true;
  sender_options.slow_consumer = policy;
  sender_options.send_queue_records = 64;
  sender_options.send_queue_bytes = 1u << 20;
  sender_options.send_block_deadline_ms = 2000;
  if (policy == session::SlowConsumerPolicy::kSpillToLog) {
    sender_options.durable_dir = dir.path();
    sender_options.durable_fsync = storage::FsyncPolicy::kNone;
  }
  session::SessionOptions receiver_options;
  receiver_options.flow_control = true;
  receiver_options.receive_window_records = 32;

  session::MessageSession sender(std::move(pipe.first), sender_registry,
                                 sender_options);
  session::MessageSession receiver(std::move(pipe.second), receiver_registry,
                                   receiver_options);

  std::atomic<std::size_t> received{0};
  std::atomic<bool> producer_done{false};
  std::thread drainer([&] {
    for (;;) {
      auto incoming = receiver.receive_view(200);
      if (incoming.is_ok()) {
        received.fetch_add(1, std::memory_order_relaxed);
        if (drain_delay_us > 0)
          std::this_thread::sleep_for(
              std::chrono::microseconds(drain_delay_us));
        continue;
      }
      const ErrorCode code = incoming.code();
      if (code == ErrorCode::kNotFound) break;  // producer closed
      if (code == ErrorCode::kDataLoss) continue;  // shed gap, reported once
      if (code == ErrorCode::kTimeout && producer_done.load()) break;
      if (code != ErrorCode::kTimeout) break;  // poisoned / transport error
    }
  });

  auto format = sample_format(sender_registry);
  auto encoder = expect(pbio::Encoder::make(format), "encoder");
  std::vector<float> series(kSeriesLength, 1.0f);
  Sample record{0, static_cast<std::int32_t>(kSeriesLength), series.data()};

  RunResult result;
  Stopwatch watch;
  for (std::uint64_t i = 0; i < count; ++i) {
    record.id = static_cast<std::int32_t>(i);
    auto sent = sender.send(encoder, &record);
    if (sent.is_ok()) {
      ++result.accepted;
    } else {
      ++result.rejected;
      // kDisconnect severed the transport: nothing more will be accepted.
      if (policy == session::SlowConsumerPolicy::kDisconnect) break;
    }
  }
  result.sender_records_per_s =
      static_cast<double>(result.accepted) / watch.elapsed_s();

  // Drain phase: sends are queued/spilled, and only the sender's own
  // calls pump the queue — poll until the receiver's count plateaus.
  std::size_t plateau = received.load();
  int stable_rounds = 0;
  for (int i = 0; i < 500 && stable_rounds < 10; ++i) {
    [[maybe_unused]] auto pumped = sender.receive_view(20);
    const std::size_t now = received.load();
    stable_rounds = (now == plateau && sender.send_queue_depth() == 0)
                        ? stable_rounds + 1
                        : 0;
    plateau = now;
  }
  producer_done.store(true);
  sender.close();
  drainer.join();

  result.received = received.load();
  result.spilled = sender.records_spilled();
  result.shed = sender.records_shed();
  result.block_ms = sender.send_block_ms();
  result.queue_peak_records = sender.send_queue_depth_peak();
  result.queue_peak_bytes = sender.send_queue_bytes_peak();
  receiver.close();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Backpressure: sender throughput under a slow consumer",
      "Flow-controlled session, per SlowConsumerPolicy: what overload "
      "costs the producer, and what spilling to the log buys");

  const bool smoke = bench::smoke();
  const std::uint64_t fast_count = smoke ? 48 : 4000;
  const std::uint64_t slow_count = smoke ? 32 : 1200;
  const int slow_delay_us = smoke ? 200 : 500;

  bench::Reporter reporter("backpressure");

  const session::SlowConsumerPolicy policies[] = {
      session::SlowConsumerPolicy::kBlockWithDeadline,
      session::SlowConsumerPolicy::kSpillToLog,
      session::SlowConsumerPolicy::kShedOldest,
      session::SlowConsumerPolicy::kDisconnect,
  };
  double in_memory_slow = 0, spill_slow = 0;
  for (const auto policy : policies) {
    struct DrainPoint {
      const char* name;
      int delay_us;
      std::uint64_t count;
    };
    const DrainPoint points[] = {
        {"fast-drain", 0, fast_count},
        {"slow-drain", slow_delay_us, slow_count},
    };
    for (const DrainPoint& point : points) {
      const RunResult run = run_overload(policy, point.delay_us, point.count);
      std::printf(
          "%-10s %-10s %10.0f records/s  accepted=%zu rejected=%zu "
          "received=%zu spilled=%zu shed=%zu blocked=%.1fms "
          "queue-peak=%zu/%zuB\n",
          policy_name(policy), point.name, run.sender_records_per_s,
          run.accepted, run.rejected, run.received, run.spilled, run.shed,
          run.block_ms, run.queue_peak_records, run.queue_peak_bytes);
      const std::string series = policy_name(policy);
      reporter.add(series, std::string(point.name) + "_records_per_s",
                   run.sender_records_per_s, "records/s");
      reporter.add(series, std::string(point.name) + "_blocked_ms",
                   run.block_ms);
      if (policy == session::SlowConsumerPolicy::kSpillToLog)
        reporter.add(series, std::string(point.name) + "_spilled",
                     static_cast<double>(run.spilled), "records");
      if (policy == session::SlowConsumerPolicy::kShedOldest)
        reporter.add(series, std::string(point.name) + "_shed",
                     static_cast<double>(run.shed), "records");
      if (policy == session::SlowConsumerPolicy::kBlockWithDeadline &&
          point.delay_us > 0)
        in_memory_slow = run.sender_records_per_s;
      if (policy == session::SlowConsumerPolicy::kSpillToLog &&
          point.delay_us > 0)
        spill_slow = run.sender_records_per_s;
    }
  }

  // The queue-cost pair reads the two slow-drain runs side by side: the
  // in-memory queue makes the producer wait for credit, the durable spill
  // keeps it running and pays the overflow to disk.
  reporter.add("queue-cost", "in_memory_records_per_s", in_memory_slow,
               "records/s");
  reporter.add("queue-cost", "spill_to_log_records_per_s", spill_slow,
               "records/s");
  if (in_memory_slow > 0)
    std::printf("queue-cost: in-memory %0.f records/s vs spill-to-log "
                "%0.f records/s (x%.2f)\n",
                in_memory_slow, spill_slow,
                spill_slow / in_memory_slow);
  bench::print_note(
      "throughput is sender-side (until the last send returns); spill "
      "runs fsync=none so the delta prices the spill path, not the disk");
  return 0;
}
