// Figure 3: format registration costs using PBIO vs XMIT, on the
// proof-of-concept structures (paper §4.4).
//
// Paper series: structures of 32 [72], 52 [104] and 180 [268] bytes
// (structure size [encoded size]); XMIT registration = parse the XML
// format description + register with PBIO; RDM = XMIT time / PBIO time.
// The paper reports RDM ~1.9-2.1, roughly constant in structure size
// because the 180-byte structure is built by *composing* other structures
// rather than by adding primitive fields.
#include <cstddef>
#include <cstdint>

#include "bench_common.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "xmit/xmit.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

// --- 32-byte structure: a handful of mixed scalars --------------------
struct Small {
  char* tag;
  std::int32_t a;
  std::uint32_t b;
  double c;
  std::int32_t d;
};
static_assert(sizeof(Small) == 32);

const char* kSmallSchema = R"(
<xsd:complexType name="Small">
  <xsd:element name="tag" type="xsd:string" />
  <xsd:element name="a" type="xsd:integer" />
  <xsd:element name="b" type="xsd:unsignedInt" />
  <xsd:element name="c" type="xsd:double" />
  <xsd:element name="d" type="xsd:integer" />
</xsd:complexType>)";

std::vector<pbio::IOField> small_fields() {
  return {{"tag", "string", sizeof(char*), offsetof(Small, tag)},
          {"a", "integer", 4, offsetof(Small, a)},
          {"b", "unsigned integer", 4, offsetof(Small, b)},
          {"c", "float", 8, offsetof(Small, c)},
          {"d", "integer", 4, offsetof(Small, d)}};
}

// --- 52-byte structure: flat primitives -------------------------------
struct Medium {
  std::int32_t id;
  float m[9];
  std::int32_t x, y, z;
};
static_assert(sizeof(Medium) == 52);

const char* kMediumSchema = R"(
<xsd:complexType name="Medium">
  <xsd:element name="id" type="xsd:integer" />
  <xsd:element name="m" type="xsd:float" maxOccurs="9" />
  <xsd:element name="x" type="xsd:integer" />
  <xsd:element name="y" type="xsd:integer" />
  <xsd:element name="z" type="xsd:integer" />
</xsd:complexType>)";

std::vector<pbio::IOField> medium_fields() {
  return {{"id", "integer", 4, offsetof(Medium, id)},
          {"m", "float[9]", 4, offsetof(Medium, m)},
          {"x", "integer", 4, offsetof(Medium, x)},
          {"y", "integer", 4, offsetof(Medium, y)},
          {"z", "integer", 4, offsetof(Medium, z)}};
}

// --- 180-byte structure: built by composing other structures ----------
struct Point {
  float x, y;
};
struct Rect {
  Point lo, hi;
};
struct Header {
  std::int32_t id, flags;
  float t;
};
struct Big {
  Header h;
  Rect r[10];
  std::int32_t tail;
  float extra;
};
static_assert(sizeof(Big) == 180);

const char* kBigSchema = R"(
<s>
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:float" />
    <xsd:element name="y" type="xsd:float" />
  </xsd:complexType>
  <xsd:complexType name="Rect">
    <xsd:element name="lo" type="Point" />
    <xsd:element name="hi" type="Point" />
  </xsd:complexType>
  <xsd:complexType name="Header">
    <xsd:element name="id" type="xsd:integer" />
    <xsd:element name="flags" type="xsd:integer" />
    <xsd:element name="t" type="xsd:float" />
  </xsd:complexType>
  <xsd:complexType name="Big">
    <xsd:element name="h" type="Header" />
    <xsd:element name="r" type="Rect" maxOccurs="10" />
    <xsd:element name="tail" type="xsd:integer" />
    <xsd:element name="extra" type="xsd:float" />
  </xsd:complexType>
</s>)";

// Registers Big and its compiled-in dependencies, PBIO style.
void register_big(pbio::FormatRegistry& registry) {
  check(registry
            .register_format("Point",
                             {{"x", "float", 4, offsetof(Point, x)},
                              {"y", "float", 4, offsetof(Point, y)}},
                             sizeof(Point))
            .status(),
        "register Point");
  check(registry
            .register_format("Rect",
                             {{"lo", "Point", sizeof(Point), offsetof(Rect, lo)},
                              {"hi", "Point", sizeof(Point), offsetof(Rect, hi)}},
                             sizeof(Rect))
            .status(),
        "register Rect");
  check(registry
            .register_format("Header",
                             {{"id", "integer", 4, offsetof(Header, id)},
                              {"flags", "integer", 4, offsetof(Header, flags)},
                              {"t", "float", 4, offsetof(Header, t)}},
                             sizeof(Header))
            .status(),
        "register Header");
  check(registry
            .register_format("Big",
                             {{"h", "Header", sizeof(Header), offsetof(Big, h)},
                              {"r", "Rect[10]", sizeof(Rect), offsetof(Big, r)},
                              {"tail", "integer", 4, offsetof(Big, tail)},
                              {"extra", "float", 4, offsetof(Big, extra)}},
                             sizeof(Big))
            .status(),
        "register Big");
}

struct Row {
  const char* name;
  std::size_t struct_size;
  std::size_t encoded_size;
  std::size_t field_count;  // flattened leaves, the complexity driver
  double pbio_ms;
  double xmit_ms;
};

// Encoded size of a representative record, for the "[encoded size]" label.
std::size_t encoded_size_of(const pbio::FormatRegistry& registry,
                            const char* name, const void* record) {
  auto format = expect(registry.by_name(name), "format lookup");
  auto encoder = expect(pbio::Encoder::make(format), "encoder");
  return expect(encoder.encoded_size(record), "encoded size");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3 — Format registration costs using PBIO and XMIT",
      "proof-of-concept structures; RDM = XMIT time / PBIO time\n"
      "(XMIT time = parse XML description + translate + register with\n"
      "PBIO, matching the paper's definition; document fetch is excluded\n"
      "here and measured in bench_ablation_registration)");

  bench::Reporter reporter("fig3_registration");
  std::vector<Row> rows;

  // -- Small ------------------------------------------------------------
  {
    double pbio_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      check(registry.register_format("Small", small_fields(), sizeof(Small))
                .status(),
            "register Small");
    });
    double xmit_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      toolkit::Xmit xmit(registry);
      check(xmit.load_text(kSmallSchema, "small"), "xmit Small");
    });
    char tag[] = "abc";
    Small sample{tag, 1, 2, 3.0, 4};
    pbio::FormatRegistry registry;
    (void)registry.register_format("Small", small_fields(), sizeof(Small));
    rows.push_back({"Small", sizeof(Small),
                    encoded_size_of(registry, "Small", &sample), 5, pbio_ms,
                    xmit_ms});
  }

  // -- Medium -----------------------------------------------------------
  {
    double pbio_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      check(registry.register_format("Medium", medium_fields(), sizeof(Medium))
                .status(),
            "register Medium");
    });
    double xmit_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      toolkit::Xmit xmit(registry);
      check(xmit.load_text(kMediumSchema, "medium"), "xmit Medium");
    });
    Medium sample{};
    pbio::FormatRegistry registry;
    (void)registry.register_format("Medium", medium_fields(), sizeof(Medium));
    rows.push_back({"Medium", sizeof(Medium),
                    encoded_size_of(registry, "Medium", &sample), 5, pbio_ms,
                    xmit_ms});
  }

  // -- Big (composed) -----------------------------------------------------
  {
    double pbio_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      register_big(registry);
    });
    double xmit_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      toolkit::Xmit xmit(registry);
      check(xmit.load_text(kBigSchema, "big"), "xmit Big");
    });
    Big sample{};
    pbio::FormatRegistry registry;
    register_big(registry);
    auto format = expect(registry.by_name("Big"), "Big");
    rows.push_back({"Big", sizeof(Big), encoded_size_of(registry, "Big", &sample),
                    format->flat_fields().size(), pbio_ms, xmit_ms});
  }

  std::printf("\n%-8s %10s %14s %8s %12s %12s %7s\n", "struct",
              "size (B)", "encoded (B)", "leaves", "PBIO (ms)", "XMIT (ms)",
              "RDM");
  for (const auto& row : rows) {
    std::printf("%-8s %10zu %14zu %8zu %12.4f %12.4f %7.2f\n", row.name,
                row.struct_size, row.encoded_size, row.field_count,
                row.pbio_ms, row.xmit_ms, row.xmit_ms / row.pbio_ms);
    reporter.add("pbio", row.name, row.pbio_ms);
    reporter.add("xmit", row.name, row.xmit_ms);
    reporter.add("rdm", row.name, row.xmit_ms / row.pbio_ms, "x");
  }
  std::printf(
      "\npaper reference: 32 [72] B -> RDM 2.05; 52 [104] B -> RDM 1.87;\n"
      "180 [268] B -> RDM 1.92 (roughly constant as size grows because the\n"
      "large structure composes other structures instead of adding fields)\n");
  return 0;
}
