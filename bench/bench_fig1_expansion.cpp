// Figure 1 and §4's application experiment: size expansion of the XML
// encoding and its end-to-end latency consequence.
//
// Paper claims reproduced here:
//   * "The XML expansion results in a considerably larger representation"
//     — Figure 1's SimpleData with 3355 floats is ~3x the binary record;
//   * §5: ASCII expansion factors of 6-8x are "not unusual" for general
//     records (measured here over several payload types);
//   * §4: "XML messages are 3 times larger ... resulting in the XML-based
//     solutions experiencing twice the latency than the solutions using
//     XMIT" — measured as round-trip encode+send+receive+decode over a
//     local channel.
#include <thread>
#include <vector>

#include "baseline/xmlwire.hpp"
#include "bench_common.hpp"
#include "common/arena.hpp"
#include "net/channel.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct SimpleData {
  std::int32_t timestep;
  std::int32_t size;
  float* data;
};

struct IntData {
  std::int32_t timestep;
  std::int32_t size;
  std::int64_t* data;
};

struct MixedRecord {
  std::int32_t id;
  std::int32_t flags;
  double t;
  float values[8];
  std::int32_t marks[6];
};

pbio::FormatPtr simple_format(pbio::FormatRegistry& registry) {
  return expect(registry.register_format(
                    "SimpleData",
                    {{"timestep", "integer", 4, offsetof(SimpleData, timestep)},
                     {"size", "integer", 4, offsetof(SimpleData, size)},
                     {"data", "float[size]", 4, offsetof(SimpleData, data)}},
                    sizeof(SimpleData)),
                "SimpleData format");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 1 / §4 — XML expansion factor and latency impact",
      "XML text size vs PBIO binary size; round-trip latency XML vs XMIT");

  bench::Reporter reporter("fig1_expansion");
  pbio::FormatRegistry registry;
  auto format = simple_format(registry);
  auto binary_encoder = expect(pbio::Encoder::make(format), "encoder");
  auto xml_codec = expect(baseline::XmlWireCodec::make(format), "codec");

  // --- Part 1: Figure 1's exact message ------------------------------
  std::vector<float> payload(3355, 12.345f);
  SimpleData message{9999, 3355, payload.data()};
  std::size_t binary_size = expect(binary_encoder.encoded_size(&message), "size");
  std::size_t xml_size = expect(xml_codec.encoded_size(&message), "size");
  std::printf("\nFigure 1 message (SimpleData, 3355 floats of 12.345):\n");
  std::printf("  binary record : %8zu bytes\n", binary_size);
  std::printf("  XML document  : %8zu bytes\n", xml_size);
  std::printf("  expansion     : %8.2fx   (paper: ~3x)\n",
              static_cast<double>(xml_size) / binary_size);
  reporter.add("figure1", "binary bytes", static_cast<double>(binary_size),
               "bytes");
  reporter.add("figure1", "xml bytes", static_cast<double>(xml_size), "bytes");
  reporter.add("figure1", "expansion",
               static_cast<double>(xml_size) / binary_size, "x");

  // --- Part 2: expansion factors across payload types ----------------
  std::printf("\nexpansion factor sweep (paper §5: 6-8x not unusual):\n");
  std::printf("  %-34s %10s %10s %8s\n", "payload", "binary", "XML", "factor");

  auto report = [&](const char* label, std::size_t binary,
                    std::size_t xml) {
    std::printf("  %-34s %10zu %10zu %8.2f\n", label, binary, xml,
                static_cast<double>(xml) / binary);
    reporter.add("expansion", label, static_cast<double>(xml) / binary, "x");
  };

  {
    // Long integers with large values: many digits per 8 binary bytes.
    pbio::FormatRegistry r2;
    auto int_format = expect(
        r2.register_format("IntData",
                           {{"timestep", "integer", 4, offsetof(IntData, timestep)},
                            {"size", "integer", 4, offsetof(IntData, size)},
                            {"data", "integer[size]", 8, offsetof(IntData, data)}},
                           sizeof(IntData)),
        "IntData");
    auto int_encoder = expect(pbio::Encoder::make(int_format), "encoder");
    auto int_codec = expect(baseline::XmlWireCodec::make(int_format), "codec");
    std::vector<std::int64_t> values(1000);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = 1000000007ll * static_cast<std::int64_t>(i + 1);
    IntData record{1, static_cast<std::int32_t>(values.size()), values.data()};
    report("1000 large 64-bit integers",
           expect(int_encoder.encoded_size(&record), "s"),
           expect(int_codec.encoded_size(&record), "s"));

    for (auto& v : values) v %= 10;  // single-digit values compress in text
    report("1000 small 64-bit integers",
           expect(int_encoder.encoded_size(&record), "s"),
           expect(int_codec.encoded_size(&record), "s"));
  }
  {
    // Full-precision floats: %.9g needs ~12 characters per 4 binary bytes.
    std::vector<float> noisy(1000);
    for (std::size_t i = 0; i < noisy.size(); ++i)
      noisy[i] = 0.1f + 1.0f / static_cast<float>(i + 3);
    SimpleData record{1, static_cast<std::int32_t>(noisy.size()), noisy.data()};
    report("1000 full-precision floats",
           expect(binary_encoder.encoded_size(&record), "s"),
           expect(xml_codec.encoded_size(&record), "s"));
  }
  {
    // Small mixed struct: tag overhead dominates.
    pbio::FormatRegistry r2;
    auto mixed_format = expect(
        r2.register_format(
            "MixedRecord",
            {{"id", "integer", 4, offsetof(MixedRecord, id)},
             {"flags", "integer", 4, offsetof(MixedRecord, flags)},
             {"t", "float", 8, offsetof(MixedRecord, t)},
             {"values", "float[8]", 4, offsetof(MixedRecord, values)},
             {"marks", "integer[6]", 4, offsetof(MixedRecord, marks)}},
            sizeof(MixedRecord)),
        "MixedRecord");
    auto mixed_encoder = expect(pbio::Encoder::make(mixed_format), "encoder");
    auto mixed_codec = expect(baseline::XmlWireCodec::make(mixed_format), "codec");
    MixedRecord record{7, 3, 0.333333333333, {}, {}};
    for (int i = 0; i < 8; ++i) record.values[i] = 1.0f / (i + 2);
    for (int i = 0; i < 6; ++i) record.marks[i] = 100000 + i;
    report("72-byte mixed struct",
           expect(mixed_encoder.encoded_size(&record), "s"),
           expect(mixed_codec.encoded_size(&record), "s"));
  }

  // --- Part 3: end-to-end latency, XML-at-its-best vs XMIT-at-its-worst
  // The paper's §4 comparison: the XMIT/binary arm pays encoding at the
  // sender AND decoding at the receiver; the XML arm pays *no* string
  // conversion at either end (sender ships pre-encoded text, receiver
  // consumes it as text) — its only cost is moving a ~6x larger message.
  // Even so handicapped, binary transport wins (paper: XML has ~2x the
  // latency, driven purely by the size expansion).
  std::printf(
      "\nround-trip latency, XML at its BEST vs XMIT at its WORST\n"
      "(binary arm: encode + send + receiver decode + ack;\n"
      " XML arm: send pre-encoded text + ack, zero conversion cost):\n");
  auto [client, server] = expect(net::Channel::pipe(), "pipe");

  // Receiver thread: PBIO records are decoded (XMIT's worst case); text
  // messages are consumed verbatim (XML's best case). PBIO records are
  // recognized by their magic bytes.
  pbio::Decoder decoder(registry);
  std::thread echo([&server, &decoder, &format] {
    Arena arena;
    SimpleData out{};
    for (;;) {
      auto bytes = server.receive(2000);
      if (!bytes.is_ok()) return;
      if (bytes.value().size() >= 4 && bytes.value()[0] == 'P' &&
          bytes.value()[1] == 'B') {
        arena.reset();
        if (!decoder.decode(bytes.value(), *format, &out, arena).is_ok())
          return;
      }
      std::uint8_t ack = 1;
      if (!server.send(std::span<const std::uint8_t>(&ack, 1)).is_ok()) return;
    }
  });

  ByteBuffer buffer;
  auto pbio_round_trip = [&] {
    buffer.clear();
    check(binary_encoder.encode(&message, buffer), "encode");
    check(client.send(buffer.span()), "send");
    auto ack = client.receive(2000);
    check(ack.status(), "ack");
  };
  std::string xml_text = expect(xml_codec.encode(&message), "xml");
  std::span<const std::uint8_t> xml_bytes(
      reinterpret_cast<const std::uint8_t*>(xml_text.data()), xml_text.size());
  auto xml_round_trip = [&] {
    check(client.send(xml_bytes), "send");
    auto ack = client.receive(2000);
    check(ack.status(), "ack");
  };

  double pbio_ms = bench::encode_ms(pbio_round_trip, 64);
  double xml_ms = bench::encode_ms(xml_round_trip, 64);
  std::printf("  XMIT/PBIO (worst case) : %9.4f ms per message (%zu B)\n",
              pbio_ms, binary_size);
  std::printf("  XML (best case)        : %9.4f ms per message (%zu B)\n",
              xml_ms, xml_size);
  std::printf("  ratio                  : %9.2fx  (paper: ~2x; driven by\n"
              "                              the message-size expansion)\n",
              xml_ms / pbio_ms);
  reporter.add("latency", "pbio round-trip", pbio_ms);
  reporter.add("latency", "xml round-trip", xml_ms);
  reporter.add("latency", "xml/pbio ratio", xml_ms / pbio_ms, "x");
  std::printf(
      "\nnote: if the XML arm also had to convert (the common case), add\n"
      "its Figure 8 encode/decode cost — orders of magnitude, not 2x.\n");

  client.close();
  echo.join();
  return 0;
}
