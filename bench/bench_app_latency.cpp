// §4's application-based experiment: the Hydrology pipeline end-to-end
// with binary (XMIT/PBIO) versus XML-text transport between components.
//
// The paper: "In one application-based experiment, XML messages are 3
// times larger than the corresponding binary messages, resulting in the
// XML-based solutions experiencing twice the latency than the solutions
// using XMIT." The paper's XML arm shipped pre-encoded text (no string
// conversion); a real application converts at both ends, which is what
// this harness runs — so expect a larger-than-2x gap here, with the
// paper's conversion-free bound measured separately by
// bench_fig1_expansion's latency section.
#include "bench_common.hpp"
#include "common/clock.hpp"
#include "hydrology/pipeline.hpp"

namespace {

using namespace xmit;
using bench::expect;

double run_once_ms(const hydrology::PipelineConfig& config) {
  Stopwatch watch;
  auto report = expect(hydrology::run_pipeline(config), "pipeline");
  (void)report;
  return watch.elapsed_ms();
}

double best_of(const hydrology::PipelineConfig& config, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) best = std::min(best, run_once_ms(config));
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "§4 application experiment — Hydrology pipeline, binary vs XML wire",
      "full pipeline wall time (ms, best of 5), identical physics per arm");

  bench::Reporter reporter("app_latency");
  std::printf("\n%-18s %8s %14s %14s %8s\n", "grid", "frames",
              "XMIT/PBIO (ms)", "XML text (ms)", "ratio");

  struct Case {
    int nx, ny, timesteps;
  } cases[] = {{16, 12, 6}, {32, 24, 6}, {64, 48, 6}};

  const int repeats = bench::smoke() ? 1 : 5;
  for (const auto& c : cases) {
    hydrology::PipelineConfig config;
    config.nx = c.nx;
    config.ny = c.ny;
    config.timesteps = bench::smoke() ? 2 : c.timesteps;
    config.sink_count = 2;
    config.wire_mode = hydrology::WireMode::kBinary;
    double binary_ms = best_of(config, repeats);
    config.wire_mode = hydrology::WireMode::kXmlText;
    double text_ms = best_of(config, repeats);

    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d", c.nx, c.ny);
    std::printf("%-18s %8d %14.2f %14.2f %8.2f\n", label, config.timesteps,
                binary_ms, text_ms, text_ms / binary_ms);
    reporter.add("binary", label, binary_ms);
    reporter.add("xml-text", label, text_ms);
    reporter.add("ratio", label, text_ms / binary_ms, "x");
  }

  std::printf(
      "\npaper reference: ~2x latency for the XML arm *without* string\n"
      "conversion (size-driven only). This harness includes the conversion\n"
      "both ends pay in a real XML deployment, so the ratio grows with\n"
      "grid size as Figure 8 predicts.\n");
  return 0;
}
