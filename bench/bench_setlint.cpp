// bench_setlint: whole-set analyzer at corpus scale (DESIGN.md 5j).
//
// Generates a synthetic schema corpus (5000 files full tier, ~60 smoke),
// then measures:
//   cold   lint_schema_set with a fresh cache directory (every file and
//          family analyzed, every matrix pair compiled + verified)
//   warm   the same call again (all results served from the cache)
//   touch1 one family's last version rewritten, then re-lint (the
//          incremental case: one file + one family re-analyzed)
//
// Reported: cold/warm/touch1 wall time, warm-over-cold speedup, matrix
// pairs verified per second (cold), and cache hit rate (warm).
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/schema_corpus.hpp"
#include "analysis/setlint.hpp"
#include "bench_common.hpp"
#include "common/clock.hpp"
#include "net/fetch.hpp"

using xmit::analysis::CorpusOptions;
using xmit::analysis::SetLintOptions;
using xmit::analysis::SetLintReport;

namespace {

SetLintReport run(const std::string& dir, const std::string& cache_dir) {
  SetLintOptions options;
  options.cache_dir = cache_dir;
  options.matrix = true;
  options.matrix_sender_arch = xmit::pbio::ArchInfo::big_endian_64();
  options.lint.arch = xmit::pbio::ArchInfo::big_endian_64();
  return xmit::bench::expect(xmit::analysis::lint_schema_set(dir, options),
                             "lint_schema_set");
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const bool smoke = xmit::bench::smoke();

  CorpusOptions corpus;
  corpus.families = smoke ? 12 : 1000;
  corpus.versions = 5;
  corpus.defect_every = 10;

  const std::string root =
      fs::temp_directory_path() / ("xmit_bench_setlint_" +
                                   std::to_string(::getpid()));
  const std::string corpus_dir = root + "/corpus";
  const std::string cache_dir = root + "/cache";

  xmit::bench::print_header(
      "bench_setlint",
      "whole-set lint + plan matrix: cold vs warm vs one-file touch");

  xmit::Stopwatch generate_timer;
  auto manifest = xmit::bench::expect(
      xmit::analysis::generate_schema_corpus(corpus_dir, corpus),
      "generate corpus");
  const double generate_ms = generate_timer.elapsed_ms();
  std::printf("corpus: %zu files, %zu defect families (%.0f ms to emit)\n",
              manifest.files, manifest.defects, generate_ms);

  xmit::Stopwatch cold_timer;
  SetLintReport cold = run(corpus_dir, cache_dir);
  const double cold_ms = cold_timer.elapsed_ms();

  xmit::Stopwatch warm_timer;
  SetLintReport warm = run(corpus_dir, cache_dir);
  const double warm_ms = warm_timer.elapsed_ms();

  // Touch one family: rewrite the last version of family 0 with different
  // content (an extra comment changes the digest, nothing else).
  const std::string touched =
      corpus_dir + "/fam_0000/rec_v" + std::to_string(corpus.versions) +
      ".xsd";
  auto text = xmit::bench::expect(xmit::net::read_file(touched), "read");
  xmit::bench::check(
      xmit::net::write_file(touched, text + "<!-- touched -->\n"), "write");
  xmit::Stopwatch touch_timer;
  SetLintReport touch = run(corpus_dir, cache_dir);
  const double touch_ms = touch_timer.elapsed_ms();

  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  const double pairs_per_s =
      cold_ms > 0 ? 1000.0 * static_cast<double>(cold.stats.pairs_verified +
                                                 cold.stats.pairs_rejected) /
                        cold_ms
                  : 0;
  const double warm_hit_rate =
      warm.stats.cache_hits + warm.stats.cache_misses > 0
          ? static_cast<double>(warm.stats.cache_hits) /
                static_cast<double>(warm.stats.cache_hits +
                                    warm.stats.cache_misses)
          : 0;

  std::printf("cold:   %8.1f ms  (%zu findings, %zu pairs verified,"
              " %zu rejected)\n",
              cold_ms, cold.findings.size(), cold.stats.pairs_verified,
              cold.stats.pairs_rejected);
  std::printf("warm:   %8.1f ms  (%.1fx speedup, %.1f%% cache hits)\n",
              warm_ms, speedup, 100.0 * warm_hit_rate);
  std::printf("touch1: %8.1f ms  (%zu misses re-analyzed)\n", touch_ms,
              touch.stats.cache_misses);
  std::printf("matrix: %.0f pairs/s cold\n", pairs_per_s);

  xmit::bench::Reporter reporter("setlint");
  reporter.add("lint", "corpus_files", static_cast<double>(cold.stats.files),
               "files");
  reporter.add("lint", "cold", cold_ms);
  reporter.add("lint", "warm", warm_ms);
  reporter.add("lint", "touch1", touch_ms);
  reporter.add("lint", "warm_speedup", speedup, "x");
  reporter.add("lint", "warm_cache_hit_rate", warm_hit_rate, "ratio");
  reporter.add("matrix", "pairs_per_s_cold", pairs_per_s, "pairs/s");
  reporter.add("matrix", "pairs_verified",
               static_cast<double>(cold.stats.pairs_verified), "pairs");

  std::error_code ec;
  fs::remove_all(root, ec);
  return 0;
}
