// Registry at scale (DESIGN.md §5k): what sharding, bounded plan caching
// and batched discovery buy once the format population reaches the
// thousands.
//
//   register_throughput  N formats registered across 1/4/8 threads, for
//                        the sharded registry vs a single-mutex baseline
//                        (the pre-§5k design, rebuilt here so the two can
//                        be raced on the same hardware forever).
//   by_id_throughput     steady-state lookup rate against a 10k-format
//                        population, same comparison. The sharded path is
//                        an RCU snapshot read — no lock, no shared write.
//   plan_cache           one decode, cold (plan compiled) vs warm (plan
//                        cached) vs evicting (budget of 1 entry forces a
//                        rebuild every call — the worst case the cache
//                        budget can inflict).
//   discovery            resolving a set of unknown formats over HTTP:
//                        one round trip per format (the paper's RDM, paid
//                        per schema) vs one batched set fetch.
//
// Gate the scaling rows in CI with
//   tools/bench_compare.py base/ cur/ --check 'registry/scaling/*'
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "common/arena.hpp"
#include "common/clock.hpp"
#include "net/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/registry.hpp"
#include "xmit/format_service.hpp"

namespace xmit::bench {
namespace {

// The registry design §5k replaced: every operation under one mutex. Kept
// here (not in src/) purely as the measured baseline.
class MutexRegistry {
 public:
  Result<pbio::FormatPtr> register_format(std::string name,
                                          std::vector<pbio::IOField> fields,
                                          std::uint32_t struct_size) {
    auto format = pbio::Format::make(name, std::move(fields), struct_size,
                                     pbio::ArchInfo::host());
    if (!format.is_ok()) return format.status();
    pbio::FormatPtr ptr = format.value();
    std::lock_guard<std::mutex> lock(mutex_);
    by_id_.emplace(ptr->id(), ptr);
    by_name_[std::move(name)] = ptr;
    return ptr;
  }

  Result<pbio::FormatPtr> by_id(pbio::FormatId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_id_.find(id);
    if (it == by_id_.end())
      return Status(ErrorCode::kNotFound, "unknown format id");
    return it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<pbio::FormatId, pbio::FormatPtr> by_id_;
  std::unordered_map<std::string, pbio::FormatPtr> by_name_;
};

std::vector<pbio::IOField> fields_for(std::size_t k) {
  return {{"id", "integer", 4, 0},
          {"step", "integer", 4, 4},
          {"value", "float", 8, 8},
          {"aux" + std::to_string(k % 7), "float", 8, 16}};
}

std::string name_for(std::size_t k) { return "T" + std::to_string(k); }

// Registers [0, total) split across `threads`, returns elapsed seconds.
template <typename Registry>
double register_storm_s(Registry& registry, std::size_t total, int threads) {
  std::vector<std::thread> workers;
  std::atomic<bool> go{false};
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t k = t; k < total; k += threads)
        (void)registry.register_format(name_for(k), fields_for(k), 24);
    });
  }
  sw.reset();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  return sw.elapsed_s();
}

// Each thread walks the whole id list `rounds` times; returns aggregate
// lookups per second.
template <typename Registry>
double lookup_rate_per_s(const Registry& registry,
                         const std::vector<pbio::FormatId>& ids, int threads,
                         int rounds) {
  std::vector<std::thread> workers;
  std::atomic<bool> go{false};
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      // Distinct starting offsets so threads do not stampede one shard.
      const std::size_t start = ids.size() * t / threads;
      for (int r = 0; r < rounds; ++r)
        for (std::size_t i = 0; i < ids.size(); ++i)
          (void)registry.by_id(ids[(start + i) % ids.size()]);
    });
  }
  sw.reset();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  return double(ids.size()) * rounds * threads / sw.elapsed_s();
}

struct PlanMessage {
  std::int32_t id;
  std::int32_t n;
  float* data;
};

void bench_plan_cache(Reporter& reporter) {
  pbio::FormatRegistry registry;
  auto host = expect(registry.register_format(
                         "PlanMsg",
                         {{"id", "integer", 4, offsetof(PlanMessage, id)},
                          {"n", "integer", 4, offsetof(PlanMessage, n)},
                          {"data", "float[n]", 4, offsetof(PlanMessage, data)}},
                         sizeof(PlanMessage)),
                     "register PlanMsg");
  pbio::ArchInfo foreign;
  foreign.byte_order = ByteOrder::kBig;
  foreign.pointer_size = 4;
  foreign.long_size = 4;
  foreign.max_align = 8;
  auto sender = expect(
      registry.adopt(expect(pbio::Format::make("PlanMsg",
                                               {{"id", "integer", 4, 0},
                                                {"n", "integer", 4, 4},
                                                {"data", "float[n]", 4, 8}},
                                               12, foreign),
                            "make foreign PlanMsg")),
      "adopt foreign PlanMsg");
  pbio::RecordBuilder builder(sender);
  (void)builder.set_int("id", 7);
  const std::int64_t data[] = {1, 2, 3, 4};
  (void)builder.set_int_array("data", data);
  auto record = expect(builder.build(), "build foreign record");

  Arena arena;
  PlanMessage out{};
  auto decode_with = [&](pbio::Decoder& decoder) {
    arena.reset();
    check(decoder.decode(record, *host, &out, arena), "decode PlanMsg");
  };

  // Cold: a fresh decoder compiles the (sender, receiver) plan each call.
  const double cold_us =
      1e3 * encode_ms([&] {
        pbio::Decoder decoder(registry);
        decode_with(decoder);
      });

  pbio::Decoder warm_decoder(registry);
  decode_with(warm_decoder);
  const double warm_us = 1e3 * encode_ms([&] { decode_with(warm_decoder); });

  // Evicting: a 1-entry budget with two alternating senders rebuilds the
  // plan every call — the floor the cache budget can push a workload to.
  auto sender2 = expect(
      registry.adopt(expect(pbio::Format::make("PlanMsg2",
                                               {{"id", "integer", 4, 0},
                                                {"n", "integer", 4, 4},
                                                {"data", "float[n]", 4, 8}},
                                               12, foreign),
                            "make PlanMsg2")),
      "adopt PlanMsg2");
  auto host2 = expect(registry.register_format(
                          "PlanMsg2",
                          {{"id", "integer", 4, offsetof(PlanMessage, id)},
                           {"n", "integer", 4, offsetof(PlanMessage, n)},
                           {"data", "float[n]", 4,
                            offsetof(PlanMessage, data)}},
                          sizeof(PlanMessage)),
                      "register PlanMsg2");
  pbio::RecordBuilder builder2(sender2);
  (void)builder2.set_int("id", 8);
  (void)builder2.set_int_array("data", data);
  auto record2 = expect(builder2.build(), "build second record");
  pbio::Decoder evicting(registry);
  evicting.set_plan_cache_budget(CacheBudget::of(1, 0));
  const double evict_us = 1e3 * encode_ms([&] {
    arena.reset();
    check(evicting.decode(record, *host, &out, arena), "decode 1");
    arena.reset();
    check(evicting.decode(record2, *host2, &out, arena), "decode 2");
  }) / 2;

  std::printf("%-28s %10.2f us\n", "plan cold (compile + run)", cold_us);
  std::printf("%-28s %10.2f us\n", "plan warm (cached)", warm_us);
  std::printf("%-28s %10.2f us\n", "plan evicting (budget 1)", evict_us);
  reporter.add("plan_cache", "cold", cold_us, "us");
  reporter.add("plan_cache", "warm", warm_us, "us");
  reporter.add("plan_cache", "evicting", evict_us, "us");
}

void bench_discovery(Reporter& reporter) {
  const std::size_t kFormats = smoke() ? 4 : 32;
  pbio::FormatRegistry source;
  std::vector<pbio::FormatId> ids;
  for (std::size_t k = 0; k < kFormats; ++k)
    ids.push_back(expect(source.register_format(name_for(k), fields_for(k), 24),
                         "register source format")
                      ->id());

  auto server = expect(net::HttpServer::start(), "start http server");
  toolkit::FormatPublisher publisher(*server);
  publisher.publish_all(source);
  publisher.serve_set_requests(source);

  const int repeats = smoke() ? 1 : 8;
  auto time_resolution = [&](bool batched) {
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
      pbio::FormatRegistry local;
      toolkit::RemoteFormatResolver resolver(publisher.base_url(), local);
      if (batched) resolver.set_batch_url(publisher.set_url());
      Stopwatch sw;
      auto outcome = expect(resolver.resolve_batch(ids), "resolve_batch");
      const double ms = sw.elapsed_ms();
      if (outcome.resolved.size() != ids.size()) {
        std::fprintf(stderr, "FATAL resolved %zu of %zu formats\n",
                     outcome.resolved.size(), ids.size());
        std::abort();
      }
      if (ms < best) best = ms;
    }
    return best;
  };

  const double per_schema_ms = time_resolution(/*batched=*/false);
  const double batched_ms = time_resolution(/*batched=*/true);
  std::printf("%-28s %10.2f ms  (%zu formats, one fetch each)\n",
              "discovery per-schema", per_schema_ms, kFormats);
  std::printf("%-28s %10.2f ms  (one set fetch)\n", "discovery batched",
              batched_ms);
  reporter.add("discovery", "per_schema_ms", per_schema_ms, "ms");
  reporter.add("discovery", "batched_ms", batched_ms, "ms");
  if (batched_ms > 0)
    reporter.add("scaling", "rdm_amortization", per_schema_ms / batched_ms,
                 "x");
}

}  // namespace
}  // namespace xmit::bench

int main() {
  using namespace xmit;
  using namespace xmit::bench;

  print_header("Registry at scale",
               "sharded registry vs single-mutex baseline; plan-cache "
               "budgets; batched discovery (DESIGN.md §5k)");
  Reporter reporter("registry");

  const std::size_t kPopulation = smoke() ? 400 : 10000;
  const int kLookupRounds = smoke() ? 2 : 50;
  std::printf("population: %zu formats, hardware threads: %u\n\n", kPopulation,
              std::thread::hardware_concurrency());

  // --- registration throughput --------------------------------------------
  double mutex_by_threads[9] = {};
  double sharded_by_threads[9] = {};
  for (int threads : {1, 4, 8}) {
    const int repeats = smoke() ? 1 : 3;
    double mutex_s = 1e300, sharded_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
      MutexRegistry baseline;
      mutex_s = std::min(mutex_s,
                         register_storm_s(baseline, kPopulation, threads));
      pbio::FormatRegistry sharded;
      sharded_s = std::min(sharded_s,
                           register_storm_s(sharded, kPopulation, threads));
    }
    mutex_by_threads[threads] = kPopulation / mutex_s / 1000;
    sharded_by_threads[threads] = kPopulation / sharded_s / 1000;
    std::printf("register %dt: mutex %8.1f kformats/s   sharded %8.1f "
                "kformats/s\n",
                threads, mutex_by_threads[threads],
                sharded_by_threads[threads]);
    const std::string point = std::to_string(threads) + "t";
    reporter.add("register_throughput", "mutex_" + point,
                 mutex_by_threads[threads], "kformats/s");
    reporter.add("register_throughput", "sharded_" + point,
                 sharded_by_threads[threads], "kformats/s");
  }
  if (mutex_by_threads[8] > 0)
    reporter.add("scaling", "register_8t_vs_mutex",
                 sharded_by_threads[8] / mutex_by_threads[8], "x");

  // --- steady-state by_id -------------------------------------------------
  {
    MutexRegistry baseline;
    pbio::FormatRegistry sharded;
    std::vector<pbio::FormatId> ids;
    for (std::size_t k = 0; k < kPopulation; ++k) {
      auto format = expect(
          sharded.register_format(bench::name_for(k), bench::fields_for(k), 24),
          "register lookup format");
      (void)expect(baseline.register_format(bench::name_for(k),
                                            bench::fields_for(k), 24),
                   "register baseline format");
      ids.push_back(format->id());
    }
    std::printf("\n");
    for (int threads : {1, 8}) {
      const double mutex_rate =
          lookup_rate_per_s(baseline, ids, threads, kLookupRounds) / 1e6;
      const double sharded_rate =
          lookup_rate_per_s(sharded, ids, threads, kLookupRounds) / 1e6;
      std::printf("by_id %dt @%zu formats: mutex %8.2f M/s   sharded %8.2f "
                  "M/s\n",
                  threads, kPopulation, mutex_rate, sharded_rate);
      const std::string point = std::to_string(threads) + "t";
      reporter.add("by_id_throughput", "mutex_" + point, mutex_rate,
                   "Mlookups/s");
      reporter.add("by_id_throughput", "sharded_" + point, sharded_rate,
                   "Mlookups/s");
      if (threads == 8 && mutex_rate > 0)
        reporter.add("scaling", "by_id_8t_vs_mutex", sharded_rate / mutex_rate,
                     "x");
    }
    auto stats = sharded.stats();
    std::printf("sharded registry: %zu snapshot hit(s), %zu delta hit(s), "
                "%zu publish(es)\n\n",
                stats.snapshot_hits, stats.delta_hits,
                stats.snapshot_publishes);
  }

  bench::bench_plan_cache(reporter);
  std::printf("\n");
  bench::bench_discovery(reporter);
  return 0;
}
