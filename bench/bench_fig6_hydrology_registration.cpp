// Figure 6: format registration costs using PBIO and XMIT for the
// Hydrology application formats.
//
// Paper series: Hydrology structures of 12, 20, 44 and 152 bytes; RDM
// 2.11-2.73 for the small ones but ~4 for the 152-byte structure, because
// it is made of a *large number of primitive fields* (each field is one
// more element tag the XMIT parser and metadata generator must process),
// unlike Figure 3's composed 180-byte structure.
#include <map>

#include "bench_common.hpp"
#include "hydrology/messages.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "xmit/xmit.hpp"
#include "xsd/parse.hpp"
#include "xsd/write.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

// One-type schema document extracted from the Hydrology schema, so each
// row measures the registration of exactly one format (as the paper does).
std::string single_type_schema(const std::string& type_name) {
  auto schema = expect(xsd::parse_schema_text(hydrology::hydrology_schema_xml()),
                       "hydrology schema");
  xsd::Schema out;
  for (const auto& type : schema.types())
    if (type.name == type_name) check(out.add_type(type), "add type");
  return xsd::write_schema(out);
}

const hydrology::CompiledFormat& compiled_named(const std::string& name) {
  std::size_t count = 0;
  const auto* formats = hydrology::compiled_formats(&count);
  for (std::size_t i = 0; i < count; ++i)
    if (name == formats[i].name) return formats[i];
  std::abort();
}

std::vector<pbio::IOField> fields_of(const hydrology::CompiledFormat& format) {
  std::vector<pbio::IOField> fields;
  for (std::size_t f = 0; f < format.row_count; ++f)
    fields.push_back({format.rows[f].name, format.rows[f].type,
                      format.rows[f].size, format.rows[f].offset});
  return fields;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6 — Format registration costs, Hydrology application",
      "RDM = XMIT time / PBIO time; primitive-heavy structures pay more\n"
      "per byte than composed ones (the paper's 152-byte row has RDM ~4)");

  // The paper's four rows, by role: 12 B control event, 20 B grid spec,
  // 44 B statistics record, 152 B primitive-heavy frame header. Pointer-
  // bearing rows on LP64 are larger than the 2001 ILP32 numbers; the
  // row labels carry our actual sizes.
  const char* kTypes[] = {"ControlEvent", "GridSpec", "StatSummary",
                          "Vis5dFrame"};

  bench::Reporter reporter("fig6_hydrology_registration");
  std::printf("\n%-14s %10s %8s %12s %12s %7s\n", "format", "size (B)",
              "fields", "PBIO (ms)", "XMIT (ms)", "RDM");

  for (const char* name : kTypes) {
    const auto& compiled = compiled_named(name);
    std::string schema_text = single_type_schema(name);

    double pbio_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      check(registry
                .register_format(compiled.name, fields_of(compiled),
                                 compiled.struct_size)
                .status(),
            "pbio register");
    });
    double xmit_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      toolkit::Xmit xmit(registry);
      check(xmit.load_text(schema_text, name), "xmit register");
    });

    std::printf("%-14s %10u %8zu %12.4f %12.4f %7.2f\n", name,
                compiled.struct_size, compiled.row_count, pbio_ms, xmit_ms,
                xmit_ms / pbio_ms);
    reporter.add("pbio", name, pbio_ms);
    reporter.add("xmit", name, xmit_ms);
    reporter.add("rdm", name, xmit_ms / pbio_ms, "x");
  }

  // Whole-document registration: all 8 Hydrology formats in one load, the
  // cost a component actually pays at startup.
  {
    std::size_t count = 0;
    const auto* formats = hydrology::compiled_formats(&count);
    double pbio_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      for (std::size_t i = 0; i < count; ++i)
        check(registry
                  .register_format(formats[i].name, fields_of(formats[i]),
                                   formats[i].struct_size)
                  .status(),
              "pbio register all");
    });
    double xmit_ms = bench::registration_ms([&] {
      pbio::FormatRegistry registry;
      toolkit::Xmit xmit(registry);
      check(xmit.load_text(hydrology::hydrology_schema_xml(), "hydrology"),
            "xmit register all");
    });
    std::printf("%-14s %10s %8zu %12.4f %12.4f %7.2f\n", "(all 8 types)", "-",
                count, pbio_ms, xmit_ms, xmit_ms / pbio_ms);
    reporter.add("pbio", "all types", pbio_ms);
    reporter.add("xmit", "all types", xmit_ms);
    reporter.add("rdm", "all types", xmit_ms / pbio_ms, "x");
  }

  std::printf(
      "\npaper reference: 12 B -> RDM 2.11; 20 B -> RDM 2.26; 44 B -> RDM\n"
      "2.73; 152 B -> RDM 4 (field count, not byte count, drives the cost)\n");
  return 0;
}
