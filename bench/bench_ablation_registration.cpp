// Ablation A2 (DESIGN.md §5): where does XMIT registration time go?
//
// Splits the full remote-discovery path into its four phases — HTTP fetch,
// XML parse (text -> DOM -> schema model), translate (schema -> layouts),
// PBIO register — using the toolkit's LoadStats, for both a single small
// format and the full 8-type Hydrology document. Also reports the RDM with
// and without the fetch phase, quantifying how much of the "cost of remote
// metadata" is network versus processing.
#include <map>

#include "bench_common.hpp"
#include "hydrology/messages.hpp"
#include "net/http.hpp"
#include "pbio/registry.hpp"
#include "xmit/xmit.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

constexpr const char* kSmallSchema = R"(
<xsd:complexType name="ControlEvent">
  <xsd:element name="command" type="xsd:integer" />
  <xsd:element name="value" type="xsd:float" />
  <xsd:element name="flag" type="xsd:integer" />
</xsd:complexType>)";

struct PhaseTotals {
  double fetch = 0, parse = 0, translate = 0, register_ = 0;
  int runs = 0;

  void add(const toolkit::LoadStats& stats) {
    fetch += stats.fetch_ms;
    parse += stats.parse_ms;
    translate += stats.translate_ms;
    register_ += stats.register_ms;
    ++runs;
  }
  double total() const { return fetch + parse + translate + register_; }

  void print(bench::Reporter& reporter, const char* label) const {
    double scale = 1.0 / runs;
    double sum = total() * scale;
    std::printf("%-22s %9.4f %9.4f %9.4f %9.4f %9.4f\n", label, fetch * scale,
                parse * scale, translate * scale, register_ * scale, sum);
    std::printf("%-22s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", "", 100 * fetch / total(),
                100 * parse / total(), 100 * translate / total(),
                100 * register_ / total());
    reporter.add(label, "fetch", fetch * scale);
    reporter.add(label, "parse", parse * scale);
    reporter.add(label, "translate", translate * scale);
    reporter.add(label, "register", register_ * scale);
    reporter.add(label, "total", sum);
  }
};

PhaseTotals run_loads(const std::string& url, int runs) {
  PhaseTotals totals;
  for (int i = 0; i < runs; ++i) {
    pbio::FormatRegistry registry;
    toolkit::Xmit xmit(registry);
    check(xmit.load(url), "load");
    totals.add(xmit.last_load_stats());
  }
  return totals;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A2 — XMIT registration phase breakdown",
      "mean per-load milliseconds by phase, over live local HTTP");

  auto server = expect(net::HttpServer::start(), "http server");
  server->put_document("/small.xsd", kSmallSchema);
  server->put_document("/hydrology.xsd", hydrology::hydrology_schema_xml());

  bench::Reporter reporter("ablation_registration");
  const int kRuns = bench::smoke() ? 3 : 200;
  std::printf("\n%-22s %9s %9s %9s %9s %9s\n", "document", "fetch", "parse",
              "translate", "register", "total");
  auto small = run_loads(server->url_for("/small.xsd"), kRuns);
  small.print(reporter, "small (1 type)");
  auto full = run_loads(server->url_for("/hydrology.xsd"), kRuns);
  full.print(reporter, "hydrology (8 types)");

  // RDM with and without fetch, against compiled-in registration of the
  // same single format.
  double pbio_ms = bench::registration_ms([&] {
    pbio::FormatRegistry registry;
    check(registry
              .register_format("ControlEvent",
                               {{"command", "integer", 4, 0},
                                {"value", "float", 4, 4},
                                {"flag", "integer", 4, 8}},
                               12)
              .status(),
          "pbio register");
  });
  double processing_ms =
      (small.parse + small.translate + small.register_) / small.runs;
  double with_fetch_ms = small.total() / small.runs;
  std::printf("\nControlEvent RDM decomposition:\n");
  std::printf("  compiled-in PBIO registration : %9.4f ms\n", pbio_ms);
  std::printf("  XMIT processing only          : %9.4f ms  (RDM %.2f)\n",
              processing_ms, processing_ms / pbio_ms);
  std::printf("  XMIT including HTTP fetch     : %9.4f ms  (RDM %.2f)\n",
              with_fetch_ms, with_fetch_ms / pbio_ms);
  reporter.add("rdm", "pbio compiled-in", pbio_ms);
  reporter.add("rdm", "xmit processing", processing_ms);
  reporter.add("rdm", "xmit with fetch", with_fetch_ms);
  std::printf(
      "\ninterpretation: the paper amortizes this one-time cost over the\n"
      "message stream; per-message marshal cost is unchanged (Figure 7).\n");
  return 0;
}
