// §4.2's cost model, measured: "the increased cost of discovery and
// registration [is] amortized across the entire set of messages sent
// using a particular metadata format. As the number of messages sent in a
// particular format can reasonably be expected to dominate the number of
// format discoveries and changes, the overall effect on performance
// should be tolerable."
//
// Three arms send N messages of one format end-to-end over a session:
//   compiled   formats registered from compiled-in tables; metadata still
//              travels in-band once (classic PBIO connection)
//   xmit       formats discovered via XMIT from a live HTTP schema URL at
//              startup, then identical marshaling (the paper's system)
//   xml-wire   every message is XML text (no setup, per-message cost)
// The table shows total time and per-message time as N grows: the XMIT
// and compiled arms converge (startup amortized to nothing) while the XML
// arm's per-message cost never improves.
#include <thread>
#include <vector>

#include "baseline/xmlwire.hpp"
#include "bench_common.hpp"
#include "common/arena.hpp"
#include "common/clock.hpp"
#include "net/http.hpp"
#include "pbio/decode.hpp"
#include "session/session.hpp"
#include "xmit/xmit.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

struct Frame {
  std::int32_t timestep;
  std::int32_t size;
  float* data;
};

constexpr const char* kSchema = R"(
<xsd:complexType name="Frame">
  <xsd:element name="timestep" type="xsd:integer" />
  <xsd:element name="data" type="xsd:float" maxOccurs="*"
               dimensionName="size" dimensionPlacement="before" />
</xsd:complexType>)";

std::vector<pbio::IOField> compiled_fields() {
  return {{"timestep", "integer", 4, offsetof(Frame, timestep)},
          {"size", "integer", 4, offsetof(Frame, size)},
          {"data", "float[size]", 4, offsetof(Frame, data)}};
}

// Receiver thread: drains n records from a session and decodes each.
void drain_session(session::MessageSession& session,
                   pbio::FormatRegistry& registry, int n) {
  pbio::Decoder decoder(registry);
  Arena arena;
  Frame out{};
  for (int i = 0; i < n; ++i) {
    auto incoming = session.receive(10000);
    if (!incoming.is_ok()) return;
    arena.reset();
    if (!decoder
             .decode(incoming.value().bytes, *incoming.value().sender_format,
                     &out, arena)
             .is_ok())
      return;
  }
}

// One run of the binary arm: returns total ms including all setup.
double run_binary(int messages, bool use_xmit, const std::string& schema_url) {
  Stopwatch watch;
  pbio::FormatRegistry sender_registry, receiver_registry;

  pbio::FormatPtr format;
  if (use_xmit) {
    toolkit::Xmit xmit(sender_registry);
    check(xmit.load(schema_url), "xmit load");
    format = expect(xmit.bind("Frame"), "bind").format;
  } else {
    format = expect(sender_registry.register_format("Frame", compiled_fields(),
                                                    sizeof(Frame)),
                    "register");
  }
  auto encoder = expect(pbio::Encoder::make(format), "encoder");

  auto pair = expect(
      session::make_session_pipe(sender_registry, receiver_registry), "pipe");
  std::thread receiver(
      [&] { drain_session(pair.b, receiver_registry, messages); });

  std::vector<float> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<float>(i);
  Frame frame{0, 64, payload.data()};
  for (int i = 0; i < messages; ++i) {
    frame.timestep = i;
    check(pair.a.send(encoder, &frame), "send");
  }
  receiver.join();
  return watch.elapsed_ms();
}

double run_xml(int messages) {
  Stopwatch watch;
  pbio::FormatRegistry registry;
  auto format = expect(
      registry.register_format("Frame", compiled_fields(), sizeof(Frame)),
      "register");
  auto codec = expect(baseline::XmlWireCodec::make(format), "codec");

  auto [tx, rx] = expect(net::Channel::pipe(), "pipe");
  std::thread receiver([&, rx = std::move(rx)]() mutable {
    Arena arena;
    Frame out{};
    for (int i = 0; i < messages; ++i) {
      auto bytes = rx.receive(10000);
      if (!bytes.is_ok()) return;
      std::string_view text(reinterpret_cast<const char*>(bytes.value().data()),
                            bytes.value().size());
      arena.reset();
      if (!codec.decode(text, &out, arena).is_ok()) return;
    }
  });

  std::vector<float> payload(64);
  Frame frame{0, 64, payload.data()};
  std::string text;
  for (int i = 0; i < messages; ++i) {
    frame.timestep = i;
    check(codec.encode(&frame, text), "encode");
    check(tx.send(std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(text.data()), text.size())),
          "send");
  }
  receiver.join();
  return watch.elapsed_ms();
}

double best_of(int repeats, const std::function<double()>& run) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) best = std::min(best, run());
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "§4.2 — amortization of discovery and registration cost",
      "total end-to-end ms (and us/message) for N messages of one format;\n"
      "setup (registration / HTTP discovery / in-band announcement) included");

  auto server = expect(net::HttpServer::start(), "http");
  server->put_document("/frame.xsd", kSchema);
  std::string url = server->url_for("/frame.xsd");

  bench::Reporter reporter("amortization");
  std::printf("\n%8s %15s %15s %15s | %9s %9s\n", "N", "compiled (ms)",
              "XMIT (ms)", "XML (ms)", "XMIT/cmp", "XML/XMIT");
  std::vector<int> sizes = {1, 10, 100, 1000, 10000};
  if (bench::smoke()) sizes = {1, 10, 100};
  for (int n : sizes) {
    int repeats = bench::smoke() ? 1 : (n >= 10000 ? 3 : 5);
    double compiled_ms =
        best_of(repeats, [&] { return run_binary(n, false, url); });
    double xmit_ms = best_of(repeats, [&] { return run_binary(n, true, url); });
    double xml_ms = best_of(repeats, [&] { return run_xml(n); });
    std::printf("%8d %9.3f (%4.1f) %9.3f (%4.1f) %9.3f (%4.1f) | %9.2f %9.1f\n",
                n, compiled_ms, 1000 * compiled_ms / n, xmit_ms,
                1000 * xmit_ms / n, xml_ms, 1000 * xml_ms / n,
                xmit_ms / compiled_ms, xml_ms / xmit_ms);
    char point[16];
    std::snprintf(point, sizeof(point), "N=%d", n);
    reporter.add("compiled", point, compiled_ms);
    reporter.add("xmit", point, xmit_ms);
    reporter.add("xml", point, xml_ms);
  }

  std::printf(
      "\ninterpretation (paper §4.2): the XMIT/compiled ratio decays to ~1\n"
      "as N grows — remote discovery is a one-time cost per format, not a\n"
      "per-message one — while XML's per-message cost is structural and\n"
      "never amortizes.\n");
  return 0;
}
