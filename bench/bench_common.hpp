// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure of the paper as a plain-text
// table: same rows/series, our hardware's absolute numbers. Timing is
// best-of-R mean-of-N (time_call_ms_best) so sub-millisecond registration
// costs are stable across runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace xmit::bench {

// Smoke tier: XMIT_BENCH_SMOKE=1 shrinks every timing loop to a handful of
// iterations so the whole harness doubles as a ctest (`ctest -L bench`)
// that proves the benches still run, not that the numbers are stable.
inline bool smoke() {
  static const bool value = [] {
    const char* env = std::getenv("XMIT_BENCH_SMOKE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return value;
}

// Abort the bench with a diagnostic on any setup failure — benches have no
// error channel worth threading.
inline void check(const Status& status, const char* what) {
  if (!status.is_ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.to_string().c_str());
    std::abort();
  }
}

template <typename T>
inline T expect(Result<T> result, const char* what) {
  if (!result.is_ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().to_string().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void print_header(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("%s\n", caption);
  std::printf("==============================================================\n");
}

inline void print_note(const char* note) { std::printf("note: %s\n", note); }

// Registration timing: many repetitions of a setup+teardown operation.
// Registration includes allocation; we time the full user-visible call.
template <typename Fn>
double registration_ms(Fn&& fn) {
  if (smoke()) {
    fn();
    return time_call_ms_best(fn, /*iters=*/2, /*repeats=*/1);
  }
  // Warm up allocators and caches.
  for (int i = 0; i < 16; ++i) fn();
  return time_call_ms_best(fn, /*iters=*/64, /*repeats=*/16);
}

// Encode timing: tight loop over a hot marshal path.
template <typename Fn>
double encode_ms(Fn&& fn, int iters = 256) {
  if (smoke()) {
    fn();
    return time_call_ms_best(fn, /*iters=*/2, /*repeats=*/1);
  }
  for (int i = 0; i < 16; ++i) fn();
  return time_call_ms_best(fn, iters, /*repeats=*/12);
}

// Machine-readable results: every harness routes the numbers it prints
// through a Reporter, which writes BENCH_<name>.json on destruction.
// tools/bench_compare.py diffs two such files (or directories of them).
// Schema: {"bench": ..., "smoke": bool, "results":
//          [{"series": ..., "point": ..., "value": ..., "unit": ...}]}
// (series, point) is the stable row key; `value` is the measurement.
class Reporter {
 public:
  explicit Reporter(std::string bench_name) : name_(std::move(bench_name)) {}

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  void add(const std::string& series, const std::string& point, double value,
           const std::string& unit = "ms") {
    rows_.push_back({series, point, unit, value});
  }

  ~Reporter() { write(); }

 private:
  struct Row {
    std::string series;
    std::string point;
    std::string unit;
    double value;
  };

  static void append_escaped(std::string& out, const std::string& text) {
    for (char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
  }

  void write() const {
    std::string json = "{\n  \"bench\": \"";
    append_escaped(json, name_);
    json += "\",\n  \"smoke\": ";
    json += smoke() ? "true" : "false";
    json += ",\n  \"results\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      json += i == 0 ? "\n" : ",\n";
      json += "    {\"series\": \"";
      append_escaped(json, rows_[i].series);
      json += "\", \"point\": \"";
      append_escaped(json, rows_[i].point);
      json += "\", \"value\": ";
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.9g", rows_[i].value);
      json += buffer;
      json += ", \"unit\": \"";
      append_escaped(json, rows_[i].unit);
      json += "\"}";
    }
    json += "\n  ]\n}\n";

    // XMIT_BENCH_OUT redirects the JSON (ctest runs write into the build
    // tree); default is the working directory.
    std::string path;
    if (const char* dir = std::getenv("XMIT_BENCH_OUT");
        dir != nullptr && dir[0] != '\0') {
      path = std::string(dir) + "/";
    }
    path += "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("\n[bench] wrote %s\n", path.c_str());
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace xmit::bench
