// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure of the paper as a plain-text
// table: same rows/series, our hardware's absolute numbers. Timing is
// best-of-R mean-of-N (time_call_ms_best) so sub-millisecond registration
// costs are stable across runs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace xmit::bench {

// Abort the bench with a diagnostic on any setup failure — benches have no
// error channel worth threading.
inline void check(const Status& status, const char* what) {
  if (!status.is_ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.to_string().c_str());
    std::abort();
  }
}

template <typename T>
inline T expect(Result<T> result, const char* what) {
  if (!result.is_ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().to_string().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void print_header(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("%s\n", caption);
  std::printf("==============================================================\n");
}

inline void print_note(const char* note) { std::printf("note: %s\n", note); }

// Registration timing: many repetitions of a setup+teardown operation.
// Registration includes allocation; we time the full user-visible call.
template <typename Fn>
double registration_ms(Fn&& fn) {
  // Warm up allocators and caches.
  for (int i = 0; i < 16; ++i) fn();
  return time_call_ms_best(fn, /*iters=*/64, /*repeats=*/16);
}

// Encode timing: tight loop over a hot marshal path.
template <typename Fn>
double encode_ms(Fn&& fn, int iters = 256) {
  for (int i = 0; i < 16; ++i) fn();
  return time_call_ms_best(fn, iters, /*repeats=*/12);
}

}  // namespace xmit::bench
