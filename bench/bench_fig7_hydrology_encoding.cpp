// Figure 7: structure encoding times using native PBIO metadata vs
// XMIT-generated metadata, Hydrology application.
//
// Paper series: encoded buffer sizes of 48, 70, 204 and 262176 bytes; the
// two curves coincide — "the XMIT translation process results in native
// metadata that is just as efficient as compiled-in metadata". Here both
// arms marshal the same records; the table reports both times and their
// ratio (expected ~1.00), plus a byte-identity check of the outputs.
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "hydrology/messages.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "xmit/xmit.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

std::vector<pbio::IOField> fields_of(const hydrology::CompiledFormat& format) {
  std::vector<pbio::IOField> fields;
  for (std::size_t f = 0; f < format.row_count; ++f)
    fields.push_back({format.rows[f].name, format.rows[f].type,
                      format.rows[f].size, format.rows[f].offset});
  return fields;
}

struct Arm {
  pbio::FormatRegistry registry;
  std::map<std::string, pbio::Encoder> encoders;
};

void measure(bench::Reporter& reporter, const char* label, const void* record,
             Arm& native, Arm& xmit_arm, const std::string& type) {
  auto& native_encoder = native.encoders.at(type);
  auto& xmit_encoder = xmit_arm.encoders.at(type);

  // Outputs must be byte-identical (same format id, same bytes).
  auto via_native = expect(native_encoder.encode_to_vector(record), "encode");
  auto via_xmit = expect(xmit_encoder.encode_to_vector(record), "encode");
  bool identical = via_native == via_xmit;

  ByteBuffer buffer;
  buffer.reserve(via_native.size());
  double native_ms = bench::encode_ms([&] {
    buffer.clear();
    check(native_encoder.encode(record, buffer), "native encode");
  });
  double xmit_ms = bench::encode_ms([&] {
    buffer.clear();
    check(xmit_encoder.encode(record, buffer), "xmit encode");
  });

  std::printf("%-14s %14zu %14.6f %14.6f %8.3f %10s\n", label,
              via_native.size(), native_ms, xmit_ms, xmit_ms / native_ms,
              identical ? "identical" : "DIFFER!");
  reporter.add("native", label, native_ms);
  reporter.add("xmit", label, xmit_ms);
  reporter.add("ratio", label, xmit_ms / native_ms, "x");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7 — Structure encoding times, PBIO vs XMIT metadata",
      "per-encode wall time (ms); the two metadata sources must coincide");

  bench::Reporter reporter("fig7_hydrology_encoding");

  // Native arm: compiled-in IOField tables.
  Arm native;
  std::size_t count = 0;
  const auto* compiled = hydrology::compiled_formats(&count);
  for (std::size_t i = 0; i < count; ++i) {
    auto format = expect(
        native.registry.register_format(compiled[i].name, fields_of(compiled[i]),
                                        compiled[i].struct_size),
        "native register");
    native.encoders.emplace(compiled[i].name,
                            expect(pbio::Encoder::make(format), "encoder"));
  }

  // XMIT arm: metadata translated from the schema document at run time.
  Arm xmit_arm;
  {
    toolkit::Xmit xmit(xmit_arm.registry);
    check(xmit.load_text(hydrology::hydrology_schema_xml(), "hydrology"),
          "xmit load");
    for (std::size_t i = 0; i < count; ++i) {
      auto token = expect(xmit.bind(compiled[i].name), "bind");
      xmit_arm.encoders.emplace(
          compiled[i].name, expect(pbio::Encoder::make(token.format), "encoder"));
    }
  }

  std::printf("\n%-14s %14s %14s %14s %8s %10s\n", "record",
              "encoded (B)", "native (ms)", "XMIT (ms)", "ratio", "outputs");

  // Row 1: small control event (paper's 48-byte point).
  hydrology::ControlEvent control{3, 0.5f, 1};
  measure(reporter, "ControlEvent", &control, native, xmit_arm, "ControlEvent");

  // Row 2: statistics record (~70-byte point).
  hydrology::StatSummary stats{};
  stats.timestep = 9;
  stats.cells = 768;
  stats.mean = 1.25f;
  measure(reporter, "StatSummary", &stats, native, xmit_arm, "StatSummary");

  // Row 3: frame header (~200-byte point).
  hydrology::Vis5dFrame frame{};
  frame.timestep = 9;
  frame.levels_used = 36;
  for (int i = 0; i < 36; ++i) frame.levels[i] = static_cast<float>(i);
  measure(reporter, "Vis5dFrame", &frame, native, xmit_arm, "Vis5dFrame");

  // Row 4: the big one — SimpleData with a 256 KiB float payload
  // (matches the paper's 262176-byte encoded buffer).
  std::vector<float> payload(65536);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<float>(i) * 0.001f;
  hydrology::SimpleData data{117, static_cast<std::int32_t>(payload.size()),
                             payload.data()};
  measure(reporter, "SimpleData64k", &data, native, xmit_arm, "SimpleData");

  std::printf(
      "\npaper reference: the PBIO and XMIT curves are indistinguishable at\n"
      "every encoded size (48 B ... 262176 B); expect ratio ~1.00 and\n"
      "byte-identical outputs above.\n");
  return 0;
}
