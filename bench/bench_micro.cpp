// Library micro-benchmarks on the hot paths (google-benchmark). These are
// engineering benchmarks rather than figure reproductions: throughput of
// the XML parser, PBIO encode/decode by payload size, conversion decode,
// XML wire codec, MPI packing, registration.
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/mpilite.hpp"
#include "baseline/xmlwire.hpp"
#include "common/arena.hpp"
#include "hydrology/messages.hpp"
#include "pbio/decode.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/format_wire.hpp"
#include "pbio/encode.hpp"
#include "pbio/registry.hpp"
#include "xmit/layout.hpp"
#include "xmit/xmit.hpp"
#include "rpc/xmlrpc.hpp"
#include "session/session.hpp"
#include "xml/parser.hpp"
#include "xsd/parse.hpp"

namespace {

using namespace xmit;

struct Message {
  std::int32_t timestep;
  std::int32_t size;
  float* data;
};

pbio::FormatPtr message_format(pbio::FormatRegistry& registry) {
  return registry
      .register_format("Message",
                       {{"timestep", "integer", 4, offsetof(Message, timestep)},
                        {"size", "integer", 4, offsetof(Message, size)},
                        {"data", "float[size]", 4, offsetof(Message, data)}},
                       sizeof(Message))
      .value();
}

void BM_XmlParseSchema(benchmark::State& state) {
  std::string text = hydrology::hydrology_schema_xml();
  for (auto _ : state) {
    auto doc = xml::parse_document(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_XmlParseSchema);

void BM_SchemaModelParse(benchmark::State& state) {
  std::string text = hydrology::hydrology_schema_xml();
  for (auto _ : state) {
    auto schema = xsd::parse_schema_text(text);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_SchemaModelParse);

void BM_LayoutSchema(benchmark::State& state) {
  auto schema =
      xsd::parse_schema_text(hydrology::hydrology_schema_xml()).value();
  for (auto _ : state) {
    auto layouts = toolkit::layout_schema(schema, pbio::ArchInfo::host());
    benchmark::DoNotOptimize(layouts);
  }
}
BENCHMARK(BM_LayoutSchema);

void BM_PbioRegister(benchmark::State& state) {
  for (auto _ : state) {
    pbio::FormatRegistry registry;
    auto format = message_format(registry);
    benchmark::DoNotOptimize(format);
  }
}
BENCHMARK(BM_PbioRegister);

void BM_XmitLoadText(benchmark::State& state) {
  std::string text = hydrology::hydrology_schema_xml();
  for (auto _ : state) {
    pbio::FormatRegistry registry;
    toolkit::Xmit xmit(registry);
    benchmark::DoNotOptimize(xmit.load_text(text, "bench"));
  }
}
BENCHMARK(BM_XmitLoadText);

void BM_PbioEncode(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto format = message_format(registry);
  auto encoder = pbio::Encoder::make(format).value();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)));
  Message message{1, static_cast<std::int32_t>(payload.size()), payload.data()};
  ByteBuffer buffer;
  for (auto _ : state) {
    buffer.clear();
    benchmark::DoNotOptimize(encoder.encode(&message, buffer));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buffer.size()));
}
BENCHMARK(BM_PbioEncode)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PbioDecodeIdentity(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto format = message_format(registry);
  auto encoder = pbio::Encoder::make(format).value();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)));
  Message message{1, static_cast<std::int32_t>(payload.size()), payload.data()};
  auto bytes = encoder.encode_to_vector(&message).value();
  pbio::Decoder decoder(registry);
  Arena arena;
  Message out{};
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(decoder.decode(bytes, *format, &out, arena));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_PbioDecodeIdentity)->Arg(16)->Arg(4096)->Arg(65536);

void BM_PbioDecodeInPlace(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto format = message_format(registry);
  auto encoder = pbio::Encoder::make(format).value();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)));
  Message message{1, static_cast<std::int32_t>(payload.size()), payload.data()};
  auto bytes = encoder.encode_to_vector(&message).value();
  pbio::Decoder decoder(registry);
  auto scratch = bytes;
  for (auto _ : state) {
    std::copy(bytes.begin(), bytes.end(), scratch.begin());
    benchmark::DoNotOptimize(decoder.decode_in_place(scratch, *format));
  }
}
BENCHMARK(BM_PbioDecodeInPlace)->Arg(16)->Arg(4096)->Arg(65536);

void BM_PbioDecodeByteSwap(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto host = message_format(registry);
  // Big-endian sender with the same layout shape.
  auto foreign =
      pbio::Format::make("Message",
                         {{"timestep", "integer", 4, 0},
                          {"size", "integer", 4, 4},
                          {"data", "float[size]", 4, 8}},
                         16, pbio::ArchInfo::big_endian_64())
          .value();
  (void)registry.adopt(foreign);
  pbio::RecordBuilder builder(foreign);
  (void)builder.set_int("timestep", 1);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)), 1.5);
  (void)builder.set_float_array("data", values);
  auto bytes = builder.build().value();
  pbio::Decoder decoder(registry);
  Arena arena;
  Message out{};
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(decoder.decode(bytes, *host, &out, arena));
  }
}
BENCHMARK(BM_PbioDecodeByteSwap)->Arg(16)->Arg(4096);

void BM_XmlWireEncode(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto format = message_format(registry);
  auto codec = baseline::XmlWireCodec::make(format).value();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)), 12.345f);
  Message message{1, static_cast<std::int32_t>(payload.size()), payload.data()};
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(&message, out));
  }
}
BENCHMARK(BM_XmlWireEncode)->Arg(16)->Arg(256)->Arg(4096);

void BM_XmlWireDecode(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto format = message_format(registry);
  auto codec = baseline::XmlWireCodec::make(format).value();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)), 12.345f);
  Message message{1, static_cast<std::int32_t>(payload.size()), payload.data()};
  auto text = codec.encode(&message).value();
  Arena arena;
  Message out{};
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(codec.decode(text, &out, arena));
  }
}
BENCHMARK(BM_XmlWireDecode)->Arg(16)->Arg(256)->Arg(4096);

void BM_MpiPack(benchmark::State& state) {
  auto type = baseline::mpi::Datatype::contiguous(
      static_cast<std::size_t>(state.range(0)),
      baseline::mpi::Datatype::basic(baseline::mpi::BasicType::kFloat));
  type.commit();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)), 1.0f);
  std::vector<std::uint8_t> buffer(baseline::mpi::pack_size(1, type));
  for (auto _ : state) {
    std::size_t position = 0;
    benchmark::DoNotOptimize(baseline::mpi::pack(
        payload.data(), 1, type, buffer.data(), buffer.size(), position));
  }
}
BENCHMARK(BM_MpiPack)->Arg(16)->Arg(256)->Arg(4096);

void BM_SessionSendReceive(benchmark::State& state) {
  pbio::FormatRegistry sender_registry, receiver_registry;
  auto pair =
      session::make_session_pipe(sender_registry, receiver_registry).value();
  auto format = message_format(sender_registry);
  auto encoder = pbio::Encoder::make(format).value();
  std::vector<float> payload(static_cast<std::size_t>(state.range(0)), 1.0f);
  Message message{1, static_cast<std::int32_t>(payload.size()), payload.data()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.a.send(encoder, &message));
    auto incoming = pair.b.receive(2000);
    benchmark::DoNotOptimize(incoming);
  }
}
BENCHMARK(BM_SessionSendReceive)->Arg(16)->Arg(4096);

void BM_XmlRpcValueRoundTrip(benchmark::State& state) {
  rpc::MethodCall call;
  call.method = "stats.get";
  call.params = {rpc::Value::from_int(7),
                 rpc::Value::structure({
                     {"min", rpc::Value::from_double(0.5)},
                     {"max", rpc::Value::from_double(9.5)},
                 })};
  for (auto _ : state) {
    auto text = rpc::write_method_call(call);
    auto parsed = rpc::parse_method_call(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_XmlRpcValueRoundTrip);

void BM_FormatMetadataSerialize(benchmark::State& state) {
  pbio::FormatRegistry registry;
  auto format = message_format(registry);
  for (auto _ : state) {
    auto blob = pbio::serialize_format(*format);
    auto restored = pbio::deserialize_format(blob);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_FormatMetadataSerialize);

}  // namespace

BENCHMARK_MAIN();
