// Ablation A7 (DESIGN.md §5d): compiled marshal plans vs the reference
// field interpreter on the conversion path.
//
// The record is Figure 7's hydrology SimpleData (timestep, size, float
// payload), sent by a foreign big-endian peer so every float must be
// byte-reversed — the expensive rung of "receiver makes right". Both
// decoders run the same Plan; `decode` executes the flat op program
// (typed swap kernels over coalesced spans), `decode_reference` walks
// the field list making per-element ScalarValue conversions. Outputs
// must match bit-for-bit at every size; the acceptance bar for the plan
// compiler is >=3x at the large sizes where conversion dominates.
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "common/arena.hpp"
#include "hydrology/messages.hpp"
#include "pbio/decode.hpp"
#include "pbio/dynrecord.hpp"
#include "pbio/simd.hpp"
#include "pbio/registry.hpp"
#include "xmit/layout.hpp"
#include "xsd/parse.hpp"

namespace {

using namespace xmit;
using bench::check;
using bench::expect;

using hydrology::SimpleData;

// Register SimpleData as laid out by `arch`, from the application schema
// (the same metadata path a live component uses).
pbio::FormatPtr register_simple_data(pbio::FormatRegistry& registry,
                                     const pbio::ArchInfo& arch) {
  auto schema = expect(xsd::parse_schema_text(hydrology::hydrology_schema_xml()),
                       "hydrology schema");
  auto layouts = expect(toolkit::layout_schema(schema, arch), "layout");
  for (const auto& layout : layouts) {
    if (layout.name != "SimpleData") continue;
    auto format = expect(pbio::Format::make(layout.name, layout.fields,
                                            layout.struct_size, arch),
                         "format");
    return expect(registry.adopt(format), "adopt");
  }
  std::fprintf(stderr, "FATAL: SimpleData not in hydrology schema\n");
  std::abort();
}

std::vector<std::uint8_t> forge_record(const pbio::FormatPtr& format, int n) {
  pbio::RecordBuilder builder(format);
  check(builder.set_int("timestep", 117), "set timestep");
  std::vector<double> data(n);
  for (int i = 0; i < n; ++i) data[i] = 0.125 * i - 3.0;
  check(builder.set_float_array("data", data), "set data");
  return expect(builder.build(), "build");
}

bool outputs_identical(const SimpleData& a, const SimpleData& b) {
  if (a.timestep != b.timestep || a.size != b.size) return false;
  return std::memcmp(a.data, b.data, sizeof(float) * a.size) == 0;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A7 — compiled marshal plan vs reference interpreter",
      "cross-endian SimpleData decode (ms) by payload element count;\n"
      "outputs verified bit-identical, acceptance: >=3x at large sizes");

  pbio::FormatRegistry registry;
  auto receiver = register_simple_data(registry, pbio::ArchInfo::host());
  auto sender = register_simple_data(registry, pbio::ArchInfo::big_endian_64());
  pbio::Decoder decoder(registry);

  // Show what the compiler produced for this pairing.
  {
    auto sample = forge_record(sender, 4);
    Arena arena;
    SimpleData out{};
    check(decoder.decode(sample, *receiver, &out, arena), "warm plan");
    std::printf("\nplan for big-endian SimpleData -> host:\n%s\n",
                expect(decoder.plan_disassembly(sender, *receiver),
                       "disassembly")
                    .c_str());
  }

  bench::Reporter reporter("ablation_convert");
  const bool simd_was_enabled = pbio::simd::enabled();
  std::printf("simd backend: %s (%s)\n\n", pbio::simd::backend(),
              simd_was_enabled ? "enabled" : "disabled");
  std::printf("%-12s %14s %14s %14s %10s %12s %10s\n", "elements",
              "compiled (ms)", "scalar (ms)", "reference (ms)", "speedup",
              "MB/s (comp)", "outputs");

  std::vector<int> sizes = {100, 1000, 10000, 100000, 1000000};
  if (bench::smoke()) sizes = {100, 1000};

  bool all_identical = true;
  double large_speedup = 0;
  for (int n : sizes) {
    auto record = forge_record(sender, n);
    Arena arena;
    SimpleData compiled_out{};
    SimpleData reference_out{};

    // Differential proof first: the same bytes through both executors.
    check(decoder.decode(record, *receiver, &compiled_out, arena), "compiled");
    check(decoder.decode_reference(record, *receiver, &reference_out, arena),
          "reference");
    bool identical = outputs_identical(compiled_out, reference_out);
    all_identical = all_identical && identical;

    int iters = n >= 100000 ? 16 : 128;
    double compiled_ms = bench::encode_ms(
        [&] {
          arena.reset();
          check(decoder.decode(record, *receiver, &compiled_out, arena), "d");
        },
        iters);
    // Same compiled plan with the vector kernels switched off: the
    // pre-SIMD baseline, isolating kernel strategy from plan strategy.
    pbio::simd::set_enabled(false);
    SimpleData scalar_out{};
    check(decoder.decode(record, *receiver, &scalar_out, arena), "scalar");
    bool scalar_identical = outputs_identical(compiled_out, scalar_out);
    all_identical = all_identical && scalar_identical;
    double scalar_ms = bench::encode_ms(
        [&] {
          arena.reset();
          check(decoder.decode(record, *receiver, &scalar_out, arena), "s");
        },
        iters);
    pbio::simd::set_enabled(simd_was_enabled);

    double reference_ms = bench::encode_ms(
        [&] {
          arena.reset();
          check(decoder.decode_reference(record, *receiver, &reference_out,
                                         arena),
                "r");
        },
        iters);

    double payload_mb = sizeof(float) * n / 1e6;
    double speedup = reference_ms / compiled_ms;
    if (n >= 100000) large_speedup = std::max(large_speedup, speedup);
    char label[24];
    std::snprintf(label, sizeof(label), "%d", n);
    std::printf("%-12s %14.6f %14.6f %14.6f %9.2fx %12.1f %10s\n", label,
                compiled_ms, scalar_ms, reference_ms, speedup,
                payload_mb / (compiled_ms / 1000.0),
                identical && scalar_identical ? "identical" : "DIFFER!");
    reporter.add("compiled", label, compiled_ms);
    reporter.add("compiled_scalar", label, scalar_ms);
    reporter.add("reference", label, reference_ms);
    reporter.add("speedup", label, speedup, "x");
    reporter.add("simd_speedup", label, scalar_ms / compiled_ms, "x");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FATAL: compiled and reference outputs diverged\n");
    return 1;
  }
  if (!bench::smoke() && large_speedup < 3.0) {
    std::printf("\nWARNING: large-payload speedup %.2fx below the 3x bar\n",
                large_speedup);
  }
  std::printf(
      "\ninterpretation: the interpreter pays a Result-carrying virtual\n"
      "dance per element; the compiled plan runs one typed bswap32 kernel\n"
      "over the whole coalesced payload span. Same plan, same bytes out —\n"
      "the speedup is pure execution-strategy, not semantics.\n");
  return 0;
}
